"""Trace monitors: incremental evaluation of interval-logic formulas.

A :class:`Monitor` watches a growing prefix of a computation: states are
appended one at a time and the monitored formulas are re-evaluated on the
prefix (under the paper's finite-computation convention, i.e. the prefix
extended by repeating its last state).  This is the natural way to connect a
running simulator — or any other state source — to a specification while the
system executes, and it is what the example applications use to show
violations as soon as they become detectable.

A verdict on a prefix is not always final (an eventuality that has not
happened yet may still happen); the monitor therefore reports, per formula,
the current verdict and whether it has been *stable* for a configurable
number of steps, which in practice flags genuine violations early.

Monitors run on **one incremental multi-root plan state**
(:mod:`repro.compile`): all monitored formulas are interned into a single
:class:`~repro.compile.specplan.SpecPlan` — subformulas shared across
formulas (the same ``[]``/``<>`` skeletons, event atoms, operation
predicates of a specification's clauses) are memoized once per position
for every formula watching them — and every appended state is absorbed in
amortized O(changed work): tail-independent subformula verdicts are
frozen, ``[]`` and ``<>`` resume from frontier positions, and event
searches extend shared endpoint indexes, instead of rebuilding a ``Trace``
and re-evaluating from scratch per state, which made online checking
quadratic in the prefix length.  Verdicts are bit-for-bit those of the
Chapter 3 evaluator on every prefix; :attr:`Monitor.step_costs` exposes
per-step work counters so regression tests can assert the cost no longer
grows with the prefix.

Long-lived monitors (the :mod:`repro.serve` streams) need three things a
one-shot monitor does not:

* **bounded statistics** — ``step_costs`` and each verdict's ``history``
  are :class:`StatWindow` ring buffers (default window 4096): totals keep
  accumulating, but the per-step detail rolls over so a stream observed
  for days does not grow without bound, and :meth:`Monitor.reset_stats`
  starts a fresh window without disturbing verdict state;
* **verdict-change callbacks** — ``on_change`` fires whenever a formula's
  verdict flips (or is first decided), which is how the serve layer turns
  monitoring into alert events without polling;
* **batched absorption** — :meth:`Monitor.observe_batch` appends a whole
  chunk of states and re-evaluates once at the batch boundary (the
  volatile memo split makes this sound: stable entries are
  tail-independent by construction), trading per-state verdict
  granularity for a large ingestion speedup on high-rate streams.

A monitor compiles its own plan by default; pass a prebuilt multi-root
``plan`` (``Session.monitor`` does, from the session's warm plan cache) to
skip recompilation when thousands of streams watch the same specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..compile import GrowingPrefix, SpecPlan, SpecPlanState
from ..core.specification import Specification
from ..semantics.state import State
from ..semantics.trace import Trace
from ..syntax.formulas import Formula

__all__ = ["StatWindow", "MonitorVerdict", "Monitor", "SpecificationMonitor"]


#: Default ring-buffer capacity for per-step statistics.  Large enough that
#: every interactive session and test sees exact full histories; small
#: enough that a stream observed for days stays bounded.
DEFAULT_STAT_WINDOW = 4096


class StatWindow:
    """A bounded, list-like ring buffer of per-step samples.

    Behaves like the plain list it replaces for every read the codebase
    performs — ``len``, indexing, slicing, iteration, ``sum``/``max``,
    equality against lists — but keeps only the most recent ``maxlen``
    samples.  Totals (:attr:`total_count`, :attr:`total`) accumulate over
    *every* sample ever appended, so throughput accounting survives the
    rollover that bounds memory.
    """

    __slots__ = ("_items", "_maxlen", "dropped", "total")

    def __init__(self, maxlen: Optional[int] = DEFAULT_STAT_WINDOW) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be at least 1, got {maxlen}")
        self._items: List[Any] = []
        self._maxlen = maxlen
        #: Samples discarded by the rollover.
        self.dropped = 0
        #: Sum of every numeric sample ever appended (booleans count 1/0).
        self.total = 0

    @property
    def maxlen(self) -> Optional[int]:
        return self._maxlen

    @property
    def total_count(self) -> int:
        """Samples ever appended, including those rolled out of the window."""
        return self.dropped + len(self._items)

    def append(self, value: Any) -> None:
        self._items.append(value)
        if value is not None:
            self.total += value
        if self._maxlen is not None and len(self._items) > self._maxlen:
            # Compact in chunks so append stays amortized O(1).
            if len(self._items) > 2 * self._maxlen:
                excess = len(self._items) - self._maxlen
            else:
                excess = 1
            del self._items[:excess]
            self.dropped += excess

    def reset(self) -> None:
        """Drop every sample and zero the totals."""
        self._items.clear()
        self.dropped = 0
        self.total = 0

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (``0 <= q <= 100``) of the *windowed*
        numeric samples, linearly interpolated between ranks.

        ``None`` samples are skipped; an empty (or all-``None``) window
        answers ``None``.  Percentiles describe the window only — samples
        rolled out by the bound are gone (their sum survives on
        :attr:`total`); :class:`repro.obs.Histogram` series keep lifetime
        distributions.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = sorted(v for v in self._items if v is not None)
        if not values:
            return None
        rank = (len(values) - 1) * (q / 100.0)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        return float(values[lo] + (values[hi] - values[lo]) * (rank - lo))

    def merge(self, other: "StatWindow") -> "StatWindow":
        """A new window holding both sample runs, accounting preserved.

        ``self``'s samples are treated as older than ``other``'s (merge is
        append-ordered, like replaying both streams back to back); the
        result keeps this window's ``maxlen``, rolls out the oldest
        samples if the union overflows it, and its ``dropped``/``total``
        carry both inputs' lifetime accounting exactly — so
        ``merged.total_count == a.total_count + b.total_count`` always
        holds, however much the bound discards.
        """
        merged = StatWindow(self._maxlen)
        items = self._items + other._items
        merged.dropped = self.dropped + other.dropped
        merged.total = self.total + other.total
        if self._maxlen is not None and len(items) > self._maxlen:
            merged.dropped += len(items) - self._maxlen
            items = items[len(items) - self._maxlen :]
        merged._items = items
        return merged

    def to_list(self) -> List[Any]:
        return list(self._items)

    # -- the list-like read surface ----------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StatWindow):
            return self._items == other._items
        if isinstance(other, (list, tuple)):
            return self._items == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"StatWindow({self._items!r}, maxlen={self._maxlen}, "
            f"dropped={self.dropped})"
        )


@dataclass
class MonitorVerdict:
    """The monitoring state of one formula."""

    name: str
    formula: Formula
    holds: Optional[bool] = None
    stable_for: int = 0
    history: Any = field(default_factory=StatWindow)
    #: Set when the formula's evaluation raised under ``capture_errors``.
    error: Optional[str] = None

    def update(self, value: bool, weight: int = 1) -> bool:
        """Record a fresh verdict; True when it changed (or first appeared).

        ``weight`` is the number of observation steps this verdict stands
        for — a coalesced batch of ``k`` frames whose verdict did not flip
        advances ``stable_for`` by ``k``, exactly as ``k`` frame-at-a-time
        updates would have.
        """
        changed = self.holds is None or value != self.holds
        if not changed:
            self.stable_for += weight
        else:
            self.stable_for = 0
        self.holds = value
        self.error = None
        self.history.append(value)
        return changed

    def update_error(self, message: str, weight: int = 1) -> bool:
        """Record an evaluation error; True when the classification changed."""
        changed = self.error is None
        self.holds = None
        self.stable_for = 0 if changed else self.stable_for + weight
        self.error = message
        self.history.append(None)
        return changed

    def __str__(self) -> str:
        verdict = "?" if self.holds is None else ("PASS" if self.holds else "FAIL")
        return f"{verdict:4s} {self.name} (stable {self.stable_for} steps)"


class Monitor:
    """Re-evaluates a set of named formulas on a growing state prefix.

    All formulas compile into **one** multi-root
    :class:`~repro.compile.specplan.SpecPlan` bound to one incremental
    plan state, so formulas watching the same subformulas share memo
    entries, endpoint indexes and frontier aggregators.

    Parameters
    ----------
    formulas:
        Name → interval-logic formula, all watched on every observed state.
    domain:
        ``Forall`` quantification domains.
    plan:
        A prebuilt multi-root plan whose roots are exactly the formula
        names — :meth:`repro.api.session.Session.monitor` passes one from
        the session's warm plan cache, so opening thousands of streams on
        the same specification compiles it once.
    plan_state:
        A recycled incremental :class:`SpecPlanState` for ``plan`` (reset
        to length zero) from the session's plan-state pool; the monitor
        then skips the lowering entirely.  It must have been lowered over
        the same domain and unroll cap as this monitor's — the session
        keys its pool by exactly that, so callers going through
        :meth:`Session.monitor` never see a mismatch.
    on_change:
        Called as ``on_change(name, verdict)`` whenever a formula's verdict
        flips (or is first decided) — the serve layer's alert hook.
    capture_errors:
        Capture per-formula evaluation errors on the verdict
        (``holds=None`` + ``error``) instead of propagating, mirroring
        ``SpecPlanState.check_all``'s per-clause contract.
    stat_window:
        Ring-buffer capacity for ``step_costs`` and verdict histories
        (``None`` = unbounded, the pre-serve behaviour).
    forall_unroll_cap:
        Bound on quantifier specialization in the compiled runtime
        (``None`` = the runtime default, ``0`` disables unrolling) —
        verdicts are identical at any cap; the knob exists for parity
        harnesses and benchmarks pinning one mode.
    """

    def __init__(
        self,
        formulas: Mapping[str, Formula],
        domain: Optional[Mapping[str, Iterable[object]]] = None,
        *,
        plan: Optional[SpecPlan] = None,
        plan_state: Optional[SpecPlanState] = None,
        on_change: Optional[Callable[[str, MonitorVerdict], None]] = None,
        capture_errors: bool = False,
        stat_window: Optional[int] = DEFAULT_STAT_WINDOW,
        forall_unroll_cap: Optional[int] = None,
    ) -> None:
        self._formulas = dict(formulas)
        self._domain = domain
        if plan_state is not None and plan is None:
            plan = plan_state.plan
        if plan is None:
            plan = SpecPlan(list(self._formulas.items()))
        elif set(plan.roots) != set(self._formulas):
            raise ValueError(
                "prebuilt plan roots do not match the monitored formulas: "
                f"plan has {sorted(plan.roots)}, formulas are "
                f"{sorted(self._formulas)}"
            )
        self._plan = plan
        if plan_state is not None:
            # A recycled (pooled) state: already lowered for this plan over
            # this exact domain, reset to length zero.  The session's pool
            # hands these out so reopened streams skip the lowering.
            if plan_state.plan is not plan:
                raise ValueError(
                    "prebuilt plan state was lowered for a different plan"
                )
            self._prefix = plan_state.trace
            self._state: SpecPlanState = plan_state
            self.state_from_pool = True
        else:
            self._prefix = GrowingPrefix()
            self._state = SpecPlanState(
                plan,
                self._prefix,
                domain=domain,
                incremental=True,
                forall_unroll_cap=forall_unroll_cap,
            )
            self.state_from_pool = False
        self._on_change = on_change
        self._capture_errors = capture_errors
        self._stat_window = stat_window
        self._verdicts: Dict[str, MonitorVerdict] = {
            name: MonitorVerdict(name, formula, history=StatWindow(stat_window))
            for name, formula in self._formulas.items()
        }
        #: Evaluation work (plan dispatch calls) spent per observed batch —
        #: flat in the prefix length for stabilised formulas.  A bounded
        #: :class:`StatWindow`: totals accumulate forever, detail rolls.
        #: Lifetime distributions live on the serve layer's
        #: ``serve_step_cost`` histogram (see :mod:`repro.obs`).
        self.step_costs: StatWindow = StatWindow(stat_window)

    @property
    def plan(self) -> SpecPlan:
        """The multi-root plan every watched formula compiled into."""
        return self._plan

    @property
    def on_change(self) -> Optional[Callable[[str, MonitorVerdict], None]]:
        """The verdict-change callback (assignable after construction)."""
        return self._on_change

    @on_change.setter
    def on_change(self, callback: Optional[Callable[[str, MonitorVerdict], None]]) -> None:
        self._on_change = callback

    @property
    def plan_state(self) -> SpecPlanState:
        """The shared multi-root plan state behind this monitor."""
        return self._state

    def _refresh_verdicts(self, weight: int = 1) -> None:
        for name in self._formulas:
            verdict = self._verdicts[name]
            if self._capture_errors:
                try:
                    changed = verdict.update(self._state.satisfies(name), weight)
                except Exception as exc:  # per-formula capture, like check_all
                    changed = verdict.update_error(
                        f"{type(exc).__name__}: {exc}", weight
                    )
            else:
                changed = verdict.update(self._state.satisfies(name), weight)
            if changed and self._on_change is not None:
                self._on_change(name, verdict)

    def observe(self, state) -> Dict[str, MonitorVerdict]:
        """Append a state and re-evaluate every formula on the new prefix.

        Plain mappings are accepted the way the rest of the façade
        accepts them — ``{"p": True}`` becomes a :class:`State`.
        """
        if not isinstance(state, State):
            state = State(state)
        self._prefix.append(state)
        before = self._state.stats.dispatch_calls
        self._state.note_append()
        self._refresh_verdicts()
        self.step_costs.append(self._state.stats.dispatch_calls - before)
        return dict(self._verdicts)

    def observe_batch(
        self, states: Sequence[State], commits: int = 1
    ) -> Dict[str, MonitorVerdict]:
        """Absorb a chunk of states, re-evaluating once at the boundary.

        Sound because the incremental memo split is tail-aware: stable
        entries are tail-independent, so appending any number of states
        before the single re-evaluation invalidates exactly the volatile
        entries that :meth:`~repro.compile.specplan.SpecPlanState.note_append`
        clears (one sweep per batch), and the tail kernel extends its
        profiles over the whole appended window in one vectorized pass.
        Verdict histories and ``on_change`` callbacks see one entry per
        *batch* — send batches of one for per-state granularity.

        ``commits`` is the number of observation steps the batch stands
        for: the serve layer coalesces ``k`` back-to-back frames into one
        batch and passes ``commits=k`` so each formula's ``stable_for``
        advances exactly as ``k`` frame-at-a-time batches would have when
        the verdict does not flip inside the group.
        """
        if not states:
            return dict(self._verdicts)
        for state in states:
            if not isinstance(state, State):
                state = State(state)
            self._prefix.append(state)
        before = self._state.stats.dispatch_calls
        self._state.note_append()
        self._refresh_verdicts(weight=commits)
        self.step_costs.append(self._state.stats.dispatch_calls - before)
        return dict(self._verdicts)

    def observe_trace(self, trace: Trace) -> Dict[str, MonitorVerdict]:
        """Feed every state of an existing trace through the monitor."""
        result: Dict[str, MonitorVerdict] = dict(self._verdicts)
        for state in trace.states():
            result = self.observe(state)
        return result

    @property
    def verdicts(self) -> Dict[str, MonitorVerdict]:
        return dict(self._verdicts)

    @property
    def prefix_length(self) -> int:
        return self._prefix.length

    @property
    def last_step_cost(self) -> int:
        """Dispatch work of the most recent :meth:`observe` (0 before any)."""
        return self.step_costs[-1] if len(self.step_costs) else 0

    def reset_stats(self) -> "Monitor":
        """Start a fresh statistics window; verdict state is untouched.

        Long-lived streams call this at rollover points (the serve layer
        does on demand) so per-step detail describes the current epoch
        while the windows' ``total``/``total_count`` keep the lifetime
        accounting.
        """
        self.step_costs.reset()
        for verdict in self._verdicts.values():
            verdict.history.reset()
        return self

    def failing(self) -> List[str]:
        """Names of formulas currently evaluating to False."""
        return [name for name, v in self._verdicts.items() if v.holds is False]


class SpecificationMonitor(Monitor):
    """A monitor built directly from a :class:`Specification`."""

    def __init__(
        self,
        specification: Specification,
        domain: Optional[Mapping[str, Iterable[object]]] = None,
        **options: Any,
    ) -> None:
        formulas = {
            clause.name: clause.interpreted_formula()
            for clause in specification.clauses
        }
        super().__init__(formulas, domain, **options)
        self.specification = specification
