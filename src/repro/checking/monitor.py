"""Trace monitors: incremental evaluation of interval-logic formulas.

A :class:`Monitor` watches a growing prefix of a computation: states are
appended one at a time and the monitored formulas are re-evaluated on the
prefix (under the paper's finite-computation convention, i.e. the prefix
extended by repeating its last state).  This is the natural way to connect a
running simulator — or any other state source — to a specification while the
system executes, and it is what the example applications use to show
violations as soon as they become detectable.

A verdict on a prefix is not always final (an eventuality that has not
happened yet may still happen); the monitor therefore reports, per formula,
the current verdict and whether it has been *stable* for a configurable
number of steps, which in practice flags genuine violations early.

Monitors run on **one incremental multi-root plan state**
(:mod:`repro.compile`): all monitored formulas are interned into a single
:class:`~repro.compile.specplan.SpecPlan` — subformulas shared across
formulas (the same ``[]``/``<>`` skeletons, event atoms, operation
predicates of a specification's clauses) are memoized once per position
for every formula watching them — and every appended state is absorbed in
amortized O(changed work): tail-independent subformula verdicts are
frozen, ``[]`` and ``<>`` resume from frontier positions, and event
searches extend shared endpoint indexes, instead of rebuilding a ``Trace``
and re-evaluating from scratch per state, which made online checking
quadratic in the prefix length.  Verdicts are bit-for-bit those of the
Chapter 3 evaluator on every prefix; :attr:`Monitor.step_costs` exposes
per-step work counters so regression tests can assert the cost no longer
grows with the prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..compile import GrowingPrefix, SpecPlan, SpecPlanState
from ..core.specification import Specification
from ..semantics.state import State
from ..semantics.trace import Trace
from ..syntax.formulas import Formula

__all__ = ["MonitorVerdict", "Monitor", "SpecificationMonitor"]


@dataclass
class MonitorVerdict:
    """The monitoring state of one formula."""

    name: str
    formula: Formula
    holds: Optional[bool] = None
    stable_for: int = 0
    history: List[bool] = field(default_factory=list)

    def update(self, value: bool) -> None:
        if self.holds is not None and value == self.holds:
            self.stable_for += 1
        else:
            self.stable_for = 0
        self.holds = value
        self.history.append(value)

    def __str__(self) -> str:
        verdict = "?" if self.holds is None else ("PASS" if self.holds else "FAIL")
        return f"{verdict:4s} {self.name} (stable {self.stable_for} steps)"


class Monitor:
    """Re-evaluates a set of named formulas on a growing state prefix.

    All formulas compile into **one** multi-root
    :class:`~repro.compile.specplan.SpecPlan` bound to one incremental
    plan state, so formulas watching the same subformulas share memo
    entries, endpoint indexes and frontier aggregators.
    """

    def __init__(
        self,
        formulas: Mapping[str, Formula],
        domain: Optional[Mapping[str, Iterable[object]]] = None,
    ) -> None:
        self._formulas = dict(formulas)
        self._domain = domain
        self._prefix = GrowingPrefix()
        self._state: SpecPlanState = SpecPlanState(
            SpecPlan(list(self._formulas.items())),
            self._prefix,
            domain=domain,
            incremental=True,
        )
        self._verdicts: Dict[str, MonitorVerdict] = {
            name: MonitorVerdict(name, formula)
            for name, formula in self._formulas.items()
        }
        #: Evaluation work (plan dispatch calls) spent per observed state —
        #: flat in the prefix length for stabilised formulas.
        self.step_costs: List[int] = []

    @property
    def plan_state(self) -> SpecPlanState:
        """The shared multi-root plan state behind this monitor."""
        return self._state

    def observe(self, state: State) -> Dict[str, MonitorVerdict]:
        """Append a state and re-evaluate every formula on the new prefix."""
        self._prefix.append(state)
        before = self._state.stats.dispatch_calls
        self._state.note_append()
        for name in self._formulas:
            self._verdicts[name].update(self._state.satisfies(name))
        self.step_costs.append(self._state.stats.dispatch_calls - before)
        return dict(self._verdicts)

    def observe_trace(self, trace: Trace) -> Dict[str, MonitorVerdict]:
        """Feed every state of an existing trace through the monitor."""
        result: Dict[str, MonitorVerdict] = dict(self._verdicts)
        for state in trace.states():
            result = self.observe(state)
        return result

    @property
    def verdicts(self) -> Dict[str, MonitorVerdict]:
        return dict(self._verdicts)

    @property
    def prefix_length(self) -> int:
        return self._prefix.length

    @property
    def last_step_cost(self) -> int:
        """Dispatch work of the most recent :meth:`observe` (0 before any)."""
        return self.step_costs[-1] if self.step_costs else 0

    def failing(self) -> List[str]:
        """Names of formulas currently evaluating to False."""
        return [name for name, v in self._verdicts.items() if v.holds is False]


class SpecificationMonitor(Monitor):
    """A monitor built directly from a :class:`Specification`."""

    def __init__(
        self,
        specification: Specification,
        domain: Optional[Mapping[str, Iterable[object]]] = None,
    ) -> None:
        formulas = {
            clause.name: clause.interpreted_formula()
            for clause in specification.clauses
        }
        super().__init__(formulas, domain)
        self.specification = specification
