"""Plain-text result tables for the reproduction experiments.

The benchmarks print their findings with these helpers so that every
experiment produces the same style of table the paper's Appendix B uses
(columns of counts and seconds) or a simple pass/fail matrix for the
specification case studies.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["format_table", "format_kv"]


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table with the given column order."""
    if not rows:
        return "(no rows)"
    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.4f}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append("  ".join(text.ljust(widths[column])
                               for text, column in zip(rendered, columns)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Mapping[str, object]) -> str:
    """Render a titled key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
