"""Trace monitors, conformance campaigns, and result reporting."""

from .monitor import Monitor, MonitorVerdict, SpecificationMonitor
from .report import format_kv, format_table
from .runner import (
    ConformanceCase,
    ConformanceOutcome,
    ConformanceReport,
    run_conformance,
)

__all__ = [
    "Monitor",
    "MonitorVerdict",
    "SpecificationMonitor",
    "format_kv",
    "format_table",
    "ConformanceCase",
    "ConformanceOutcome",
    "ConformanceReport",
    "run_conformance",
]
