"""Conformance campaigns: check specifications against families of traces.

The reproduction's Chapter 5–8 experiments all have the same shape: generate
traces from a correct system and from deliberately faulty variants, check the
paper's specification on each, and report the pass/fail matrix (the correct
system must satisfy every clause; each faulty variant must violate at least
one).  This module provides that harness plus a compact textual report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.specification import Specification, SpecificationResult
from ..semantics.trace import Trace

__all__ = ["ConformanceCase", "ConformanceOutcome", "ConformanceReport", "run_conformance"]


TraceFactory = Callable[[int], Trace]


@dataclass(frozen=True)
class ConformanceCase:
    """One system variant: a trace factory and whether it should conform."""

    name: str
    factory: TraceFactory
    expected_to_conform: bool
    seeds: Tuple[int, ...] = (0, 1, 2)


@dataclass
class ConformanceOutcome:
    """Results of one case across its seeds."""

    case: ConformanceCase
    results: List[SpecificationResult] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        return all(result.holds for result in self.results)

    @property
    def as_expected(self) -> bool:
        return self.conforms == self.case.expected_to_conform

    def violated_clauses(self) -> List[str]:
        names: List[str] = []
        for result in self.results:
            for verdict in result.failures:
                if verdict.clause.name not in names:
                    names.append(verdict.clause.name)
        return names


@dataclass
class ConformanceReport:
    """The full pass/fail matrix for one specification."""

    specification: Specification
    outcomes: List[ConformanceOutcome]

    @property
    def all_as_expected(self) -> bool:
        return all(outcome.as_expected for outcome in self.outcomes)

    def outcome(self, case_name: str) -> ConformanceOutcome:
        for outcome in self.outcomes:
            if outcome.case.name == case_name:
                return outcome
        raise KeyError(case_name)

    def rows(self) -> List[Dict[str, object]]:
        """Tabular summary — one row per case (used by the benchmarks)."""
        table = []
        for outcome in self.outcomes:
            table.append(
                {
                    "case": outcome.case.name,
                    "expected": "conform" if outcome.case.expected_to_conform else "violate",
                    "observed": "conform" if outcome.conforms else "violate",
                    "as_expected": outcome.as_expected,
                    "violated_clauses": ", ".join(outcome.violated_clauses()) or "-",
                }
            )
        return table

    def summary(self) -> str:
        lines = [f"Specification: {self.specification.name}"]
        for row in self.rows():
            status = "OK " if row["as_expected"] else "BAD"
            lines.append(
                f"  [{status}] {row['case']:<28} expected={row['expected']:<8} "
                f"observed={row['observed']:<8} violated: {row['violated_clauses']}"
            )
        return "\n".join(lines)


def run_conformance(
    specification: Specification,
    cases: Sequence[ConformanceCase],
    domain: Optional[Mapping[str, Iterable[object]]] = None,
) -> ConformanceReport:
    """Check ``specification`` against every case and seed."""
    outcomes: List[ConformanceOutcome] = []
    for case in cases:
        outcome = ConformanceOutcome(case)
        for seed in case.seeds:
            trace = case.factory(seed)
            outcome.results.append(specification.check(trace, domain))
        outcomes.append(outcome)
    return ConformanceReport(specification, outcomes)
