"""Conformance campaigns: check specifications against families of traces.

The reproduction's Chapter 5–8 experiments all have the same shape: generate
traces from a correct system and from deliberately faulty variants, check the
paper's specification on each, and report the pass/fail matrix (the correct
system must satisfy every clause; each faulty variant must violate at least
one).  This module provides that harness plus a compact textual report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.specification import Specification, SpecificationResult
from ..semantics.trace import Trace

__all__ = ["ConformanceCase", "ConformanceOutcome", "ConformanceReport", "run_conformance"]


TraceFactory = Callable[[int], Trace]


@dataclass(frozen=True)
class ConformanceCase:
    """One system variant: a trace factory and whether it should conform."""

    name: str
    factory: TraceFactory
    expected_to_conform: bool
    seeds: Tuple[int, ...] = (0, 1, 2)


@dataclass
class ConformanceOutcome:
    """Results of one case across its seeds."""

    case: ConformanceCase
    results: List[SpecificationResult] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        return all(result.holds for result in self.results)

    @property
    def as_expected(self) -> bool:
        return self.conforms == self.case.expected_to_conform

    def violated_clauses(self) -> List[str]:
        names: List[str] = []
        for result in self.results:
            for verdict in result.failures:
                if verdict.clause.name not in names:
                    names.append(verdict.clause.name)
        return names


@dataclass
class ConformanceReport:
    """The full pass/fail matrix for one specification."""

    specification: Specification
    outcomes: List[ConformanceOutcome]

    @property
    def all_as_expected(self) -> bool:
        return all(outcome.as_expected for outcome in self.outcomes)

    def outcome(self, case_name: str) -> ConformanceOutcome:
        for outcome in self.outcomes:
            if outcome.case.name == case_name:
                return outcome
        raise KeyError(case_name)

    def rows(self) -> List[Dict[str, object]]:
        """Tabular summary — one row per case (used by the benchmarks)."""
        table = []
        for outcome in self.outcomes:
            table.append(
                {
                    "case": outcome.case.name,
                    "expected": "conform" if outcome.case.expected_to_conform else "violate",
                    "observed": "conform" if outcome.conforms else "violate",
                    "as_expected": outcome.as_expected,
                    "violated_clauses": ", ".join(outcome.violated_clauses()) or "-",
                }
            )
        return table

    def summary(self) -> str:
        lines = [f"Specification: {self.specification.name}"]
        for row in self.rows():
            status = "OK " if row["as_expected"] else "BAD"
            lines.append(
                f"  [{status}] {row['case']:<28} expected={row['expected']:<8} "
                f"observed={row['observed']:<8} violated: {row['violated_clauses']}"
            )
        return "\n".join(lines)


def run_conformance(
    specification: Specification,
    cases: Sequence[ConformanceCase],
    domain: Optional[Mapping[str, Iterable[object]]] = None,
    session: Optional[object] = None,
    processes: Optional[int] = None,
) -> ConformanceReport:
    """Check ``specification`` against every case and seed.

    This is a thin wrapper over the façade: the specification compiles
    **once** into a multi-root :class:`~repro.compile.specplan.SpecPlan`
    (cached on the session by spec digest) and every ``(case, seed)`` trace
    is answered by :meth:`Session.check_spec` through one shared
    :class:`~repro.compile.specplan.SpecPlanState` — clauses sharing
    subformulas share memo entries and event indexes per trace, and errors
    stay captured per clause.  With ``processes`` the campaign falls back
    to the per-clause :class:`~repro.api.request.CheckRequest` batch fanned
    out in chunks over worker processes.  Pass an existing
    :class:`~repro.api.session.Session` to share its plan caches with
    other checks.
    """
    # Imported here: repro.api's engines are built on this package's
    # siblings, so the import must not run at module-initialization time.
    from ..api.session import Session

    if session is None:
        session = Session()
    prepared: List[Tuple[ConformanceCase, List[Trace]]] = []
    for case in cases:
        prepared.append((case, [case.factory(seed) for seed in case.seeds]))

    if processes and processes > 1:
        return _run_conformance_fanned(
            specification, prepared, domain, session, processes
        )

    outcomes: List[ConformanceOutcome] = []
    for case, traces in prepared:
        outcome = ConformanceOutcome(case)
        for trace in traces:
            outcome.results.append(
                session.check_spec(specification, trace, domain=domain)
            )
        outcomes.append(outcome)
    return ConformanceReport(specification, outcomes)


def _run_conformance_fanned(
    specification: Specification,
    prepared: Sequence[Tuple[ConformanceCase, List[Trace]]],
    domain: Optional[Mapping[str, Iterable[object]]],
    session,
    processes: int,
) -> ConformanceReport:
    """The worker-process campaign: one request per (case, seed, clause)."""
    from ..api.request import CheckRequest
    from ..core.specification import ClauseVerdict

    clauses = specification.clauses
    requests: List[CheckRequest] = []
    for case, traces in prepared:
        for trace in traces:
            for clause in clauses:
                requests.append(
                    CheckRequest(
                        formula=clause.interpreted_formula(),
                        trace=trace,
                        domain=domain,
                        capture_errors=True,
                        label=f"{case.name}/{clause.name}",
                    )
                )
    results = session.check_many(requests, processes=processes)

    outcomes: List[ConformanceOutcome] = []
    cursor = 0
    for case, traces in prepared:
        outcome = ConformanceOutcome(case)
        for _ in traces:
            verdicts = [
                ClauseVerdict(clause, results[cursor + index].verdict is True,
                              results[cursor + index].error)
                for index, clause in enumerate(clauses)
            ]
            cursor += len(clauses)
            outcome.results.append(SpecificationResult(specification, verdicts))
        outcomes.append(outcome)
    return ConformanceReport(specification, outcomes)
