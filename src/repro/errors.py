"""Exception hierarchy for the interval-logic reproduction library.

Every error raised by the public API derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Sub-classes
distinguish the main failure categories: malformed syntax, evaluation over a
trace, decision-procedure construction, and theory solving.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SyntaxConstructionError(ReproError):
    """A formula, interval term, or event term was constructed incorrectly."""


class ParseError(ReproError):
    """The concrete-syntax parser could not parse its input.

    Attributes
    ----------
    text:
        The full input text.
    position:
        Character offset at which parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int = 0) -> None:
        super().__init__(message)
        self.text = text
        self.position = position


class EvaluationError(ReproError):
    """Semantic evaluation of a formula over a trace failed.

    This indicates a genuine error (unknown state variable, unbound logical
    variable, applying ``end`` to an infinite interval in a context where the
    paper leaves it undefined), not a ``False`` verdict.
    """


class UnboundVariableError(EvaluationError):
    """A logical (rigid) variable was used without a binding."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unbound logical variable: {name!r}")
        self.name = name


class UnknownStateVariableError(EvaluationError):
    """A state variable referenced by a predicate is absent from a state."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown state variable: {name!r}")
        self.name = name


class UnknownOperationError(EvaluationError):
    """An operation predicate refers to an operation absent from a state."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown operation: {name!r}")
        self.name = name


class TraceError(ReproError):
    """A trace was constructed or indexed incorrectly."""


class DecisionProcedureError(ReproError):
    """The tableau / graph decision procedures hit an unsupported case."""


class TranslationError(ReproError):
    """A formula lies outside the fragment supported by a translation."""


class TheoryError(ReproError):
    """A specialized theory solver received literals it cannot interpret."""


class SimulationError(ReproError):
    """A case-study system simulator was driven into an invalid configuration."""


class SpecificationError(ReproError):
    """A specification object was assembled incorrectly."""
