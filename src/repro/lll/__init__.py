"""The Appendix C low-level language: syntax, bounded semantics, LTL encoding."""

from .syntax import (
    LChoice,
    LChop,
    LConcur,
    LConcurSame,
    LExists,
    LFalseExpr,
    LForceFalse,
    LForceTrue,
    LInfloop,
    LIterOpt,
    LIterStar,
    LLLExpression,
    LNeg,
    LSeq,
    LTrueOne,
    LTrueStar,
    LVar,
    check_l1_restriction,
    lll_variables,
    walk_lll,
)
from .semantics import (
    Psi,
    is_consistent,
    is_satisfiable_bounded,
    satisfying_interpretations,
)
from .translation import ltl_to_lll

__all__ = [
    "LChoice", "LChop", "LConcur", "LConcurSame", "LExists", "LFalseExpr",
    "LForceFalse", "LForceTrue", "LInfloop", "LIterOpt", "LIterStar",
    "LLLExpression", "LNeg", "LSeq", "LTrueOne", "LTrueStar", "LVar",
    "check_l1_restriction", "lll_variables", "walk_lll",
    "Psi", "is_consistent", "is_satisfiable_bounded", "satisfying_interpretations",
    "ltl_to_lll",
]
