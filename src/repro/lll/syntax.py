"""The low-level language of Appendix C (syntax).

The language generalizes regular expressions over *computation sequence
constraints*: each expression denotes a set of partial interpretations —
finite or infinite sequences of conjunctions of propositional variables and
their negations, specifying which events are permitted or forbidden at each
instant.

Constructs (Appendix C §2):

* propositional variables and their negations, the constants ``T`` (any one
  instant), ``F`` (nothing) and ``T*`` (any finite or infinite sequence);
* ``a \\/ b`` — nondeterministic choice;
* ``a /\\ b`` — concurrent execution, the longer computation extending past
  the shorter (``AndSame`` is the equal-length variant ``as``);
* ``a ; b`` — serial composition without overlap, ``a . b`` (Chop) — serial
  composition with a one-state overlap;
* ``exists x a`` — hide the local event ``x``; ``Fx a`` / ``Tx a`` — make
  ``x`` false / true wherever unspecified;
* ``infloop(a)`` — a copy of ``a`` begins at every instant;
* ``iter*(a, b)`` / ``iter(*)(a, b)`` — copies of ``a`` begin at successive
  instants until ``b`` begins (``iter*`` requires that ``b`` eventually
  start, ``iter(*)`` does not).

Appendix C restricts where the non-monotone ``Fx``/``Tx`` quantifiers may
appear (language ``L1``); :func:`check_l1_restriction` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

from ..errors import SyntaxConstructionError

__all__ = [
    "LLLExpression",
    "LVar",
    "LNeg",
    "LTrueOne",
    "LFalseExpr",
    "LTrueStar",
    "LChoice",
    "LConcur",
    "LConcurSame",
    "LSeq",
    "LChop",
    "LExists",
    "LForceFalse",
    "LForceTrue",
    "LInfloop",
    "LIterStar",
    "LIterOpt",
    "walk_lll",
    "lll_variables",
    "check_l1_restriction",
]


class LLLExpression:
    """Base class of low-level-language expressions."""

    def children(self) -> Iterator["LLLExpression"]:
        return iter(())


@dataclass(frozen=True)
class LVar(LLLExpression):
    """A propositional variable: the one-instant computation in which it occurs."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LNeg(LLLExpression):
    """A negated variable: one instant in which the event does not occur."""

    name: str

    def __str__(self) -> str:
        return f"~{self.name}"


@dataclass(frozen=True)
class LTrueOne(LLLExpression):
    """``T`` — any computation of length one."""

    def __str__(self) -> str:
        return "T"


@dataclass(frozen=True)
class LFalseExpr(LLLExpression):
    """``F`` — no computation at all."""

    def __str__(self) -> str:
        return "F"


@dataclass(frozen=True)
class LTrueStar(LLLExpression):
    """``T*`` — any finite or infinite computation."""

    def __str__(self) -> str:
        return "T*"


class _Binary(LLLExpression):
    left: LLLExpression
    right: LLLExpression
    SYMBOL = "?"

    def children(self) -> Iterator[LLLExpression]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.SYMBOL} {self.right})"


@dataclass(frozen=True)
class LChoice(_Binary):
    """``a \\/ b`` — nondeterministic choice."""

    left: LLLExpression
    right: LLLExpression
    SYMBOL = "\\/"


@dataclass(frozen=True)
class LConcur(_Binary):
    """``a /\\ b`` — concurrency, longer computation extends past the shorter."""

    left: LLLExpression
    right: LLLExpression
    SYMBOL = "/\\"


@dataclass(frozen=True)
class LConcurSame(_Binary):
    """``a as b`` — concurrency restricted to equal-length computations."""

    left: LLLExpression
    right: LLLExpression
    SYMBOL = "as"


@dataclass(frozen=True)
class LSeq(_Binary):
    """``a ; b`` — serial composition without overlap."""

    left: LLLExpression
    right: LLLExpression
    SYMBOL = ";"


@dataclass(frozen=True)
class LChop(_Binary):
    """``a b`` (concatenation) — serial composition with a one-state overlap."""

    left: LLLExpression
    right: LLLExpression
    SYMBOL = "."


class _Quantifier(LLLExpression):
    variable: str
    body: LLLExpression
    SYMBOL = "?"

    def children(self) -> Iterator[LLLExpression]:
        yield self.body

    def __str__(self) -> str:
        return f"({self.SYMBOL}{self.variable}){self.body}"


@dataclass(frozen=True)
class LExists(_Quantifier):
    """``(exists x) a`` — hide the local event ``x``."""

    variable: str
    body: LLLExpression
    SYMBOL = "E"


@dataclass(frozen=True)
class LForceFalse(_Quantifier):
    """``(Fx) a`` — ``x`` is false everywhere a value is not already specified."""

    variable: str
    body: LLLExpression
    SYMBOL = "F"


@dataclass(frozen=True)
class LForceTrue(_Quantifier):
    """``(Tx) a`` — ``x`` is true everywhere a value is not already specified."""

    variable: str
    body: LLLExpression
    SYMBOL = "T"


@dataclass(frozen=True)
class LInfloop(LLLExpression):
    """``infloop(a)`` / ``a**`` — a copy of ``a`` begins at every instant."""

    body: LLLExpression

    def children(self) -> Iterator[LLLExpression]:
        yield self.body

    def __str__(self) -> str:
        return f"infloop({self.body})"


@dataclass(frozen=True)
class LIterStar(LLLExpression):
    """``iter*(a, b)`` — copies of ``a`` begin at successive instants until
    ``b`` begins, and ``b`` must eventually begin."""

    body: LLLExpression
    until: LLLExpression

    def children(self) -> Iterator[LLLExpression]:
        yield self.body
        yield self.until

    def __str__(self) -> str:
        return f"iter*({self.body}, {self.until})"


@dataclass(frozen=True)
class LIterOpt(LLLExpression):
    """``iter(*)(a, b)`` — as ``iter*`` but ``b`` need not ever begin."""

    body: LLLExpression
    until: LLLExpression

    def children(self) -> Iterator[LLLExpression]:
        yield self.body
        yield self.until

    def __str__(self) -> str:
        return f"iter(*)({self.body}, {self.until})"


def walk_lll(expression: LLLExpression) -> Iterator[LLLExpression]:
    yield expression
    for child in expression.children():
        yield from walk_lll(child)


def lll_variables(expression: LLLExpression) -> FrozenSet[str]:
    """All propositional variables occurring in the expression."""
    names = set()
    for node in walk_lll(expression):
        if isinstance(node, (LVar, LNeg)):
            names.add(node.name)
        elif isinstance(node, (LExists, LForceFalse, LForceTrue)):
            names.add(node.variable)
    return frozenset(names)


_L1_ALLOWED = (LVar, LNeg, LTrueOne, LFalseExpr, LTrueStar, LSeq, LChop,
               LConcurSame, LExists, LForceFalse, LForceTrue)


def _free_in(expression: LLLExpression, variable: str) -> bool:
    if isinstance(expression, (LVar, LNeg)):
        return expression.name == variable
    if isinstance(expression, (LExists, LForceFalse, LForceTrue)):
        if expression.variable == variable and isinstance(expression, LExists):
            return False
        return _free_in(expression.body, variable)
    return any(_free_in(child, variable) for child in expression.children())


def check_l1_restriction(expression: LLLExpression) -> bool:
    """Does the expression respect the Appendix C §3.1 quantifier restriction?

    ``Fx``/``Tx`` may only be applied to bodies composed of sub-expressions in
    which ``x`` does not occur free, the variable ``x`` itself, and the
    connectives concatenation, ``;``, ``as``, and the quantifiers.
    """
    def body_ok(body: LLLExpression, variable: str) -> bool:
        if not _free_in(body, variable):
            return True
        if isinstance(body, LVar) and body.name == variable:
            return True
        if isinstance(body, _L1_ALLOWED) and not isinstance(body, (LVar, LNeg)):
            if isinstance(body, (LExists, LForceFalse, LForceTrue)):
                return body_ok(body.body, variable)
            return all(body_ok(child, variable) for child in body.children())
        return False

    for node in walk_lll(expression):
        if isinstance(node, (LForceFalse, LForceTrue)):
            if not body_ok(node.body, node.variable):
                return False
    return True
