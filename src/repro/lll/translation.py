"""Encoding linear-time temporal logic into the low-level language (Appendix C §7).

"One can easily encode the usual discrete linear time temporal logic into L1
by expressing ``Until(x, y)`` as ``iter(*)(x, y)`` (with no eventuality
implied), 'next time x' as ``T;x``, 'henceforth x' as ``infloop(x)``,
'eventually x' as ``iter*(T*, x)``, propositional variables ``p`` as
``p T*``, ``~p`` as ``~p T*``, and Boolean ``/\\`` and ``\\/`` as
themselves.  This requires pushing negations to the bottom."

The encoding below follows that recipe over the negation-normal-form
operators of :mod:`repro.ltl.syntax`; strong until is encoded through
``iter*`` (which does imply the eventuality) and release through the weak
``iter(*)``.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..ltl.syntax import (
    Henceforth,
    LAnd,
    LFalse,
    LNot,
    LOr,
    LProp,
    LTrue,
    LTLFormula,
    Next,
    Release,
    Sometime,
    StrongUntil,
    Until,
    to_nnf,
)
from .syntax import (
    LChoice,
    LChop,
    LConcur,
    LFalseExpr,
    LInfloop,
    LIterOpt,
    LIterStar,
    LLLExpression,
    LNeg,
    LSeq,
    LTrueOne,
    LTrueStar,
    LVar,
)

__all__ = ["ltl_to_lll"]


def _literal(formula: LTLFormula) -> LLLExpression:
    if isinstance(formula, LProp):
        return LChop(LVar(formula.name), LTrueStar())
    if isinstance(formula, LNot) and isinstance(formula.operand, LProp):
        return LChop(LNeg(formula.operand.name), LTrueStar())
    raise TranslationError(f"not a propositional literal: {formula}")


def ltl_to_lll(formula: LTLFormula) -> LLLExpression:
    """Translate a propositional LTL formula into the low-level language.

    Theory atoms are not supported (the LLL is purely propositional); the
    formula is first converted to negation normal form.
    """
    return _translate(to_nnf(formula))


def _translate(formula: LTLFormula) -> LLLExpression:
    if isinstance(formula, LTrue):
        return LTrueStar()
    if isinstance(formula, LFalse):
        return LFalseExpr()
    if isinstance(formula, (LProp, LNot)):
        return _literal(formula)
    if isinstance(formula, LAnd):
        return LConcur(_translate(formula.left), _translate(formula.right))
    if isinstance(formula, LOr):
        return LChoice(_translate(formula.left), _translate(formula.right))
    if isinstance(formula, Next):
        return LSeq(LTrueOne(), _translate(formula.operand))
    if isinstance(formula, Henceforth):
        return LInfloop(_translate(formula.operand))
    if isinstance(formula, Sometime):
        return LIterStar(LTrueStar(), _translate(formula.operand))
    if isinstance(formula, StrongUntil):
        return LIterStar(_translate(formula.left), _translate(formula.right))
    if isinstance(formula, Until):
        return LIterOpt(_translate(formula.left), _translate(formula.right))
    if isinstance(formula, Release):
        # R(q, p) = weak until of p holding with q releasing: encode through
        # the weak iteration of p until (p /\ q).
        released = LConcur(_translate(formula.right), _translate(formula.left))
        return LIterOpt(_translate(formula.right), released)
    raise TranslationError(f"cannot encode LTL formula into the LLL: {formula}")
