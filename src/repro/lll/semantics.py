"""Partial-interpretation semantics of the low-level language (Appendix C §3).

Each expression denotes a set ``Ψ(α)`` of *partial interpretations*: finite
sequences of conjunctions of literals (computation sequence constraints).
The operations on partial interpretations are exactly those of the paper:

* ``I ∧ J`` — pointwise conjunction, the longer sequence extending past the
  shorter;
* ``I J``  — concatenation with a one-element overlap;
* ``I ; J`` — concatenation without overlap;
* ``(∃x) I`` — delete ``x`` from every conjunction;
* ``(Fx) I`` / ``(Tx) I`` — add ``~x`` / ``x`` to every conjunction not
  already mentioning ``x``.

The paper's semantics admits infinite interpretations (``T*``, ``infloop``,
the iteration operators).  The reproduction computes Ψ *up to a length
bound*: ``Psi(expression, bound)`` returns every denoted partial
interpretation of length at most ``bound``.  Within the bound the computation
is exact, which is what the Appendix C example (``iter*(P T*, Q)`` denotes
``⋁ᵢ Pⁱ;Q``) and the satisfiability checks of experiment E8 need; the full
non-elementary graph construction of §4 is out of scope and this bounded
semantics is the documented substitution for it (see DESIGN.md).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import DecisionProcedureError
from .syntax import (
    LChoice,
    LChop,
    LConcur,
    LConcurSame,
    LExists,
    LFalseExpr,
    LForceFalse,
    LForceTrue,
    LInfloop,
    LIterOpt,
    LIterStar,
    LLLExpression,
    LNeg,
    LSeq,
    LTrueOne,
    LTrueStar,
    LVar,
)

__all__ = [
    "Literal",
    "Conjunction",
    "PartialInterpretation",
    "conj_and",
    "interp_and",
    "interp_chop",
    "interp_seq",
    "is_consistent",
    "Psi",
    "PsiBudgetError",
    "is_satisfiable_bounded",
    "satisfying_interpretations",
]


class PsiBudgetError(DecisionProcedureError):
    """The ``Ψ`` computation exceeded its optional work budget.

    The bounded semantics is exact within the length bound but the number of
    partial interpretations explored can grow super-exponentially with
    expression nesting (each ``∧`` / chop / iteration forms a cross product
    of interpretation sets).  Callers that must stay responsive — batch
    campaigns, the differential fuzzing oracle — pass ``max_interpretations``
    and treat this error as "the engine abstained", not as a verdict.
    """


class _Budget:
    """Counts interpretation pairings explored by one ``Ψ`` computation."""

    __slots__ = ("remaining",)

    def __init__(self, limit: Optional[int]) -> None:
        self.remaining = limit

    def charge(self, amount: int) -> None:
        if self.remaining is None:
            return
        self.remaining -= amount
        if self.remaining < 0:
            raise PsiBudgetError(
                "the bounded Psi computation exceeded its interpretation "
                "budget; raise max_interpretations (or pass None) to explore "
                "this expression exhaustively"
            )


Literal = Tuple[str, bool]
Conjunction = FrozenSet[Literal]
PartialInterpretation = Tuple[Conjunction, ...]

EMPTY_CONJUNCTION: Conjunction = frozenset()


def conj_and(left: Conjunction, right: Conjunction) -> Conjunction:
    """Pointwise conjunction of two constraint conjunctions."""
    return left | right


def conj_consistent(conjunction: Conjunction) -> bool:
    names = {}
    for name, value in conjunction:
        if name in names and names[name] != value:
            return False
        names[name] = value
    return True


def interp_and(left: PartialInterpretation, right: PartialInterpretation) -> PartialInterpretation:
    """``I ∧ J``: pointwise conjunction, longer sequence extends past the shorter."""
    length = max(len(left), len(right))
    out: List[Conjunction] = []
    for index in range(length):
        conjunction = EMPTY_CONJUNCTION
        if index < len(left):
            conjunction = conj_and(conjunction, left[index])
        if index < len(right):
            conjunction = conj_and(conjunction, right[index])
        out.append(conjunction)
    return tuple(out)


def interp_chop(left: PartialInterpretation, right: PartialInterpretation) -> PartialInterpretation:
    """``I J``: concatenation with a one-element overlap."""
    if not left:
        return right
    if not right:
        return left
    overlap = conj_and(left[-1], right[0])
    return left[:-1] + (overlap,) + right[1:]


def interp_seq(left: PartialInterpretation, right: PartialInterpretation) -> PartialInterpretation:
    """``I ; J``: concatenation without overlap."""
    return left + right


def _hide(interpretation: PartialInterpretation, variable: str) -> PartialInterpretation:
    return tuple(
        frozenset(literal for literal in conjunction if literal[0] != variable)
        for conjunction in interpretation
    )


def _force(interpretation: PartialInterpretation, variable: str, value: bool) -> PartialInterpretation:
    out = []
    for conjunction in interpretation:
        if any(name == variable for name, _ in conjunction):
            out.append(conjunction)
        else:
            out.append(conjunction | {(variable, value)})
    return tuple(out)


def is_consistent(interpretation: PartialInterpretation) -> bool:
    """No conjunction of the interpretation is contradictory."""
    return all(conj_consistent(conjunction) for conjunction in interpretation)


def Psi(
    expression: LLLExpression,
    bound: int,
    max_interpretations: Optional[int] = None,
) -> Set[PartialInterpretation]:
    """All partial interpretations of length at most ``bound`` denoted by the expression.

    ``max_interpretations`` caps the total number of interpretation pairings
    explored; exceeding it raises :class:`PsiBudgetError` (see its docstring
    for when callers want that).
    """
    if bound < 1:
        raise DecisionProcedureError("the length bound must be at least 1")
    return _psi(expression, bound, _Budget(max_interpretations))


def _bounded(interps: Set[PartialInterpretation], bound: int) -> Set[PartialInterpretation]:
    return {i for i in interps if 1 <= len(i) <= bound}


def _psi(
    expression: LLLExpression, bound: int, budget: _Budget
) -> Set[PartialInterpretation]:
    budget.charge(1)
    if isinstance(expression, LVar):
        return {(frozenset({(expression.name, True)}),)}
    if isinstance(expression, LNeg):
        return {(frozenset({(expression.name, False)}),)}
    if isinstance(expression, LTrueOne):
        return {(EMPTY_CONJUNCTION,)}
    if isinstance(expression, LFalseExpr):
        return set()
    if isinstance(expression, LTrueStar):
        return {tuple([EMPTY_CONJUNCTION] * n) for n in range(1, bound + 1)}
    if isinstance(expression, LChoice):
        return _psi(expression.left, bound, budget) | _psi(expression.right, bound, budget)
    if isinstance(expression, (LConcur, LConcurSame, LSeq, LChop)):
        left = _psi(expression.left, bound, budget)
        right = _psi(expression.right, bound, budget)
        budget.charge(len(left) * len(right))
        if isinstance(expression, LConcur):
            combined = {interp_and(i, j) for i in left for j in right}
        elif isinstance(expression, LConcurSame):
            combined = {interp_and(i, j) for i in left for j in right
                        if len(i) == len(j)}
        elif isinstance(expression, LSeq):
            combined = {interp_seq(i, j) for i in left for j in right}
        else:
            combined = {interp_chop(i, j) for i in left for j in right}
        return _bounded(combined, bound)
    if isinstance(expression, LExists):
        return {_hide(i, expression.variable) for i in _psi(expression.body, bound, budget)}
    if isinstance(expression, LForceFalse):
        return {_force(i, expression.variable, False) for i in _psi(expression.body, bound, budget)}
    if isinstance(expression, LForceTrue):
        return {_force(i, expression.variable, True) for i in _psi(expression.body, bound, budget)}
    if isinstance(expression, LInfloop):
        return _psi_infloop(expression.body, bound, budget)
    if isinstance(expression, LIterStar):
        return _psi_iter(expression.body, expression.until, bound, budget, require_until=True)
    if isinstance(expression, LIterOpt):
        return _psi_iter(expression.body, expression.until, bound, budget, require_until=False)
    raise DecisionProcedureError(f"unknown LLL expression: {expression!r}")


def _shift(interps: Set[PartialInterpretation], offset: int, bound: int) -> Set[PartialInterpretation]:
    """``T^offset ; a`` — prefix with ``offset`` unconstrained instants."""
    prefix = tuple([EMPTY_CONJUNCTION] * offset)
    return _bounded({prefix + i for i in interps}, bound)


def _psi_infloop(
    body: LLLExpression, bound: int, budget: _Budget
) -> Set[PartialInterpretation]:
    """``infloop(a)``: a copy of ``a`` starts at every instant.

    The exact denotation ``a ∧ (T;a) ∧ (T;T;a) ∧ ...`` consists of infinite
    interpretations only; bounded to ``bound`` instants, the reproduction
    returns their length-``bound`` truncations — a copy of ``a`` (itself
    truncated at the bound) is conjoined at every offset ``0 .. bound-1``.
    """
    def truncate(interpretation: PartialInterpretation) -> PartialInterpretation:
        return interpretation[:bound]

    base = {truncate(i) for i in _psi(body, bound, budget)}
    if not base:
        return set()
    current: Set[PartialInterpretation] = set(base)
    for offset in range(1, bound):
        prefix = tuple([EMPTY_CONJUNCTION] * offset)
        shifted = {truncate(prefix + i) for i in base}
        budget.charge(len(current) * len(shifted))
        current = {
            truncate(interp_and(left, right))
            for left in current
            for right in shifted
        }
        if not current:
            break
    return _bounded(current, bound)


def _psi_iter(
    body: LLLExpression,
    until: LLLExpression,
    bound: int,
    budget: _Budget,
    require_until: bool,
) -> Set[PartialInterpretation]:
    """``iter*`` / ``iter(*)``: copies of ``a`` start at successive instants
    until ``b`` starts (bounded)."""
    base = _psi(body, bound, budget)
    stop = _psi(until, bound, budget)
    results: Set[PartialInterpretation] = set(stop)  # b starts immediately
    accumulated: Set[PartialInterpretation] = set(base)
    for offset in range(1, bound):
        # b starts at instant ``offset``: all copies of a started before must
        # end no later than b does (the paper's simultaneity requirement is
        # relaxed to containment within the bound).
        shifted_stop = _shift(stop, offset, bound)
        budget.charge(len(accumulated) * len(shifted_stop))
        for left in accumulated:
            for right in shifted_stop:
                combined = interp_and(left, right)
                if len(combined) <= bound and len(right) >= len(left):
                    results.add(combined)
        # Start another copy of a at instant ``offset``.
        shifted_base = _shift(base, offset, bound)
        budget.charge(len(accumulated) * len(shifted_base))
        next_acc: Set[PartialInterpretation] = set()
        for left in accumulated:
            for right in shifted_base:
                combined = interp_and(left, right)
                if len(combined) <= bound:
                    next_acc.add(combined)
        accumulated = next_acc
        if not accumulated:
            break
    if not require_until:
        results |= _psi_infloop(body, bound, budget)
    return _bounded(results, bound)


def satisfying_interpretations(
    expression: LLLExpression,
    bound: int,
    max_interpretations: Optional[int] = None,
) -> Set[PartialInterpretation]:
    """The consistent (non-contradictory) interpretations within the bound."""
    return {
        i
        for i in Psi(expression, bound, max_interpretations=max_interpretations)
        if is_consistent(i)
    }


def is_satisfiable_bounded(
    expression: LLLExpression,
    bound: int = 4,
    max_interpretations: Optional[int] = None,
) -> bool:
    """Is the expression satisfiable by some computation of length <= bound?"""
    return bool(satisfying_interpretations(expression, bound, max_interpretations))
