"""The unified checking façade — the package's front door.

Three nouns cover every checking question of the reproduction:

* :class:`Session` — holds traces, quantification domains, shared evaluator
  memo tables and the engine registry; answers requests through
  :meth:`~Session.check` and batches through :meth:`~Session.check_many`;
* :class:`CheckRequest` — one formula (string, AST, builder expression, LTL
  or LLL object — see :func:`coerce_formula`) plus mode and options;
* :class:`CheckResult` — one verdict with witness/counterexample, per-engine
  statistics and wall time, whatever engine produced it.

Six pluggable engines wrap the underlying subsystems: ``trace`` (Chapter 3
satisfaction), ``compiled`` (the same satisfaction relation through the
:mod:`repro.compile` plan pipeline — normalized, hash-consed, plan-cached),
``bounded`` (small-scope validity), ``tableau`` (Appendix B / Algorithm A),
``lll`` (Appendix C) and ``monitor`` (incremental prefixes).
``Session.check`` auto-dispatches on the formula fragment when no mode is
given.  The historical entry points remain available as deprecation shims in
:mod:`repro.api.legacy`.

Quickstart::

    from repro.api import Session

    session = Session().add_trace("run", [{"x": 1}, {"x": 2}])
    session.check("<> x == 2", trace="run").holds        # -> True
    session.check("[] (p -> <> q) /\\ <> p -> <> q")     # tableau: valid
"""

from . import legacy
from .coerce import CheckRequestError, coerce_formula, coerce_trace
from .engines import (
    BoundedEngine,
    CompiledEngine,
    Engine,
    EngineCapabilities,
    EngineRegistry,
    LLLEngine,
    MonitorEngine,
    TableauEngine,
    TraceEngine,
    default_registry,
)
from .request import QUERY_SATISFIABILITY, QUERY_VALIDITY, CheckRequest
from .result import CheckResult
from .session import Session, check, check_many

__all__ = [
    "Session",
    "CheckRequest",
    "CheckResult",
    "check",
    "check_many",
    "coerce_formula",
    "coerce_trace",
    "CheckRequestError",
    "Engine",
    "EngineCapabilities",
    "EngineRegistry",
    "TraceEngine",
    "CompiledEngine",
    "BoundedEngine",
    "TableauEngine",
    "LLLEngine",
    "MonitorEngine",
    "default_registry",
    "QUERY_VALIDITY",
    "QUERY_SATISFIABILITY",
    "legacy",
]
