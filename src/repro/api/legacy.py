"""Deprecation-shimmed re-exports of the pre-façade entry points.

Before the façade, "does this formula hold?" had seven disjoint spellings —
``Evaluator.satisfies``, ``Specification.check``, ``run_conformance``,
``Monitor.observe_trace``, ``is_bounded_valid`` / ``find_counterexample``,
``TableauDecider.satisfiability`` / ``validity`` and the LLL bounded
decision — each with its own result type.  They all still work at their
original locations (the engines are built on them); this module re-exports
every one of them under a single roof and emits a :class:`DeprecationWarning`
on first access, pointing migrating code at the :class:`~repro.api.session.Session`
equivalent::

    from repro.api import legacy
    legacy.run_conformance(...)   # works, warns once, says what to use instead
"""

from __future__ import annotations

import warnings
from importlib import import_module
from typing import Dict, Tuple

__all__ = [
    "Evaluator",
    "satisfies",
    "holds_on_context",
    "Specification",
    "SpecificationResult",
    "run_conformance",
    "ConformanceCase",
    "ConformanceReport",
    "Monitor",
    "SpecificationMonitor",
    "MonitorVerdict",
    "is_bounded_valid",
    "find_counterexample",
    "check_bounded_equivalence",
    "BoundedResult",
    "TableauDecider",
    "DecisionResult",
    "is_satisfiable",
    "is_valid",
    "is_satisfiable_bounded",
    "satisfying_interpretations",
]


# name -> (defining module, attribute, Session-based replacement)
_ENTRY_POINTS: Dict[str, Tuple[str, str, str]] = {
    "Evaluator": ("repro.semantics.evaluator", "Evaluator",
                  "Session.check(formula, trace=...)"),
    "satisfies": ("repro.semantics.evaluator", "satisfies",
                  "Session.check(formula, trace=...)"),
    "holds_on_context": ("repro.semantics.evaluator", "holds_on_context",
                         "Session.check(formula, trace=...)"),
    "Specification": ("repro.core.specification", "Specification",
                      "Session.check_specification(spec, trace)"),
    "SpecificationResult": ("repro.core.specification", "SpecificationResult",
                            "Session.check_specification(spec, trace)"),
    "run_conformance": ("repro.checking.runner", "run_conformance",
                        "Session.check_many(...) / run_conformance(session=...)"),
    "ConformanceCase": ("repro.checking.runner", "ConformanceCase",
                        "Session.check_many(...)"),
    "ConformanceReport": ("repro.checking.runner", "ConformanceReport",
                          "Session.check_many(...)"),
    "Monitor": ("repro.checking.monitor", "Monitor",
                "Session.check(formula, trace=..., mode='monitor')"),
    "SpecificationMonitor": ("repro.checking.monitor", "SpecificationMonitor",
                             "Session.check(formula, trace=..., mode='monitor')"),
    "MonitorVerdict": ("repro.checking.monitor", "MonitorVerdict",
                       "Session.check(formula, trace=..., mode='monitor')"),
    "is_bounded_valid": ("repro.core.bounded_checker", "is_bounded_valid",
                         "Session.check(formula, mode='bounded')"),
    "find_counterexample": ("repro.core.bounded_checker", "find_counterexample",
                            "Session.check(formula, mode='bounded')"),
    "check_bounded_equivalence": ("repro.core.bounded_checker",
                                  "check_bounded_equivalence",
                                  "Session.check(Iff(left, right), mode='bounded')"),
    "BoundedResult": ("repro.core.bounded_checker", "BoundedResult",
                      "Session.check(formula, mode='bounded')"),
    "TableauDecider": ("repro.ltl.decision", "TableauDecider",
                       "Session.check(formula, mode='tableau')"),
    "DecisionResult": ("repro.ltl.decision", "DecisionResult",
                       "Session.check(formula, mode='tableau')"),
    "is_satisfiable": ("repro.ltl.decision", "is_satisfiable",
                       "Session.check(formula, mode='tableau', query='satisfiability')"),
    "is_valid": ("repro.ltl.decision", "is_valid",
                 "Session.check(formula, mode='tableau')"),
    "is_satisfiable_bounded": ("repro.lll.semantics", "is_satisfiable_bounded",
                               "Session.check(expr, mode='lll', query='satisfiability')"),
    "satisfying_interpretations": ("repro.lll.semantics",
                                   "satisfying_interpretations",
                                   "Session.check(expr, mode='lll', query='satisfiability')"),
}

_warned = set()


def __getattr__(name: str):
    try:
        module_name, attribute, replacement = _ENTRY_POINTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.api.legacy.{name} is a deprecation shim; "
            f"prefer {replacement} from repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(import_module(module_name), attribute)


def __dir__():
    return sorted(__all__)
