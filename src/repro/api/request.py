"""The unified check request.

A :class:`CheckRequest` pairs one formula with the question being asked of
it (mode, query, trace, options).  It is the single argument type understood
by every engine, by :meth:`Session.check` and by :meth:`Session.check_many`;
the keyword arguments of ``Session.check(formula, **options)`` are exactly
the fields below.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Optional, Sequence

from .coerce import CheckRequestError, coerce_formula

__all__ = ["CheckRequest", "QUERY_SATISFIABILITY", "QUERY_VALIDITY"]


QUERY_VALIDITY = "validity"
QUERY_SATISFIABILITY = "satisfiability"


@dataclass
class CheckRequest:
    """One question of the form "does this formula hold?".

    Parameters
    ----------
    formula:
        The formula, in any shape :func:`~repro.api.coerce.coerce_formula`
        accepts: concrete-syntax string, interval-logic ``Formula`` (or
        builder expression), LTL formula, or LLL expression.
    mode:
        Engine name (``"trace"``, ``"bounded"``, ``"tableau"``, ``"lll"``,
        ``"monitor"``) or ``None`` to auto-dispatch on the formula fragment.
    trace:
        For the trace/monitor engines: a ``Trace``, a sequence of state rows,
        or the name of a trace registered on the session.
    env / domain:
        Logical-variable bindings and ``Forall`` quantification domains
        (trace-backed engines).
    query:
        For the decision engines: ``"validity"`` (default) or
        ``"satisfiability"``.
    max_length / include_lassos / variables:
        Small-scope options for the bounded engine; ``max_length`` doubles as
        the length bound of the LLL engine's partial-interpretation
        semantics.
    theory:
        Optional specialized theory handed to the tableau engine
        (Algorithm A).
    budget:
        Optional work budget for engines whose bounded semantics can blow
        up super-exponentially on nested input.  Currently honored by the
        ``lll`` engine (maximum partial-interpretation pairings explored
        before raising :class:`repro.lll.semantics.PsiBudgetError`); other
        engines ignore it.  ``None`` means unbounded work.
    extract_model:
        Ask for explicit evidence beyond the verdict: the tableau engine
        extracts a lasso model / validity counterexample, the trace engine
        constructs the witness interval of a top-level interval formula.
    compile:
        For trace-carrying requests with no explicit ``mode``: ``True``
        routes to the ``compiled`` engine (normalized, plan-cached
        evaluation — see :mod:`repro.compile`), ``False`` forces the
        interpreting ``trace`` engine, and ``None`` (default) defers to the
        session's ``prefer_compiled`` setting — itself ``True`` by default,
        so unadorned trace-backed requests take the compiled path.
    capture_errors:
        When true, engine exceptions become an error verdict on the
        :class:`~repro.api.result.CheckResult` instead of propagating —
        the behaviour conformance campaigns rely on.
    label:
        Free-form tag echoed on the result (clause names, case ids, ...).
    """

    formula: Any
    mode: Optional[str] = None
    trace: Optional[Any] = None
    env: Optional[Mapping[str, Any]] = None
    domain: Optional[Mapping[str, Iterable[Any]]] = None
    query: str = QUERY_VALIDITY
    max_length: int = 4
    include_lassos: bool = True
    variables: Optional[Sequence[str]] = None
    theory: Optional[object] = None
    budget: Optional[int] = None
    extract_model: bool = False
    compile: Optional[bool] = None
    capture_errors: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.query not in (QUERY_VALIDITY, QUERY_SATISFIABILITY):
            raise CheckRequestError(
                f"query must be {QUERY_VALIDITY!r} or {QUERY_SATISFIABILITY!r}, "
                f"got {self.query!r}"
            )

    def resolved_formula(self):
        """The coerced formula object (parsing strings on first use)."""
        return coerce_formula(self.formula)

    def with_options(self, **changes: Any) -> "CheckRequest":
        """A copy of this request with some fields replaced."""
        return replace(self, **changes)
