"""Chunked multiprocessing fan-out for large checking campaigns.

``Session.check_many`` hands a prepared request list here when asked for
worker processes.  The batch is split into contiguous chunks (preserving
order), each worker materializes its own :class:`~repro.api.session.Session`
and runs a chunk serially, and the results are re-concatenated in request
order.  Workers share nothing; per-trace memo sharing still happens within a
chunk, so chunks should group requests over the same trace — which is how
the conformance runner lays them out.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from ..semantics.trace import Trace
from .request import CheckRequest
from .result import CheckResult

__all__ = ["run_chunked", "split_chunks"]


def _prepare_columns(requests: Sequence[CheckRequest]) -> None:
    """Build each distinct trace's column store once before pickling.

    Traces pickle as their dictionary-encoded columns (never as
    materialized ``State`` rows), so forcing the build here means every
    chunk that shares a trace ships the same already-encoded payload and
    no worker pays the encoding pass again — the columns are the wire
    format, handed to workers as-is.
    """
    seen = set()
    for request in requests:
        trace = request.trace
        if isinstance(trace, Trace) and id(trace) not in seen:
            seen.add(id(trace))
            trace.columns  # noqa: B018 — property builds and caches the store


def split_chunks(
    requests: Sequence[CheckRequest], chunk_count: int, chunk_size: Optional[int] = None
) -> List[List[CheckRequest]]:
    """Split ``requests`` into order-preserving chunks.

    Without an explicit ``chunk_size``, aims at one chunk per worker (never
    more chunks than requests).
    """
    total = len(requests)
    if chunk_size is None:
        chunk_size = max(1, (total + chunk_count - 1) // chunk_count)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    return [list(requests[i : i + chunk_size]) for i in range(0, total, chunk_size)]


def _run_chunk(requests: List[CheckRequest]) -> List[CheckResult]:
    # A fresh session per worker: evaluator memo tables are shared within
    # the chunk, never across processes.
    from .session import Session

    session = Session()
    return [session._run(request) for request in requests]


def run_chunked(
    requests: Sequence[CheckRequest],
    processes: int,
    chunk_size: Optional[int] = None,
) -> List[CheckResult]:
    """Run ``requests`` over ``processes`` workers; results in request order."""
    chunks = split_chunks(requests, processes, chunk_size)
    if len(chunks) <= 1:
        return _run_chunk(list(requests))
    _prepare_columns(requests)
    context = multiprocessing.get_context()
    with context.Pool(processes=min(processes, len(chunks))) as pool:
        chunk_results = pool.map(_run_chunk, chunks)
    return [result for chunk in chunk_results for result in chunk]
