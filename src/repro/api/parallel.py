"""Chunked multiprocessing fan-out for large checking campaigns.

``Session.check_many`` hands a prepared request list here when asked for
worker processes.  The batch is split into contiguous chunks (preserving
order), each worker materializes its own :class:`~repro.api.session.Session`
and runs a chunk serially, and the results are re-concatenated in request
order.  Workers share nothing in memory; per-trace memo sharing still
happens within a chunk, so chunks should group requests over the same trace
— which is how the conformance runner lays them out.

Workers *do* share the parent session's persistent plan store: when the
session was built with ``plan_cache_dir=...`` the directory travels to
every worker session, and the parent precompiles each compiled-path plan
into it before the fan-out — so workers start **warm**, loading plans by
digest (``plan_disk_hits``) instead of recompiling per process.  Digests
are **alpha-invariant**: requests whose formulas differ only in
bound-variable names address one store entry, so a campaign sweeping
renamed variants of one specification compiles it once in the parent and
every worker warm-loads that single plan (``plan_alpha_interned`` counts
the collapsed variants; stores written before alpha-interning migrate on
first touch, visible as ``plan_digest_migrations``).  Each worker's
cache statistics come back with its chunk and are exposed on
``Session.last_parallel_cache_stats``.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..semantics.trace import Trace
from .request import CheckRequest
from .result import CheckResult

__all__ = ["run_chunked", "split_chunks"]


def _prepare_columns(requests: Sequence[CheckRequest]) -> None:
    """Build each distinct trace's column store once before pickling.

    Traces pickle as their dictionary-encoded columns (never as
    materialized ``State`` rows), so forcing the build here means every
    chunk that shares a trace ships the same already-encoded payload and
    no worker pays the encoding pass again — the columns are the wire
    format, handed to workers as-is.
    """
    seen = set()
    for request in requests:
        trace = request.trace
        if isinstance(trace, Trace) and id(trace) not in seen:
            seen.add(id(trace))
            trace.columns  # noqa: B018 — property builds and caches the store


def split_chunks(
    requests: Sequence[CheckRequest], chunk_count: int, chunk_size: Optional[int] = None
) -> List[List[CheckRequest]]:
    """Split ``requests`` into order-preserving chunks.

    Without an explicit ``chunk_size``, aims at one chunk per worker (never
    more chunks than requests).
    """
    total = len(requests)
    if chunk_size is None:
        chunk_size = max(1, (total + chunk_count - 1) // chunk_count)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    return [list(requests[i : i + chunk_size]) for i in range(0, total, chunk_size)]


def _run_chunk(
    payload: Tuple[List[CheckRequest], Optional[str]]
) -> Tuple[List[CheckResult], Dict[str, Any], Dict[str, Any]]:
    # A fresh session per worker: evaluator memo tables are shared within
    # the chunk, never across processes — but the persistent plan store
    # (when configured) is shared with the parent, so plans the parent
    # precompiled load from disk instead of recompiling per worker.  The
    # worker session carries its own child MetricsRegistry; its snapshot
    # rides home with the chunk and the parent merges it on join.
    from .session import Session

    requests, plan_cache_dir = payload
    session = Session(plan_cache_dir=plan_cache_dir)
    results = [session._run(request) for request in requests]
    return results, session.cache_statistics(), session.metrics.snapshot()


def run_chunked(
    requests: Sequence[CheckRequest],
    processes: int,
    chunk_size: Optional[int] = None,
    plan_cache_dir: Optional[str] = None,
    stats_sink: Optional[List[Dict[str, Any]]] = None,
    metrics_sink: Optional[List[Dict[str, Any]]] = None,
) -> List[CheckResult]:
    """Run ``requests`` over ``processes`` workers; results in request order.

    ``plan_cache_dir`` hands every worker session the persistent plan
    store; ``stats_sink`` (a list) collects one cache-statistics dict per
    worker chunk, in chunk order; ``metrics_sink`` likewise collects one
    :meth:`~repro.obs.MetricsRegistry.snapshot` per chunk, ready for
    ``merge_snapshot`` into the parent registry.
    """
    chunks = split_chunks(requests, processes, chunk_size)
    if len(chunks) <= 1:
        results, stats, metrics = _run_chunk((list(requests), plan_cache_dir))
        if stats_sink is not None:
            stats_sink.append(stats)
        if metrics_sink is not None:
            metrics_sink.append(metrics)
        return results
    _prepare_columns(requests)
    context = multiprocessing.get_context()
    with context.Pool(processes=min(processes, len(chunks))) as pool:
        chunk_results = pool.map(
            _run_chunk, [(chunk, plan_cache_dir) for chunk in chunks]
        )
    if stats_sink is not None:
        stats_sink.extend(stats for _, stats, _ in chunk_results)
    if metrics_sink is not None:
        metrics_sink.extend(metrics for _, _, metrics in chunk_results)
    return [result for results, _, _ in chunk_results for result in results]
