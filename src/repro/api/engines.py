"""The pluggable checking engines behind the façade.

Seven engines wrap the underlying subsystems, one per decision style:

========  =====================================================  ==========
name      wraps                                                  question
========  =====================================================  ==========
trace     :mod:`repro.semantics.evaluator`                       s ⊨ α on one trace
compiled  :mod:`repro.compile`                                   s ⊨ α via a cached evaluation plan (vectorized)
stepwise  :mod:`repro.compile`                                   the same plan with the bitset kernel disabled
bounded   :mod:`repro.core.bounded_checker`                      small-scope validity
tableau   :mod:`repro.ltl.decision` + :mod:`repro.ltl.translation`  exact LTL-fragment validity
lll       :mod:`repro.lll`                                       Appendix C bounded satisfiability
monitor   :mod:`repro.checking.monitor`                          incremental prefix verdicts
========  =====================================================  ==========

Each engine consumes a :class:`~repro.api.request.CheckRequest` and produces
a :class:`~repro.api.result.CheckResult`; the
:class:`~repro.api.session.Session` owns timing, error capture, and
auto-dispatch.  New engines plug in through :class:`EngineRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..core.bounded_checker import find_counterexample, is_bounded_valid
from ..errors import ReproError
from ..lll.semantics import satisfying_interpretations
from ..lll.syntax import LLLExpression
from ..lll.translation import ltl_to_lll
from ..ltl.decision import TableauDecider
from ..ltl.syntax import LTLFormula, to_nnf
from ..ltl.translation import interval_to_ltl
from ..semantics.construction import BOTTOM
from ..semantics.reduction import has_star
from ..syntax.formulas import Formula, IntervalFormula, Not, Occurs
from .coerce import CheckRequestError
from .request import QUERY_SATISFIABILITY, QUERY_VALIDITY, CheckRequest
from .result import CheckResult

__all__ = [
    "Engine",
    "EngineCapabilities",
    "EngineRegistry",
    "TraceEngine",
    "CompiledEngine",
    "StepwiseEngine",
    "BoundedEngine",
    "TableauEngine",
    "LLLEngine",
    "MonitorEngine",
    "default_registry",
]


class EngineError(ReproError):
    """An engine received a request it cannot answer."""


@dataclass(frozen=True)
class EngineCapabilities:
    """Machine-readable description of what an engine can answer.

    Tools that route one question through several engines — the differential
    fuzzing oracle in :mod:`repro.gen` foremost — select "applicable" engines
    from this record instead of hard-coding engine names.

    Attributes
    ----------
    needs_trace:
        The engine evaluates over one computation and requires
        ``request.trace`` (trace, monitor).
    queries:
        The ``request.query`` values the engine answers.  Trace-backed
        engines ignore the field and accept both.
    propositional_only:
        The engine enumerates boolean state spaces and rejects formulas with
        non-propositional atoms — comparisons, operation predicates,
        quantifiers (bounded).
    ltl_fragment_only:
        Interval-logic input must lie in the LTL fragment of
        :func:`repro.ltl.translation.interval_to_ltl` (tableau, lll).
    exact:
        The verdict decides the question outright.  Engines with
        ``exact=False`` answer relative to a bound (``max_length``): their
        *refutations* (counterexamples, found models) are sound but a
        bounded "valid"/"unsatisfiable" does not settle the unbounded
        question.
    incremental:
        The engine produces a verdict for every prefix of the trace, not
        just the whole computation (monitor).  Per-prefix verdicts cost
        extra work even with incremental plan states absorbing each
        appended state, so batch tools may still cap trace length for such
        engines.
    stutter_only:
        The engine only implements the paper's finite-computation
        convention and cannot see a lasso's repeating cycle (monitor).
    """

    needs_trace: bool = False
    queries: Tuple[str, ...] = (QUERY_VALIDITY, QUERY_SATISFIABILITY)
    propositional_only: bool = False
    ltl_fragment_only: bool = False
    exact: bool = True
    incremental: bool = False
    stutter_only: bool = False


class Engine:
    """Base class of checking engines.

    Subclasses set :attr:`name` and implement :meth:`run`; they should raise
    (not swallow) on unanswerable requests — the session turns exceptions
    into error verdicts when the request asks for that.
    """

    name: str = "?"
    capabilities: EngineCapabilities = EngineCapabilities()

    def run(self, request: CheckRequest, session) -> CheckResult:
        raise NotImplementedError

    def _interval_formula(self, request: CheckRequest) -> Formula:
        formula = request.resolved_formula()
        if not isinstance(formula, Formula):
            raise EngineError(
                f"the {self.name!r} engine checks interval-logic formulas, "
                f"got {type(formula).__name__}"
            )
        return formula


class TraceEngine(Engine):
    """Chapter 3 satisfaction on one computation (wraps the evaluator)."""

    name = "trace"
    capabilities = EngineCapabilities(needs_trace=True, exact=True)

    def run(self, request: CheckRequest, session) -> CheckResult:
        formula = self._interval_formula(request)
        trace = session.resolve_trace(request.trace)
        evaluator = session.evaluator(trace, request.domain)
        memo_before = evaluator.memo_size
        verdict = evaluator.satisfies(formula, request.env)
        witness = None
        if (
            request.extract_model
            and isinstance(formula, (IntervalFormula, Occurs))
            and not has_star(formula.term)
        ):
            # Re-running the construction is extra work, so the witness
            # interval is opt-in (campaign hot paths never read it).
            found = evaluator.construct_interval(formula.term, env=request.env)
            if found is not None and found is not BOTTOM:
                witness = found
        return CheckResult(
            verdict=verdict,
            engine=self.name,
            request=request,
            witness=witness,
            statistics={
                "trace_length": trace.length,
                "memo_entries": evaluator.memo_size,
                "memo_new_entries": evaluator.memo_size - memo_before,
            },
        )


class CompiledEngine(Engine):
    """Chapter 3 satisfaction through the :mod:`repro.compile` pipeline.

    Semantically identical to the ``trace`` engine (the differential fuzzer
    enforces this), but the formula is normalized, hash-consed and lowered
    to an executable plan exactly once: the session's
    :class:`~repro.compile.cache.PlanCache` shares the plan across
    ``check_many`` batches and across traces, the per-trace
    :class:`~repro.compile.runtime.PlanState` shares memo tables and
    interval-endpoint indexes across requests, plan nodes dispatch through
    closures bound at state-binding time, and event searches bisect
    instead of scanning.  This is the **default** path for trace-backed
    requests (``Session(prefer_compiled=True)`` is the default); opt out
    per request with ``compile=False`` or per session with
    ``Session(prefer_compiled=False)``.
    """

    name = "compiled"
    capabilities = EngineCapabilities(needs_trace=True, exact=True)
    #: Bind plan states in the vectorized (bitset-kernel) mode.  The
    #: ``stepwise`` subclass flips this off, giving the differential
    #: oracle a per-position compiled run to judge against.
    vectorize = True

    def run(self, request: CheckRequest, session) -> CheckResult:
        formula = self._interval_formula(request)
        trace = session.resolve_trace(request.trace)
        state, from_cache = session.plan_state(
            trace, formula, request.domain, vectorize=self.vectorize
        )
        plan = state.plan
        memo_before = state.memo_size
        dispatch_before = state.stats.dispatch_calls
        verdict = state.satisfies(request.env)
        witness = None
        if request.extract_model:
            # Witness construction is opt-in, exactly like the trace engine.
            found = state.construct_root_interval(request.env)
            if found is not None and found is not BOTTOM:
                witness = found
        statistics = {
            "trace_length": trace.length,
            "plan_nodes": plan.node_count,
            "plan_terms": plan.term_count,
            "plan_digest": plan.digest[:12],
            "plan_from_cache": from_cache,
            "memo_entries": state.memo_size,
            "memo_new_entries": state.memo_size - memo_before,
            "dispatch_calls": state.stats.dispatch_calls - dispatch_before,
            "event_indexes": state.index_count,
            "vector_nodes": state.vector_node_count,
        }
        statistics.update(session.plan_cache.statistics())
        return CheckResult(
            verdict=verdict,
            engine=self.name,
            request=request,
            witness=witness,
            statistics=statistics,
            details=plan,
        )


class StepwiseEngine(CompiledEngine):
    """The compiled runtime with the vectorized binding mode disabled.

    Same plan cache, same closure-lowered dispatch, but every node runs
    the per-position memo path — no bitset kernel, no whole-column
    profiles.  Exists so the differential fuzzing oracle can judge the
    vectorized runtime against an independent compiled execution (and so
    callers can pin the per-position behaviour when benchmarking it).
    """

    name = "stepwise"
    capabilities = EngineCapabilities(needs_trace=True, exact=True)
    vectorize = False


class BoundedEngine(Engine):
    """Exhaustive small-scope validity (wraps the bounded checker)."""

    name = "bounded"
    capabilities = EngineCapabilities(propositional_only=True, exact=False)

    def run(self, request: CheckRequest, session) -> CheckResult:
        formula = self._interval_formula(request)
        if request.query == QUERY_VALIDITY:
            result = is_bounded_valid(
                formula,
                variables=request.variables,
                max_length=request.max_length,
                include_lassos=request.include_lassos,
            )
            return CheckResult(
                verdict=result.valid,
                engine=self.name,
                request=request,
                counterexample=result.counterexample,
                statistics={
                    "traces_checked": result.traces_checked,
                    "max_length": result.max_length,
                    "variables": list(result.variables),
                },
                details=result,
            )
        # Satisfiability within the bound: a model of the formula is a
        # counterexample to the validity of its negation.
        model, checked = find_counterexample(
            Not(formula),
            variables=request.variables,
            max_length=request.max_length,
            include_lassos=request.include_lassos,
        )
        return CheckResult(
            verdict=model is not None,
            engine=self.name,
            request=request,
            witness=model,
            statistics={"traces_checked": checked, "max_length": request.max_length},
        )


class TableauEngine(Engine):
    """Exact decision of the LTL fragment (wraps Appendix B / Algorithm A)."""

    name = "tableau"
    capabilities = EngineCapabilities(ltl_fragment_only=True, exact=True)

    def _ltl_formula(self, request: CheckRequest) -> LTLFormula:
        formula = request.resolved_formula()
        if isinstance(formula, LTLFormula):
            return formula
        if isinstance(formula, Formula):
            return interval_to_ltl(formula)
        raise EngineError(
            f"the tableau engine needs an LTL or interval-logic formula, "
            f"got {type(formula).__name__}"
        )

    def run(self, request: CheckRequest, session) -> CheckResult:
        ltl = self._ltl_formula(request)
        decider = TableauDecider(request.theory)
        if request.query == QUERY_VALIDITY:
            result = decider.validity(ltl, extract_model=request.extract_model)
            witness, counterexample = None, result.model
        else:
            result = decider.satisfiability(ltl, extract_model=request.extract_model)
            witness, counterexample = result.model, None
        statistics = dict(result.statistics.as_row())
        statistics["surviving_nodes"] = result.statistics.surviving_nodes
        statistics["surviving_edges"] = result.statistics.surviving_edges
        return CheckResult(
            verdict=result.satisfiable,  # "valid" for validity queries
            engine=self.name,
            request=request,
            witness=witness,
            counterexample=counterexample,
            statistics=statistics,
            details=result,
        )


class LLLEngine(Engine):
    """Appendix C low-level language, bounded partial-interpretation semantics.

    Satisfiability only: ``Ψ`` denotes truncated partial interpretations, so
    an interpretation of the *negation* within the bound does not refute
    validity (an eventuality may simply lie past the truncation).  Validity
    questions belong to the ``tableau`` or ``bounded`` engines.
    """

    name = "lll"
    capabilities = EngineCapabilities(
        queries=(QUERY_SATISFIABILITY,), ltl_fragment_only=True, exact=False
    )

    @staticmethod
    def _canonical(interpretations) -> Tuple:
        """A deterministic representative of a set of interpretations."""
        return min(
            interpretations,
            key=lambda i: (len(i), [tuple(sorted(c)) for c in i]),
        )

    def _expression(self, request: CheckRequest) -> LLLExpression:
        formula = request.resolved_formula()
        if isinstance(formula, LLLExpression):
            return formula
        if isinstance(formula, Formula):
            formula = interval_to_ltl(formula)
        if isinstance(formula, LTLFormula):
            return ltl_to_lll(to_nnf(formula))
        raise EngineError(
            f"the lll engine needs an LLL, LTL or interval-logic formula, "
            f"got {type(formula).__name__}"
        )

    def run(self, request: CheckRequest, session) -> CheckResult:
        if request.query != QUERY_SATISFIABILITY:
            raise EngineError(
                "the lll engine answers query='satisfiability' only: the "
                "bounded Appendix C semantics truncates interpretations, so "
                "refuting the negation within a bound does not decide "
                "validity — use the tableau or bounded engine for that"
            )
        bound = request.max_length
        expression = self._expression(request)
        models = satisfying_interpretations(
            expression, bound, max_interpretations=request.budget
        )
        return CheckResult(
            verdict=bool(models),
            engine=self.name,
            request=request,
            witness=self._canonical(models) if models else None,
            statistics={"bound": bound, "interpretations": len(models)},
        )


class MonitorEngine(Engine):
    """Incremental prefix evaluation (wraps the trace monitor).

    Each request drives its own :class:`~repro.checking.monitor.Monitor`
    over the full trace.  Monitors run on incremental plan states
    (:mod:`repro.compile`), so the S per-prefix verdicts cost amortized
    O(changed work) per state rather than a full re-evaluation each; when
    only the final verdict matters the ``trace``/``compiled`` engines are
    still cheaper, and
    :class:`~repro.checking.monitor.SpecificationMonitor` remains the tool
    for observing many clauses in one pass over a *live* state stream.
    """

    name = "monitor"
    capabilities = EngineCapabilities(
        needs_trace=True, exact=True, incremental=True, stutter_only=True
    )

    def run(self, request: CheckRequest, session) -> CheckResult:
        # Imported lazily: repro.checking imports the façade for its
        # conformance runner, so a top-level import here would be circular.
        from ..checking.monitor import Monitor

        formula = self._interval_formula(request)
        trace = session.resolve_trace(request.trace)
        name = request.label or "formula"
        monitor = Monitor({name: formula}, request.domain)
        verdicts = monitor.observe_trace(trace)
        verdict = verdicts[name]
        history = list(verdict.history)
        first_failure = next(
            (step for step, value in enumerate(history, start=1) if not value),
            None,
        )
        return CheckResult(
            verdict=verdict.holds,
            engine=self.name,
            request=request,
            counterexample=first_failure,
            statistics={
                "prefix_length": monitor.prefix_length,
                "stable_for": verdict.stable_for,
                "first_failure_step": first_failure,
                "history": history,
            },
            details=verdict,
        )


class EngineRegistry:
    """Name → engine mapping; sessions dispatch through one of these."""

    def __init__(self, engines: Iterable[Engine] = ()) -> None:
        self._engines = {}
        for engine in engines:
            self.register(engine)

    def register(self, engine: Engine, replace: bool = False) -> None:
        if not replace and engine.name in self._engines:
            raise CheckRequestError(f"engine {engine.name!r} is already registered")
        self._engines[engine.name] = engine

    def get(self, name: str) -> Engine:
        try:
            return self._engines[name]
        except KeyError:
            raise CheckRequestError(
                f"unknown engine {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._engines))

    def engines(self) -> Tuple[Engine, ...]:
        """The registered engines, in name order."""
        return tuple(self._engines[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._engines


def default_registry() -> EngineRegistry:
    """A fresh registry holding the seven standard engines."""
    return EngineRegistry(
        [
            TraceEngine(),
            CompiledEngine(),
            StepwiseEngine(),
            BoundedEngine(),
            TableauEngine(),
            LLLEngine(),
            MonitorEngine(),
        ]
    )
