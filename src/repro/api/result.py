"""The unified check result.

Every engine answers with the same :class:`CheckResult`: a three-valued
verdict, an optional witness or counterexample (an interval on the trace, an
explicit lasso model, a refuting boolean trace, or a satisfying LLL partial
interpretation), the engine's own statistics, and the wall-clock time spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .request import CheckRequest

__all__ = ["CheckResult"]


@dataclass
class CheckResult:
    """Outcome of one :class:`~repro.api.request.CheckRequest`.

    Attributes
    ----------
    verdict:
        ``True`` (holds / valid / satisfiable depending on the query),
        ``False`` (fails), or ``None`` when the engine errored and the
        request asked for errors to be captured.
    engine:
        Name of the engine that produced the verdict.
    engine_reason:
        Auto-dispatch audit trail: why this engine was selected ("explicit
        mode", "trace-backed; session prefer_compiled → compiled", "no
        trace; LTL-fragment interval formula → tableau", ...), including
        any automatic fallback taken.  Campaigns that care which path
        answered a non-trace-backed request read it off the result instead
        of re-deriving the dispatch rules.
    request:
        The request this result answers.
    witness:
        Evidence *for* the verdict: the constructed interval (trace engine),
        an explicit model (tableau/LLL satisfiability), ...
    counterexample:
        Evidence *against*: a refuting trace (bounded engine), a
        counterexample model to validity (tableau), a falsified clause, ...
    statistics:
        Engine-specific counters (memo entries, traces checked, tableau
        node/edge counts, monitor stability, ...).
    wall_time_s:
        Wall-clock seconds spent inside the engine.
    error:
        ``"ExceptionType: message"`` when the engine raised and the request
        had ``capture_errors`` set.
    details:
        The engine's native result object (``BoundedResult``,
        ``DecisionResult``, ``MonitorVerdict``, ...), for callers migrating
        from the pre-façade entry points.
    """

    verdict: Optional[bool]
    engine: str
    request: CheckRequest
    engine_reason: Optional[str] = None
    witness: Any = None
    counterexample: Any = None
    statistics: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    error: Optional[str] = None
    details: Any = None

    @property
    def holds(self) -> bool:
        """Strict reading of the verdict: only an affirmative ``True`` counts."""
        return self.verdict is True

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        """One line: verdict, engine, label, timing."""
        if self.verdict is None:
            status = "ERROR"
        else:
            status = "PASS" if self.verdict else "FAIL"
        label = f" {self.request.label}" if self.request.label else ""
        tail = f" ({self.error})" if self.error else ""
        return (
            f"[{status}]{label} engine={self.engine} "
            f"{self.wall_time_s * 1000.0:.2f}ms{tail}"
        )
