"""Input coercion for the checking façade.

Every façade entry point accepts formulas and traces in whatever shape the
caller already has:

* a concrete-syntax string (parsed with :func:`repro.syntax.parse_formula`,
  ASCII or unicode notation);
* an interval-logic :class:`~repro.syntax.formulas.Formula` or a builder
  expression (a bare :class:`~repro.syntax.terms.Predicate` or ``bool``);
* a propositional LTL formula (:class:`~repro.ltl.syntax.LTLFormula`) for the
  tableau and LLL engines;
* a low-level-language expression (:class:`~repro.lll.syntax.LLLExpression`)
  for the LLL engine;
* for traces: a :class:`~repro.semantics.trace.Trace`, a sequence of state
  rows (handed to :func:`~repro.semantics.trace.make_trace`), or the name of
  a trace registered on the :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from typing import Any, Union

from ..errors import ReproError
from ..lll.syntax import LLLExpression
from ..ltl.syntax import LTLFormula
from ..semantics.trace import Trace, make_trace
from ..syntax.builder import to_formula
from ..syntax.formulas import Formula
from ..syntax.parser import parse_formula
from ..syntax.terms import Predicate

__all__ = ["CheckRequestError", "FormulaLike", "coerce_formula", "coerce_trace"]


FormulaLike = Union[str, bool, Formula, Predicate, LTLFormula, LLLExpression]


class CheckRequestError(ReproError):
    """A check request was malformed (bad formula/trace input or options)."""


def coerce_formula(value: FormulaLike) -> Union[Formula, LTLFormula, LLLExpression]:
    """Coerce ``value`` into a formula object one of the engines can check."""
    if isinstance(value, (Formula, LTLFormula, LLLExpression)):
        return value
    if isinstance(value, str):
        return parse_formula(value)
    if isinstance(value, (bool, Predicate)):
        return to_formula(value)
    raise CheckRequestError(
        "cannot interpret as a formula: expected a string, Formula, "
        f"Predicate, bool, LTLFormula or LLLExpression, got "
        f"{type(value).__name__}"
    )


def coerce_trace(value: Any) -> Trace:
    """Coerce ``value`` into a :class:`Trace` (rows are accepted directly).

    Trace *names* are resolved by the session, not here; a string reaching
    this function is an error.
    """
    if isinstance(value, Trace):
        return value
    if isinstance(value, str):
        raise CheckRequestError(
            f"trace name {value!r} is not registered on this session"
        )
    if isinstance(value, (list, tuple)):
        return make_trace(value)
    raise CheckRequestError(
        "cannot interpret as a trace: expected a Trace, a registered trace "
        f"name, or a sequence of state rows, got {type(value).__name__}"
    )
