"""The façade session: one front door for every checking question.

A :class:`Session` holds the shared context of a checking campaign — named
traces, default quantification domains, per-trace evaluators with their memo
tables, and the engine registry — and answers
:class:`~repro.api.request.CheckRequest` objects through
:meth:`Session.check` and :meth:`Session.check_many`.

Auto-dispatch picks the engine from the formula fragment and the request
shape::

    LLL expression                      -> lll
    request carries a trace             -> compiled (the default path; the
                                           interpreting trace engine on
                                           compile=False requests or
                                           Session(prefer_compiled=False))
    LTL formula / LTL fragment          -> tableau
    anything else (quantifiers, ops...) -> bounded

Every :class:`~repro.api.result.CheckResult` records *why* its engine was
selected in ``engine_reason`` — including the automatic fallback from the
compiled path to the interpreting evaluator should a formula fail to lower.

``check_many`` batches requests over the shared evaluator memo tables and
can fan a large campaign out over worker processes in chunks;
:meth:`Session.check_spec` checks a whole specification through one
multi-root :class:`~repro.compile.specplan.SpecPlan` so clauses share
subformula work.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..compile.dag import CompileError
from ..lll.syntax import LLLExpression
from ..obs import MetricsRegistry, Tracer
from ..ltl.syntax import LTLFormula
from ..ltl.translation import is_in_ltl_fragment
from ..semantics.evaluator import Evaluator
from ..semantics.trace import Trace
from ..syntax.formulas import Formula
from .coerce import CheckRequestError, coerce_trace
from .engines import Engine, EngineRegistry, default_registry
from .request import CheckRequest
from .result import CheckResult

__all__ = ["Session", "check", "check_many"]


RequestLike = Union[CheckRequest, Any]


_UNCACHEABLE = object()


def _domain_key(domain: Optional[Mapping[str, Iterable[Any]]]) -> Any:
    if not domain:
        return None
    try:
        return tuple(sorted((name, tuple(values)) for name, values in domain.items()))
    except TypeError:
        return _UNCACHEABLE  # unhashable domain: cannot be shared


class Session:
    """Shared context for a checking campaign.

    Parameters
    ----------
    domain:
        Default ``Forall`` quantification domains applied when a request
        carries none.
    engines:
        A custom :class:`~repro.api.engines.EngineRegistry`; defaults to the
        six standard engines.
    processes:
        Default worker-process count for :meth:`check_many` (``None`` =
        in-process).
    prefer_compiled:
        Auto-dispatch trace-carrying requests to the ``compiled`` engine
        (plan-cached evaluation, :mod:`repro.compile`).  **On by default**:
        the compiled path is exact-verdict pinned against the interpreting
        evaluator across the differential corpora, and a formula that fails
        to lower falls back to the ``trace`` engine automatically (audited
        on ``CheckResult.engine_reason``).  Pass ``prefer_compiled=False``
        to keep the interpreting ``trace`` engine the default; requests
        override per-call with ``compile=True`` / ``compile=False``.
    plan_cache_dir:
        Directory of the digest-addressed **persistent** plan store
        (:class:`~repro.compile.cache.DiskPlanStore`).  Defaults to the
        ``REPRO_PLAN_CACHE`` environment variable when set — which worker
        processes inherit, so ``check_many(processes=...)`` fan-outs and
        :mod:`repro.serve` shard workers reload plans compiled by any
        earlier process instead of recompiling per worker.  An explicit
        directory is threaded into ``check_many(processes=...)`` worker
        sessions too, and the parent precompiles each compiled-path plan
        into it before fanning out — warm workers report their cache
        statistics on :attr:`last_parallel_cache_stats`.
    forall_unroll_cap:
        Bound on quantifier unrolling in the compiled runtime (``None`` =
        the runtime default, ``0`` disables specialization).  Part of the
        bound-plan-state cache key: plan states specialized under
        different caps never alias.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to record into (defaults to
        a fresh one per session; pass ``repro.obs.NULL_METRICS`` for the
        uninstrumented baseline).  Every check records engine dispatch,
        latency, errors, fallbacks and plan-cache hit/miss into labelled
        series; :meth:`metrics_snapshot` adds the cache gauges and returns
        the JSON-safe snapshot.
    tracer:
        A :class:`~repro.obs.Tracer`; every :meth:`check` / :meth:`check_spec`
        call opens a span (engine, reason, verdict) into its bounded
        buffer.
    share_plan_states:
        Enable the cross-trace plan-state pool and the monitor identity
        fast path (the default).  ``False`` forces every
        :meth:`monitor` call to parse, digest and lower from scratch —
        the unpooled baseline the sharing benchmark compares against.
    """

    def __init__(
        self,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        engines: Optional[EngineRegistry] = None,
        processes: Optional[int] = None,
        prefer_compiled: bool = True,
        plan_cache_dir: Optional[str] = None,
        forall_unroll_cap: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        share_plan_states: bool = True,
    ) -> None:
        self._default_domain = dict(domain) if domain else None
        self._share_plan_states = bool(share_plan_states)
        self._registry = engines if engines is not None else default_registry()
        # Custom registries cannot be reconstructed inside worker processes,
        # so parallel fan-out is reserved for the default engine set.
        self._registry_is_default = engines is None
        self._processes = processes
        self._prefer_compiled = prefer_compiled
        self._plan_cache_dir = plan_cache_dir
        self._forall_unroll_cap = forall_unroll_cap
        #: Per-worker cache statistics of the most recent
        #: ``check_many(processes=...)`` fan-out (one dict per chunk).
        #: Kept for tooling compatibility — worker telemetry now also
        #: arrives as ``repro.obs`` registry snapshots merged into
        #: :attr:`metrics` on join.
        self.last_parallel_cache_stats: List[Dict[str, Any]] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # Hot-path instruments, declared once (children are cached too).
        self._m_checks = self.metrics.counter(
            "repro_checks_total", "Checks answered, by engine.", ("engine",)
        )
        self._m_check_seconds = self.metrics.histogram(
            "repro_check_seconds", "Per-check wall time, by engine.", ("engine",)
        )
        self._m_check_errors = self.metrics.counter(
            "repro_check_errors_total", "Checks that raised/captured an error, by engine.",
            ("engine",),
        )
        self._m_fallbacks = self.metrics.counter(
            "repro_compile_fallbacks_total",
            "Compiled-path requests that fell back to the trace engine.",
        )
        self._m_plan_requests = self.metrics.counter(
            "repro_plan_requests_total",
            "Compiled-plan lookups, by outcome (hit = served from cache).",
            ("outcome",),
        )
        self._m_spec_checks = self.metrics.counter(
            "repro_spec_checks_total",
            "check_spec calls, by evaluation path (specplan or per-clause).",
            ("path",),
        )
        self._m_parallel_chunks = self.metrics.counter(
            "repro_parallel_chunks_total",
            "Worker chunks completed by check_many fan-outs.",
        )
        self._m_plan_interned = self.metrics.counter(
            "repro_plan_interned_total",
            "Plan-cache hits that served an alpha-equivalent (renamed) "
            "formula from an interned plan.",
        )
        self._m_plan_state_pool = self.metrics.counter(
            "repro_plan_state_pool_total",
            "Plan-state pool events, by outcome "
            "(hit/miss on acquire, released/discarded on release).",
            ("outcome",),
        )
        self._traces: Dict[str, Trace] = {}
        self._evaluators: Dict[Tuple[int, Any], Evaluator] = {}
        self._trace_refs: Dict[int, Trace] = {}
        self._plan_cache: Optional[Any] = None
        self._plan_states: Dict[Tuple[str, int, Any], Any] = {}
        # Spec plans re-resolved by specification identity, skipping the
        # per-call clause interpretation + digest on repeated check_spec
        # calls (conformance campaigns check one spec on many traces).
        # Values are (plan, specification): holding the spec in the entry
        # keeps its id() valid for exactly as long as the key can match.
        # Bounded LRU so sessions streaming fresh Specification objects
        # (the spec-mode fuzzer) stay bounded, and entries drop when the
        # plan cache evicts their plan.
        self._spec_plans: "OrderedDict[Tuple[int, int, Any], Tuple[Any, Any]]" = (
            OrderedDict()
        )
        self._spec_plan_failures: set = set()
        # Monitor fast path: formulas resolved by *identity* skip the
        # per-open clause parse + spec digest (a serve registry opening
        # thousands of streams passes the same formula objects each time).
        # Entries pin the formula objects so the id() keys cannot recycle.
        self._monitor_plans: "OrderedDict[Any, Tuple[Any, Any, Any]]" = (
            OrderedDict()
        )
        # Lazy bounded pool of lowered incremental plan states, keyed by
        # (plan digest, domain key, unroll cap); see release_monitor.
        self._plan_state_pool: Optional[Any] = None

    # -- traces and evaluators -----------------------------------------------------

    def add_trace(self, name: str, trace: Any) -> "Session":
        """Register a trace under ``name`` (rows are coerced); chainable."""
        self._traces[name] = coerce_trace(trace)
        return self

    def trace(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise CheckRequestError(
                f"no trace named {name!r} on this session "
                f"(registered: {', '.join(sorted(self._traces)) or 'none'})"
            ) from None

    def trace_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._traces))

    def resolve_trace(self, value: Any) -> Trace:
        """A ``Trace`` from a request's ``trace`` field (name, rows, object)."""
        if value is None:
            raise CheckRequestError(
                "this engine evaluates over a computation; pass trace=... "
                "(a Trace, a registered trace name, or state rows)"
            )
        if isinstance(value, str):
            return self.trace(value)
        return coerce_trace(value)

    def evaluator(
        self,
        trace: Trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Evaluator:
        """The shared evaluator (and memo table) for ``trace`` and ``domain``.

        Requests over the same trace and domain reuse one memo table, so a
        batch of clauses — or a whole conformance campaign — shares every
        subformula verdict.  Shared evaluators (and their traces) stay alive
        for the session's lifetime; long-lived sessions churning through
        many traces should call :meth:`clear_caches` between campaigns.
        """
        if domain is None:
            domain = self._default_domain
        domain_key = _domain_key(domain)
        if domain_key is _UNCACHEABLE:
            return Evaluator(trace, domain)
        key = (id(trace), domain_key)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = Evaluator(trace, domain)
            self._evaluators[key] = evaluator
            # Keep the trace alive so the id() key cannot be recycled.
            self._trace_refs[id(trace)] = trace
        return evaluator

    def clear_caches(self) -> "Session":
        """Release every shared evaluator, memo table, plan and pinned trace.

        Both the plans and every bound plan state (single- and multi-root)
        are dropped, and the plan-cache hit/miss/eviction statistics reset
        to zero — the counters always describe the current cache
        generation.  Named traces registered with :meth:`add_trace` are
        kept; call this between campaigns on a long-lived session to bound
        memory.
        """
        self._evaluators.clear()
        self._trace_refs.clear()
        self._plan_states.clear()
        self._spec_plans.clear()
        self._spec_plan_failures.clear()
        self._monitor_plans.clear()
        if self._plan_state_pool is not None:
            self._plan_state_pool.clear()
        if self._plan_cache is not None:
            self._plan_cache.clear()
        return self

    # -- compiled plans ----------------------------------------------------------

    @property
    def plan_cache(self):
        """The session's :class:`~repro.compile.cache.PlanCache` (lazy)."""
        if self._plan_cache is None:
            from ..compile import PlanCache

            self._plan_cache = PlanCache(
                on_evict=self._drop_plan_states_for,
                disk_path=self._plan_cache_dir,
            )
        return self._plan_cache

    @property
    def plan_state_pool(self):
        """The session's :class:`~repro.compile.pool.PlanStatePool` (lazy)."""
        if self._plan_state_pool is None:
            from ..compile.pool import PlanStatePool

            self._plan_state_pool = PlanStatePool()
        return self._plan_state_pool

    def cache_statistics(self) -> Dict[str, Any]:
        """One snapshot of every cache this session holds.

        Plan-cache hit/miss/eviction and disk hit/write counters plus the
        bound plan-state, evaluator and spec-identity entry counts — the
        numbers :mod:`repro.serve` surfaces per worker in service
        snapshots.  ``plan_disk_writes`` / ``plan_disk_hits`` are always
        present (zero without a persistent store), so one call reports the
        full cache picture.  The same numbers flow into
        :meth:`metrics_snapshot` as ``repro_plan_cache_*`` series.
        """
        stats: Dict[str, Any] = dict(self.plan_cache.statistics())
        stats.setdefault("plan_disk_writes", 0)
        stats.setdefault("plan_disk_hits", 0)
        stats["plan_states"] = len(self._plan_states)
        stats["evaluators"] = len(self._evaluators)
        stats["spec_plan_entries"] = len(self._spec_plans)
        stats["monitor_plan_entries"] = len(self._monitor_plans)
        if self._plan_state_pool is not None:
            stats.update(self._plan_state_pool.statistics())
        else:
            stats.update(
                {
                    "plan_state_pool_size": 0,
                    "plan_state_pool_keys": 0,
                    "plan_state_pool_hits": 0,
                    "plan_state_pool_misses": 0,
                    "plan_state_pool_releases": 0,
                    "plan_state_pool_discards": 0,
                }
            )
        return stats

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The session's :class:`~repro.obs.MetricsRegistry` snapshot with
        the cache gauges synced in (the ``repro.obs`` successor to
        :meth:`cache_statistics`: same counters, one composable format).
        """
        cache = self.cache_statistics()
        gauges = {
            "repro_plan_cache_size": ("plan_cache_size", "Plans resident in the LRU."),
            "repro_plan_cache_hits": ("plan_cache_hits", "LRU hits this generation."),
            "repro_plan_cache_misses": ("plan_cache_misses", "LRU misses this generation."),
            "repro_plan_cache_evictions": ("plan_cache_evictions", "LRU evictions."),
            "repro_plan_disk_hits": ("plan_disk_hits", "Plans loaded from the persistent store."),
            "repro_plan_disk_writes": ("plan_disk_writes", "Plans written to the persistent store."),
            "repro_plan_states": ("plan_states", "Bound plan states held."),
            "repro_evaluators": ("evaluators", "Shared interpreter evaluators held."),
            "repro_plan_state_pool_size": (
                "plan_state_pool_size", "Lowered plan states parked in the pool."),
            "repro_plan_alpha_interned": (
                "plan_alpha_interned",
                "Cache lookups collapsed onto an alpha-equivalent plan."),
            "repro_plan_digest_migrations": (
                "plan_digest_migrations",
                "Disk entries re-keyed from the pre-alpha digest."),
        }
        for name, (key, help_text) in gauges.items():
            if key in cache:
                self.metrics.gauge(name, help_text).child().set(cache[key])
        self.metrics.gauge(
            "repro_plan_compile_seconds", "Cumulative plan compile time."
        ).child().set(cache.get("plan_compile_time_s", 0.0))
        return self.metrics.snapshot()

    def monitor(
        self,
        formulas: Mapping[str, Any],
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        **options: Any,
    ):
        """An incremental :class:`~repro.checking.monitor.Monitor` whose
        multi-root plan comes from this session's (warm) plan cache.

        Opening thousands of monitored streams over the same specification
        compiles it once per process — and, with a persistent
        ``plan_cache_dir``, once per *fleet*.  ``options`` pass through to
        the monitor (``on_change``, ``capture_errors``, ``stat_window``).
        The monitor records whether its plan was served from cache on
        ``plan_from_cache`` and whether its lowered state came from the
        plan-state pool on ``state_from_pool``.

        Two sharing layers sit behind this call.  Formulas passed by
        *identity* (the serve registry resolves each spec family once and
        reuses the objects) skip the per-open parse + digest entirely.
        And unless the session was built with ``share_plan_states=False``,
        a monitor released through :meth:`release_monitor` parks its
        fully-lowered plan state in a bounded pool, keyed by (plan digest,
        domain, unroll cap); the next open of the same shape reuses the
        closure table instead of lowering again.
        """
        from ..checking.monitor import Monitor

        from ..syntax.parser import parse_formula

        if domain is None:
            domain = self._default_domain
        cap = options.get("forall_unroll_cap", self._forall_unroll_cap)
        domain_key = _domain_key(domain)
        plan = None
        items: Any = None
        from_cache = False
        identity_key = None
        if self._share_plan_states and domain_key is not _UNCACHEABLE:
            identity_key = (
                tuple((name, id(f)) for name, f in formulas.items()),
                domain_key,
                cap,
            )
            entry = self._monitor_plans.get(identity_key)
            if entry is not None:
                self._monitor_plans.move_to_end(identity_key)
                plan, items = entry[0], entry[1]
                from_cache = True
        if plan is None:
            items = [
                (name, parse_formula(f) if isinstance(f, str) else f)
                for name, f in formulas.items()
            ]
            plan, from_cache = self.plan_cache.get_spec(items, domain)
            if plan.sources != tuple(items):
                self._m_plan_interned.child().inc()
            if identity_key is not None:
                self._monitor_plans[identity_key] = (
                    plan, items, tuple(formulas.values()),
                )
                while len(self._monitor_plans) > self._SPEC_PLAN_IDENTITY_CAPACITY:
                    self._monitor_plans.popitem(last=False)
        options.setdefault("forall_unroll_cap", self._forall_unroll_cap)
        pool_key = None
        pooled = None
        if self._share_plan_states and domain_key is not _UNCACHEABLE:
            pool_key = (plan.digest, domain_key, cap)
            pooled = self.plan_state_pool.acquire(pool_key)
            if pooled is not None and pooled.plan is not plan:
                # The plan was evicted and recompiled between park and
                # acquire; a state lowered for the old object is garbage.
                pooled = None
            self._m_plan_state_pool.child(
                "hit" if pooled is not None else "miss"
            ).inc()
        monitor = Monitor(
            dict(items), domain, plan=plan, plan_state=pooled, **options
        )
        monitor.plan_from_cache = from_cache
        if pool_key is not None:
            monitor.plan_state._pool_key = pool_key
        return monitor

    def release_monitor(self, monitor) -> bool:
        """Park a finished monitor's lowered plan state for reuse.

        The serve registry calls this when a stream closes (or a handle is
        rebuilt): the monitor's spec-plan state is reset *in place* —
        memos, slots, kernel profiles and the growing prefix all cleared,
        the expensive closure table kept — and pooled under its (plan,
        domain, cap) key, so the next :meth:`monitor` call of the same
        shape skips the lowering.  Returns whether the state was pooled;
        monitors from other sessions, uncacheable domains or a
        ``share_plan_states=False`` session are simply ignored.  The
        monitor must not be used after release.
        """
        if not self._share_plan_states:
            return False
        state = getattr(monitor, "plan_state", None)
        if state is None:
            return False
        key = getattr(state, "_pool_key", None)
        if key is None:
            return False
        # Detach before parking so a double release cannot pool one state
        # twice (the second call finds no key and walks away).
        state._pool_key = None
        stored = self.plan_state_pool.release(key, state)
        self._m_plan_state_pool.child(
            "released" if stored else "discarded"
        ).inc()
        return stored

    #: Identity-cache capacity: far above any hand-written campaign's spec
    #: count, small enough that spec-streaming sessions stay bounded.
    _SPEC_PLAN_IDENTITY_CAPACITY = 64

    def _drop_plan_states_for(self, digest: str) -> None:
        """Drop plan states bound to an evicted plan (LRU eviction hook).

        The spec identity cache drops its entries for the evicted plan
        too, so an eviction from the bounded plan cache cannot be served
        (and kept alive) through the identity shortcut.
        """
        for key in [k for k in self._plan_states if k[0] == digest]:
            del self._plan_states[key]
        for key in [
            k for k, (plan, _) in self._spec_plans.items() if plan.digest == digest
        ]:
            del self._spec_plans[key]
        for key in [
            k
            for k, (plan, _, _) in self._monitor_plans.items()
            if plan.digest == digest
        ]:
            del self._monitor_plans[key]
        if self._plan_state_pool is not None:
            self._plan_state_pool.drop_plan(digest)

    def plan_state(
        self,
        trace: Trace,
        formula: Any,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        vectorize: bool = True,
    ):
        """The shared compiled plan state for ``(formula, trace, domain)``.

        The plan itself is cached by formula digest + domain shape — one
        compilation serves every trace and every ``check_many`` batch — and
        each ``(plan, trace, domain)`` binding keeps one
        :class:`~repro.compile.runtime.PlanState` whose memo tables and
        endpoint indexes are shared across requests, exactly like
        :meth:`evaluator` shares interpreter memo tables.

        Returns ``(plan_state, plan_from_cache)``.
        """
        if domain is None:
            domain = self._default_domain
        plan, from_cache = self.plan_cache.get(formula, domain)
        if from_cache and plan.source != formula:
            self._m_plan_interned.child().inc()
        domain_key = _domain_key(domain)
        cap = self._forall_unroll_cap
        if domain_key is _UNCACHEABLE:
            return (
                plan.evaluator(
                    trace, domain, vectorize=vectorize, forall_unroll_cap=cap
                ),
                from_cache,
            )
        key = (plan.digest, id(trace), domain_key, bool(vectorize), cap)
        state = self._plan_states.get(key)
        if state is None:
            state = plan.evaluator(
                trace, domain, vectorize=vectorize, forall_unroll_cap=cap
            )
            self._plan_states[key] = state
            # Keep the trace alive so the id() key cannot be recycled.
            self._trace_refs[id(trace)] = trace
        return state, from_cache

    def spec_plan_state(
        self,
        trace: Trace,
        specification,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        vectorize: bool = True,
    ):
        """The shared multi-root plan state for ``(specification, trace, domain)``.

        The whole specification compiles into one
        :class:`~repro.compile.specplan.SpecPlan` (cached by spec digest +
        domain shape in the same LRU as single-formula plans); each
        ``(plan, trace, domain)`` binding keeps one
        :class:`~repro.compile.specplan.SpecPlanState` whose memo tables
        and endpoint indexes are shared across every clause *and* every
        request.

        Returns ``(spec_plan_state, plan_from_cache)``.
        """
        if domain is None:
            domain = self._default_domain
        domain_key = _domain_key(domain)
        plan = None
        from_cache = True
        if domain_key is not _UNCACHEABLE:
            # Clause lists only grow (and clauses are immutable), so
            # (identity, clause count) safely re-resolves the plan without
            # re-interpreting and re-digesting every clause per trace.
            plan_key = (id(specification), len(specification.clauses), domain_key)
            entry = self._spec_plans.get(plan_key)
            if entry is not None:
                self._spec_plans.move_to_end(plan_key)
                plan = entry[0]
        if plan is None:
            items = [
                (clause.name, clause.interpreted_formula())
                for clause in specification.clauses
            ]
            plan, from_cache = self.plan_cache.get_spec(items, domain)
            if domain_key is not _UNCACHEABLE:
                self._spec_plans[plan_key] = (plan, specification)
                while len(self._spec_plans) > self._SPEC_PLAN_IDENTITY_CAPACITY:
                    self._spec_plans.popitem(last=False)
        cap = self._forall_unroll_cap
        if domain_key is _UNCACHEABLE:
            return (
                plan.evaluator(
                    trace, domain, vectorize=vectorize, forall_unroll_cap=cap
                ),
                from_cache,
            )
        key = (plan.digest, id(trace), domain_key, bool(vectorize), cap)
        state = self._plan_states.get(key)
        if state is None:
            state = plan.evaluator(
                trace, domain, vectorize=vectorize, forall_unroll_cap=cap
            )
            self._plan_states[key] = state
            # Keep the trace alive so the id() key cannot be recycled.
            self._trace_refs[id(trace)] = trace
        return state, from_cache

    # -- engines ----------------------------------------------------------------------

    @property
    def engines(self) -> Tuple[str, ...]:
        return self._registry.names()

    @property
    def registry(self) -> EngineRegistry:
        """The engine registry (engine objects carry their capabilities)."""
        return self._registry

    def capabilities(self) -> Dict[str, Any]:
        """Engine name → :class:`~repro.api.engines.EngineCapabilities`."""
        return {engine.name: engine.capabilities for engine in self._registry.engines()}

    def register_engine(self, engine: Engine, replace: bool = False) -> "Session":
        self._registry.register(engine, replace=replace)
        return self

    def _select_engine(self, request: CheckRequest) -> Tuple[Engine, str]:
        """The engine answering ``request`` plus the audit reason."""
        if request.mode is not None:
            return (
                self._registry.get(request.mode),
                f"explicit mode={request.mode!r}",
            )
        formula = request.resolved_formula()
        if isinstance(formula, LLLExpression):
            return self._registry.get("lll"), "LLL expression → lll"
        if request.trace is not None:
            if request.compile is True:
                if "compiled" in self._registry:
                    return (
                        self._registry.get("compiled"),
                        "trace-backed; request compile=True → compiled",
                    )
            elif request.compile is False:
                return (
                    self._registry.get("trace"),
                    "trace-backed; request compile=False → trace",
                )
            elif self._prefer_compiled and "compiled" in self._registry:
                return (
                    self._registry.get("compiled"),
                    "trace-backed; session prefer_compiled → compiled",
                )
            return (
                self._registry.get("trace"),
                "trace-backed → trace"
                if "compiled" in self._registry
                else "trace-backed; no 'compiled' engine registered → trace",
            )
        if isinstance(formula, LTLFormula):
            return self._registry.get("tableau"), "no trace; LTL formula → tableau"
        if isinstance(formula, Formula) and is_in_ltl_fragment(formula):
            return (
                self._registry.get("tableau"),
                "no trace; LTL-fragment interval formula → tableau",
            )
        return (
            self._registry.get("bounded"),
            "no trace; beyond the LTL fragment → bounded",
        )

    # -- checking ---------------------------------------------------------------------

    def check(self, formula: RequestLike, **options: Any) -> CheckResult:
        """Answer one request; ``options`` are :class:`CheckRequest` fields."""
        request = self._as_request(formula, options)
        return self._run(request)

    def check_many(
        self,
        requests: Sequence[RequestLike],
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> List[CheckResult]:
        """Answer a batch of requests, in order.

        In-process execution shares this session's evaluator memo tables
        across the whole batch.  With ``processes`` > 1 the batch is split
        into chunks and fanned out over worker processes (each worker runs
        its own session); requests that cannot be shipped to workers fall
        back to in-process execution.
        """
        if chunk_size is not None and chunk_size < 1:
            raise CheckRequestError(f"chunk_size must be at least 1, got {chunk_size}")
        prepared = [self._as_request(r, {}) for r in requests]
        if processes is None:
            processes = self._processes
        if (
            processes
            and processes > 1
            and len(prepared) > 1
            and self._registry_is_default
        ):
            from .parallel import run_chunked

            shipped = [self._prepare_for_worker(r) for r in prepared]
            self._warm_plan_store(shipped)
            stats_sink: List[Dict[str, Any]] = []
            metrics_sink: List[Dict[str, Any]] = []
            try:
                with self.tracer.span(
                    "check_many", requests=len(shipped), processes=processes
                ) as span:
                    results = run_chunked(
                        shipped,
                        processes,
                        chunk_size,
                        plan_cache_dir=self._plan_cache_dir,
                        stats_sink=stats_sink,
                        metrics_sink=metrics_sink,
                    )
                    span.set(chunks=len(metrics_sink))
                self.last_parallel_cache_stats = stats_sink
                # Worker registries merge deterministically: counter/
                # histogram addition is order-independent, so the parent's
                # totals cannot depend on chunk completion order.
                for snapshot in metrics_sink:
                    self.metrics.merge_snapshot(snapshot)
                self._m_parallel_chunks.child().inc(len(metrics_sink))
                return results
            except Exception as exc:
                # Workers could not be used (unpicklable payloads, missing
                # fork support, or an engine error that must surface with a
                # real traceback): re-run everything in-process — loudly,
                # because a big campaign silently losing its parallelism
                # (and doing the work twice) is worth knowing about.
                warnings.warn(
                    f"check_many fell back from {processes} worker processes "
                    f"to in-process execution: {type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return [self._run(request) for request in prepared]

    def _prepare_for_worker(self, request: CheckRequest) -> CheckRequest:
        """Make a request self-contained so a fresh worker session can run it.

        Worker sessions have none of this session's state: trace names are
        resolved to the traces themselves and the session's default domain
        is written onto requests that carry none.
        """
        changes: Dict[str, Any] = {}
        if isinstance(request.trace, (str, list, tuple)):
            changes["trace"] = self.resolve_trace(request.trace)
        if request.domain is None and self._default_domain is not None:
            changes["domain"] = self._default_domain
        if request.compile is None and self._prefer_compiled:
            # Worker sessions are plain Session(); write the preference onto
            # the request so fan-out dispatches like the in-process path.
            changes["compile"] = True
        if changes:
            return request.with_options(**changes)
        return request

    def _warm_plan_store(self, requests: Sequence[CheckRequest]) -> None:
        """Precompile every compiled-path plan into the persistent store.

        Runs before a worker fan-out when this session carries an explicit
        ``plan_cache_dir``: each distinct (formula, domain-shape) that will
        dispatch to the compiled engine is compiled once here — an atomic
        digest-addressed write — so every worker's first lookup is a
        ``plan_disk_hits`` load, never a recompilation.  Best-effort: a
        formula the pipeline cannot lower is skipped (the worker falls
        back to the interpreting engine exactly as it would have anyway).
        """
        if self._plan_cache_dir is None:
            return
        seen = set()
        for request in requests:
            if request.trace is None:
                continue
            if not (request.compile is True or request.mode == "compiled"):
                continue
            try:
                formula = request.resolved_formula()
            except Exception:
                continue
            if not isinstance(formula, Formula):
                continue
            key = (repr(formula), _domain_key(request.domain))
            if key in seen:
                continue
            seen.add(key)
            try:
                self.plan_cache.get(formula, request.domain)
            except Exception:
                continue

    def check_spec(
        self,
        specification,
        trace: Any,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        env: Optional[Mapping[str, Any]] = None,
        compiled: Optional[bool] = None,
        processes: Optional[int] = None,
    ):
        """Check every clause of a specification on ``trace`` — as one unit.

        The default path compiles the whole specification into a multi-root
        :class:`~repro.compile.specplan.SpecPlan` and answers every clause
        through one shared :class:`~repro.compile.specplan.SpecPlanState`:
        subformulas shared across clauses (the same ``[]``/``<>``
        skeletons, event atoms, operation predicates) are decided once per
        position instead of once per clause.  Errors are captured per
        clause, matching ``Specification.check``.

        ``compiled=False`` opts out to the per-clause engine path (one
        :class:`CheckRequest` per clause through :meth:`check_many`), which
        is also used automatically with worker ``processes`` and as the
        fallback when a clause fails to lower.

        Returns the familiar
        :class:`~repro.core.specification.SpecificationResult`.
        """
        from ..core.specification import ClauseVerdict, SpecificationResult

        resolved = self.resolve_trace(trace)
        use_spec_plan = self._prefer_compiled if compiled is None else compiled
        # The spec object itself (identity-hashed) keys the negative cache,
        # pinning it so a recycled id() can never alias a fresh spec.
        failure_key = (
            specification,
            len(specification.clauses),
            _domain_key(domain if domain is not None else self._default_domain),
        )
        if (
            use_spec_plan
            and not (processes and processes > 1)
            and failure_key not in self._spec_plan_failures
        ):
            try:
                state, from_cache = self.spec_plan_state(
                    resolved, specification, domain
                )
            except CompileError:
                # Negative-cache the identity: a spec that cannot lower
                # would otherwise pay a full failed compilation per trace.
                self._spec_plan_failures.add(failure_key)
            else:
                with self.tracer.span(
                    "check_spec",
                    spec=getattr(specification, "name", None),
                    clauses=len(specification.clauses),
                    path="specplan",
                ):
                    outcomes = state.check_all(env)
                self._m_spec_checks.child("specplan").inc()
                self._m_plan_requests.child("hit" if from_cache else "miss").inc()
                verdicts = [
                    ClauseVerdict(clause, outcome.verdict is True, outcome.error)
                    for clause, outcome in zip(specification.clauses, outcomes)
                ]
                return SpecificationResult(specification, verdicts)
        requests = [
            # mode=None: auto-dispatch applies the session's compile
            # preference per clause (and its CompileError fallback).
            CheckRequest(
                formula=clause.interpreted_formula(),
                trace=resolved,
                env=env,
                domain=domain,
                compile=compiled,
                capture_errors=True,
                label=clause.name,
            )
            for clause in specification.clauses
        ]
        self._m_spec_checks.child("per-clause").inc()
        results = self.check_many(requests, processes=processes)
        verdicts = [
            ClauseVerdict(clause, result.verdict is True, result.error)
            for clause, result in zip(specification.clauses, results)
        ]
        return SpecificationResult(specification, verdicts)

    def check_specification(
        self,
        specification,
        trace: Any,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        processes: Optional[int] = None,
    ):
        """Alias of :meth:`check_spec` (the original façade entry point)."""
        return self.check_spec(
            specification, trace, domain=domain, processes=processes
        )

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def _as_request(value: RequestLike, options: Mapping[str, Any]) -> CheckRequest:
        if isinstance(value, CheckRequest):
            if options:
                return value.with_options(**options)
            return value
        return CheckRequest(formula=value, **options)

    def _run(self, request: CheckRequest) -> CheckResult:
        started = time.perf_counter()
        engine_name = request.mode or "?"
        reason: Optional[str] = None
        with self.tracer.span("check") as span:
            try:
                engine, reason = self._select_engine(request)
                engine_name = engine.name
                try:
                    result = engine.run(request, self)
                except CompileError as exc:
                    if engine.name != "compiled" or request.mode == "compiled" \
                            or "trace" not in self._registry:
                        raise
                    # Automatic fallback: a formula the compile pipeline cannot
                    # lower is still checkable by the interpreting evaluator.
                    fallback = self._registry.get("trace")
                    engine_name = fallback.name
                    reason = f"{reason}; fell back to trace on CompileError: {exc}"
                    self._m_fallbacks.child().inc()
                    result = fallback.run(request, self)
            except Exception as exc:
                if not request.capture_errors:
                    self._m_check_errors.child(engine_name).inc()
                    raise
                result = CheckResult(
                    verdict=None,
                    engine=engine_name,
                    request=request,
                    error=f"{type(exc).__name__}: {exc}",
                )
            result.engine_reason = reason
            result.wall_time_s = time.perf_counter() - started
            self._m_checks.child(engine_name).inc()
            self._m_check_seconds.child(engine_name).observe(result.wall_time_s)
            if result.error is not None:
                self._m_check_errors.child(engine_name).inc()
            from_cache = result.statistics.get("plan_from_cache")
            if from_cache is not None:
                self._m_plan_requests.child("hit" if from_cache else "miss").inc()
            span.set(
                engine=engine_name,
                reason=reason,
                verdict=result.verdict,
                label=request.label,
            )
        return result


def check(formula: RequestLike, **options: Any) -> CheckResult:
    """One-shot convenience: run a single request on a throwaway session."""
    return Session().check(formula, **options)


def check_many(
    requests: Sequence[RequestLike],
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[CheckResult]:
    """One-shot convenience: run a batch on a throwaway session."""
    return Session().check_many(requests, processes=processes, chunk_size=chunk_size)
