"""Discrete-event simulators for the paper's case studies (Chapters 5-8)."""

from .simulator import OperationDriver, TraceBuilder
from .queues import (
    inventing_queue_trace,
    reliable_queue_trace,
    reordering_queue_trace,
    stack_trace,
    unreliable_misordering_trace,
    unreliable_queue_trace,
)
from .selftimed import (
    arbiter_faulty_trace,
    arbiter_trace,
    request_ack_faulty_trace,
    request_ack_trace,
)
from .ab_protocol import ABProtocolConfig, ab_protocol_faulty_trace, ab_protocol_trace
from .mutex import cs_name, flag_name, mutex_faulty_trace, mutex_trace

__all__ = [
    "OperationDriver",
    "TraceBuilder",
    "inventing_queue_trace",
    "reliable_queue_trace",
    "reordering_queue_trace",
    "stack_trace",
    "unreliable_misordering_trace",
    "unreliable_queue_trace",
    "arbiter_faulty_trace",
    "arbiter_trace",
    "request_ack_faulty_trace",
    "request_ack_trace",
    "ABProtocolConfig",
    "ab_protocol_faulty_trace",
    "ab_protocol_trace",
    "cs_name",
    "flag_name",
    "mutex_faulty_trace",
    "mutex_trace",
]
