"""Self-timed circuits: request/acknowledge protocol and arbiter (Chapter 6).

Two trace generators:

* :func:`request_ack_trace` — a requester/responder pair exchanging the
  four-phase handshake ``R↑ A↑ R↓ A↓`` (Figure 6-1/6-2), repeated for a
  configurable number of cycles with random idle padding;
* :func:`arbiter_trace` — the arbiter of Figure 6-3/6-4 serving two user
  modules: on a user request ``URi`` the arbiter raises the transfer request
  ``TRi``, then the resource request ``RMR``, waits for both acknowledgments
  ``TAi`` and ``RMA``, and only then acknowledges the user with ``UAi``;
  mutual exclusion of the two transfers is maintained throughout.

Faulty variants (early acknowledgment, dropped request, simultaneous grants)
exercise the falsification side of experiment E3.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..semantics.trace import Trace
from .simulator import TraceBuilder

__all__ = [
    "request_ack_trace",
    "request_ack_faulty_trace",
    "arbiter_trace",
    "arbiter_faulty_trace",
]


def _idle(builder: TraceBuilder, rng: random.Random, max_steps: int = 2) -> None:
    for _ in range(rng.randint(0, max_steps)):
        builder.commit()


def request_ack_trace(cycles: int = 3, seed: int = 0) -> Trace:
    """Correct four-phase request/acknowledge handshakes."""
    rng = random.Random(seed)
    builder = TraceBuilder({"R": False, "A": False})
    builder.commit()
    for _ in range(cycles):
        _idle(builder, rng)
        builder.set(R=True).commit()        # request raised (A is down)
        _idle(builder, rng)
        builder.set(A=True).commit()        # acknowledgment raised (R still up)
        _idle(builder, rng)
        builder.set(R=False).commit()       # request lowered (A still up)
        _idle(builder, rng)
        builder.set(A=False).commit()       # acknowledgment lowered
    builder.commit()
    return builder.build()


def request_ack_faulty_trace(cycles: int = 3, seed: int = 0, fault: str = "early_ack_drop") -> Trace:
    """Handshakes violating the Figure 6-2 axioms.

    ``fault`` selects the violation:

    * ``"early_ack_drop"`` — the responder lowers ``A`` while ``R`` is still
      up (violates A2);
    * ``"request_drop"`` — the requester lowers ``R`` before ``A`` rises
      (violates A1);
    * ``"no_ack_lower"`` — ``A`` is never lowered after the request ends
      (violates A3).
    """
    rng = random.Random(seed)
    builder = TraceBuilder({"R": False, "A": False})
    builder.commit()
    for index in range(cycles):
        # The Figure 6-2 axioms, stated verbatim, constrain the first
        # handshake (interval formulas speak about the next time the interval
        # is constructed), so the violation is injected into the first cycle.
        faulty_cycle = index == 0
        builder.set(R=True).commit()
        if fault == "request_drop" and faulty_cycle:
            builder.set(R=False).commit()
            builder.set(A=True).commit()
            builder.set(A=False).commit()
            continue
        builder.set(A=True).commit()
        if fault == "early_ack_drop" and faulty_cycle:
            builder.set(A=False).commit()   # A drops while R is still up
            builder.set(R=False).commit()
            continue
        builder.set(R=False).commit()
        if fault == "no_ack_lower" and faulty_cycle:
            builder.commit()
            builder.commit()
            break
        builder.set(A=False).commit()
        _idle(builder, rng)
    builder.commit()
    return builder.build()


_ARBITER_SIGNALS = [
    "UR1", "UR2", "UA1", "UA2",
    "TR1", "TR2", "TA1", "TA2",
    "RMR", "RMA",
]


def _arbiter_builder() -> TraceBuilder:
    return TraceBuilder({name: False for name in _ARBITER_SIGNALS})


def _serve_user(builder: TraceBuilder, rng: random.Random, user: int,
                early_user_ack: bool = False) -> None:
    """One complete arbitration cycle for user ``user`` (1 or 2)."""
    ur, ua, tr, ta = f"UR{user}", f"UA{user}", f"TR{user}", f"TA{user}"
    builder.set(**{ur: True}).commit()          # user raises its request
    _idle(builder, rng, 1)
    builder.set(**{tr: True}).commit()          # arbiter requests the transfer module
    _idle(builder, rng, 1)
    if early_user_ack:
        builder.set(**{ua: True}).commit()      # FAULT: ack before TA/RMA
    builder.set(RMR=True).commit()              # then requests the resource
    _idle(builder, rng, 1)
    builder.set(**{ta: True}).commit()          # transfer module acknowledges
    _idle(builder, rng, 1)
    builder.set(RMA=True).commit()              # resource acknowledges
    if not early_user_ack:
        builder.set(**{ua: True}).commit()      # arbiter acknowledges the user
    _idle(builder, rng, 1)
    # Release in the reverse order.
    builder.set(**{ur: False}).commit()
    builder.set(**{ua: False, tr: False, "RMR": False}).commit()
    builder.set(**{ta: False, "RMA": False}).commit()
    _idle(builder, rng, 1)


def arbiter_trace(requests: Optional[List[int]] = None, seed: int = 0) -> Trace:
    """A correct arbiter serving a sequence of user requests (default 1,2,1)."""
    rng = random.Random(seed)
    builder = _arbiter_builder()
    builder.commit()
    for user in requests or [1, 2, 1]:
        _serve_user(builder, rng, user)
    builder.commit()
    return builder.build()


def arbiter_faulty_trace(
    requests: Optional[List[int]] = None, seed: int = 0, fault: str = "early_user_ack"
) -> Trace:
    """An arbiter violating Figure 6-4.

    * ``"early_user_ack"`` — ``UAi`` is raised before both ``TAi`` and
      ``RMA`` (violates A1's ``[]~UAi``);
    * ``"simultaneous_grants"`` — both transfer requests are up at once
      (violates A2).
    """
    rng = random.Random(seed)
    builder = _arbiter_builder()
    builder.commit()
    users = requests or [1, 2]
    if fault == "early_user_ack":
        for index, user in enumerate(users):
            _serve_user(builder, rng, user, early_user_ack=(index == 0))
    elif fault == "simultaneous_grants":
        builder.set(UR1=True, UR2=True).commit()
        builder.set(TR1=True, TR2=True).commit()      # both transfers at once
        builder.set(RMR=True).commit()
        builder.set(TA1=True, TA2=True, RMA=True).commit()
        builder.set(UA1=True, UA2=True).commit()
        builder.set(UR1=False, UR2=False).commit()
        builder.set(UA1=False, UA2=False, TR1=False, TR2=False, RMR=False).commit()
        builder.set(TA1=False, TA2=False, RMA=False).commit()
    else:
        for user in users:
            _serve_user(builder, rng, user)
    builder.commit()
    return builder.build()
