"""A small discrete-event simulation kernel producing interval-logic traces.

The paper's case studies (queues, self-timed arbiter, Alternating Bit
protocol, distributed mutual exclusion) are specified purely by their
externally visible behaviour.  To *exercise* those specifications the
reproduction simulates each system and checks the produced traces against the
specification with the Chapter 3 evaluator.

The kernel is deliberately simple: a :class:`TraceBuilder` accumulates
snapshots of state variables and operation lifecycle records; system modules
drive it step by step.  Helpers cover the common operation-lifecycle pattern
(``at`` → ``in`` → ``after`` → idle) so that the Chapter 2.2 axioms hold by
construction for correctly-built systems.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..semantics.state import OperationRecord, State
from ..semantics.trace import Trace
from ..syntax.terms import OpPhase

__all__ = ["TraceBuilder", "OperationDriver"]


class TraceBuilder:
    """Accumulates states for a trace.

    Variables persist between snapshots until changed; operation records are
    also persistent (an operation stays in its phase until the driver moves
    it).  ``commit`` captures the current configuration as the next state.
    """

    def __init__(self, variables: Optional[Dict[str, Any]] = None) -> None:
        self._variables: Dict[str, Any] = dict(variables or {})
        self._operations: Dict[str, OperationRecord] = {}
        self._states: List[State] = []

    # -- configuration updates -----------------------------------------------------

    def set(self, **values: Any) -> "TraceBuilder":
        """Update state variables (visible from the next commit onward)."""
        self._variables.update(values)
        return self

    def get(self, name: str, default: Any = None) -> Any:
        return self._variables.get(name, default)

    def set_operation(
        self,
        name: str,
        phase: str,
        args: Sequence[Any] = (),
        results: Sequence[Any] = (),
    ) -> "TraceBuilder":
        """Move an operation to a lifecycle phase."""
        if phase not in OpPhase.ALL:
            raise SimulationError(f"unknown phase {phase!r}")
        if phase == OpPhase.IDLE:
            self._operations.pop(name, None)
        else:
            self._operations[name] = OperationRecord(phase, tuple(args), tuple(results))
        return self

    def operation_phase(self, name: str) -> str:
        record = self._operations.get(name)
        return record.phase if record is not None else OpPhase.IDLE

    # -- snapshots --------------------------------------------------------------------

    def commit(self) -> "TraceBuilder":
        """Capture the current configuration as the next state of the trace."""
        self._states.append(State(dict(self._variables), dict(self._operations)))
        return self

    def steps(self) -> int:
        return len(self._states)

    def build(self, loop_start: Optional[int] = None) -> Trace:
        if not self._states:
            raise SimulationError("no states committed; call commit() at least once")
        return Trace(list(self._states), loop_start=loop_start)


class OperationDriver:
    """Drives one abstract operation through its lifecycle on a builder.

    ``call`` runs the whole ``at → in → after → idle`` cycle, committing one
    state per phase (plus optional extra ``in`` states), which guarantees the
    lifecycle axioms of Chapter 2.2 on the produced trace.
    """

    def __init__(self, builder: TraceBuilder, name: str) -> None:
        self._builder = builder
        self.name = name

    def begin(self, *args: Any) -> None:
        """Enter the operation (``at`` phase) and commit."""
        if self._builder.operation_phase(self.name) != OpPhase.IDLE:
            raise SimulationError(f"operation {self.name} is already active")
        self._builder.set_operation(self.name, OpPhase.AT, args)
        self._builder.commit()

    def execute(self, *args: Any, steps: int = 1) -> None:
        """Spend ``steps`` states within the operation (``in`` phase)."""
        for _ in range(max(1, steps)):
            self._builder.set_operation(self.name, OpPhase.IN, args)
            self._builder.commit()

    def finish(self, args: Sequence[Any] = (), results: Sequence[Any] = ()) -> None:
        """Complete the operation (``after`` phase) and commit."""
        self._builder.set_operation(self.name, OpPhase.AFTER, args, results)
        self._builder.commit()

    def reset(self) -> None:
        """Return the operation to idle (no commit of its own)."""
        self._builder.set_operation(self.name, OpPhase.IDLE)

    def call(
        self,
        *args: Any,
        results: Sequence[Any] = (),
        busy_steps: int = 1,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Run a full operation instance."""
        if rng is not None:
            busy_steps = rng.randint(1, max(1, busy_steps))
        self.begin(*args)
        self.execute(*args, steps=busy_steps)
        self.finish(args, results)
        self.reset()
