"""Distributed mutual exclusion over a shared flag array (Chapter 8).

Each process ``i`` owns a shared boolean flag ``x(i)`` (its announced
intention) and a local indicator ``cs(i)`` (it is in the critical section).
The Figure 8-1 discipline: before entering, a process sets its flag, then
observes every other flag to be false at some moment during the interval from
its setting of ``x(i)`` to its entry, keeps ``x(i)`` true throughout the
critical section, and clears it on exit.

:func:`mutex_trace` simulates ``n`` processes performing that discipline
(one entry at a time is *attempted*, but flag-setting and waiting phases of
different processes interleave).  :func:`mutex_faulty_trace` simulates a
process that enters without checking the other flags, producing overlapping
critical sections — the violation the Chapter 8 theorem excludes.

State-variable naming: ``x1, x2, ...`` and ``cs1, cs2, ...``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..semantics.trace import Trace
from .simulator import TraceBuilder

__all__ = ["mutex_trace", "mutex_faulty_trace", "flag_name", "cs_name"]


def flag_name(process: int) -> str:
    """The shared flag ``x(i)``."""
    return f"x{process}"


def cs_name(process: int) -> str:
    """The critical-section indicator ``cs(i)``."""
    return f"cs{process}"


def _initial_builder(processes: int) -> TraceBuilder:
    values = {}
    for i in range(1, processes + 1):
        values[flag_name(i)] = False
        values[cs_name(i)] = False
    return TraceBuilder(values)


def mutex_trace(
    processes: int = 3,
    entries: int = 4,
    seed: int = 0,
    contention: bool = True,
) -> Trace:
    """Simulate correct mutual exclusion.

    ``entries`` critical-section entries are performed by randomly chosen
    processes.  With ``contention`` other processes may raise and lower their
    flags (abandoning their claim) while one process holds the section, which
    exercises the "some moment with ``x(j)`` false" part of axiom A1 rather
    than the trivial all-quiet case.
    """
    rng = random.Random(seed)
    builder = _initial_builder(processes)
    builder.commit()
    for _ in range(entries):
        winner = rng.randint(1, processes)
        # The winner announces its intention while every other flag is down.
        builder.set(**{flag_name(winner): True}).commit()
        # Possibly a competitor briefly raises its flag and abandons it
        # before the winner enters (the winner observes it false afterwards).
        if contention and processes > 1 and rng.random() < 0.5:
            competitor = winner
            while competitor == winner:
                competitor = rng.randint(1, processes)
            builder.set(**{flag_name(competitor): True}).commit()
            builder.set(**{flag_name(competitor): False}).commit()
        else:
            builder.commit()
        # Enter, dwell, and leave the critical section.
        builder.set(**{cs_name(winner): True}).commit()
        for _ in range(rng.randint(1, 2)):
            builder.commit()
        builder.set(**{cs_name(winner): False}).commit()
        builder.set(**{flag_name(winner): False}).commit()
    builder.commit()
    return builder.build()


def mutex_faulty_trace(processes: int = 2, seed: int = 0) -> Trace:
    """A run where a process barges in without observing the other flags.

    Process 2 enters its critical section while process 1 both holds its flag
    and is inside the section — exactly the overlap the Chapter 8 theorem
    forbids.
    """
    rng = random.Random(seed)
    builder = _initial_builder(processes)
    builder.commit()
    builder.set(x1=True).commit()
    builder.set(cs1=True).commit()
    # Process 2 violates the protocol: flag up and straight in.
    builder.set(x2=True).commit()
    builder.set(cs2=True).commit()
    builder.commit()
    builder.set(cs2=False, x2=False).commit()
    builder.set(cs1=False).commit()
    builder.set(x1=False).commit()
    builder.commit()
    return builder.build()
