"""Queue and stack systems (Chapter 5 workloads).

Three trace generators:

* :func:`reliable_queue_trace` — a FIFO queue with asynchronous, possibly
  overlapping ``Enq``/``Dq`` operations and distinct enqueued values;
* :func:`stack_trace` — the LIFO variant obtained by exchanging the order of
  enqueueings in the paper's queue axiom;
* :func:`unreliable_queue_trace` — the lossy queue of Figure 5-1: individual
  values may be lost, values may be re-enqueued (consecutively) until they
  are dequeued, and a value enqueued persistently is eventually dequeued.

Each generator also has a *faulty* variant used by the falsification
experiments (a reordering queue violating FIFO, a queue that invents values,
and a lossy queue that delivers values out of order).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import SimulationError
from ..semantics.trace import Trace
from .simulator import OperationDriver, TraceBuilder

__all__ = [
    "reliable_queue_trace",
    "stack_trace",
    "reordering_queue_trace",
    "inventing_queue_trace",
    "unreliable_queue_trace",
    "unreliable_misordering_trace",
]


def _drivers(builder: TraceBuilder) -> tuple:
    return OperationDriver(builder, "Enq"), OperationDriver(builder, "Dq")


def _run_discipline(
    values: Sequence[int],
    seed: int,
    discipline: str,
    busy_steps: int = 2,
) -> Trace:
    """Simulate enqueue/dequeue traffic with the given service discipline."""
    rng = random.Random(seed)
    builder = TraceBuilder({"queue_len": 0})
    enq, dq = _drivers(builder)
    builder.commit()  # initial quiescent state

    pending: List[int] = []
    to_enqueue = list(values)
    delivered: List[int] = []

    while to_enqueue or pending:
        can_dequeue = bool(pending)
        do_dequeue = can_dequeue and (not to_enqueue or rng.random() < 0.5)
        if do_dequeue:
            if discipline == "fifo":
                value = pending.pop(0)
            elif discipline == "lifo":
                value = pending.pop()
            elif discipline == "reorder":
                value = pending.pop(rng.randrange(len(pending)))
            elif discipline == "invent":
                value = pending.pop(0) if rng.random() < 0.7 else 10_000 + rng.randrange(100)
                if value >= 10_000 and pending:
                    pending.pop(0)
            else:
                raise SimulationError(f"unknown discipline {discipline!r}")
            delivered.append(value)
            # Dq takes no entry parameter; the dequeued value is recorded as
            # the operation argument so the paper's ``afterDq(a)`` predicate
            # can observe it.
            dq.call(value, results=(value,), busy_steps=busy_steps, rng=rng)
            builder.set(queue_len=len(pending))
        else:
            value = to_enqueue.pop(0)
            pending.append(value)
            enq.call(value, busy_steps=busy_steps, rng=rng)
            builder.set(queue_len=len(pending))
    builder.commit()  # final quiescent state
    return builder.build()


def _dq_call(builder: TraceBuilder, value: int, busy_steps: int, rng: random.Random) -> None:
    driver = OperationDriver(builder, "Dq")
    driver.begin(value)
    driver.execute(value, steps=rng.randint(1, busy_steps))
    driver.finish((value,), (value,))
    driver.reset()


def reliable_queue_trace(
    num_values: int = 5, seed: int = 0, busy_steps: int = 2
) -> Trace:
    """A FIFO queue trace with distinct values ``1 .. num_values``."""
    return _run_discipline(range(1, num_values + 1), seed, "fifo", busy_steps)


def stack_trace(num_values: int = 5, seed: int = 0, busy_steps: int = 2) -> Trace:
    """A LIFO (stack) trace with distinct values ``1 .. num_values``.

    The paper's ``Stack.`` axiom relates every dequeued value to the context
    of the *first* dequeue of its partner, so the generator performs one
    push burst followed by one pop burst (the canonical stack discipline);
    interleaving full push/pop cycles would not be distinguishable from a
    queue by that single axiom.
    """
    rng = random.Random(seed)
    builder = TraceBuilder({"queue_len": 0})
    enq, _ = _drivers(builder)
    builder.commit()
    values = list(range(1, num_values + 1))
    for value in values:
        enq.call(value, busy_steps=busy_steps, rng=rng)
        builder.set(queue_len=value)
    for depth, value in enumerate(reversed(values)):
        builder.set(queue_len=len(values) - depth - 1)
        _dq_call(builder, value, busy_steps, rng)
    builder.commit()
    return builder.build()


def reordering_queue_trace(
    num_values: int = 5, seed: int = 0, busy_steps: int = 2
) -> Trace:
    """A faulty queue that serves values in arbitrary order (violates FIFO)."""
    return _run_discipline(range(1, num_values + 1), seed, "reorder", busy_steps)


def inventing_queue_trace(
    num_values: int = 5, seed: int = 0, busy_steps: int = 2
) -> Trace:
    """A faulty queue that occasionally delivers values never enqueued."""
    return _run_discipline(range(1, num_values + 1), seed, "invent", busy_steps)


def unreliable_queue_trace(
    num_values: int = 4,
    seed: int = 0,
    loss_probability: float = 0.4,
    busy_steps: int = 2,
) -> Trace:
    """The lossy queue of Figure 5-1.

    Every value is (re-)enqueued until an enqueue "sticks"; losses are decided
    per enqueue attempt.  Repeated enqueues of a value are consecutive, losses
    never reorder the surviving values, and the trace ends with every retained
    value dequeued — matching clauses I1–I3 and the liveness axioms A1/A2.
    """
    rng = random.Random(seed)
    builder = TraceBuilder({"queue_len": 0})
    enq = OperationDriver(builder, "Enq")
    builder.commit()

    retained: List[int] = []
    for value in range(1, num_values + 1):
        # Re-enqueue until the medium keeps the value (bounded retries, then
        # one final successful attempt so liveness holds on the finite trace).
        attempts = 0
        while True:
            attempts += 1
            enq.call(value, busy_steps=busy_steps, rng=rng)
            kept = rng.random() >= loss_probability or attempts >= 4
            if kept:
                retained.append(value)
                builder.set(queue_len=len(retained))
                break
    # Drain: dequeue every retained value in order.
    for value in list(retained):
        retained.pop(0)
        builder.set(queue_len=len(retained))
        _dq_call(builder, value, busy_steps, rng)
    builder.commit()
    return builder.build()


def unreliable_misordering_trace(
    num_values: int = 4, seed: int = 0, busy_steps: int = 2
) -> Trace:
    """A faulty lossy queue that delivers surviving values out of order."""
    rng = random.Random(seed)
    builder = TraceBuilder({"queue_len": 0})
    enq = OperationDriver(builder, "Enq")
    builder.commit()
    retained: List[int] = []
    for value in range(1, num_values + 1):
        enq.call(value, busy_steps=busy_steps, rng=rng)
        retained.append(value)
    rng.shuffle(retained)
    for value in retained:
        _dq_call(builder, value, busy_steps, rng)
    builder.commit()
    return builder.build()
