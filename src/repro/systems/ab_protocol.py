"""The Alternating Bit protocol over an unreliable medium (Chapter 7).

The simulation mirrors Figure 7-2: a Sender entity (input queue + Sender
process) and a Receiver entity (Receiver process + output queue) communicate
through two lossy channels (packets one way, acknowledgments the other).
Operations recorded in the trace, with their parameters, follow §7.3:

* ``Send(m)`` / ``Rec(m)`` — the user-visible service;
* ``Dq(m)`` — the Sender obtaining the next message from its queue;
* ``Ts(m, v)`` / ``Rr(m, v)`` — packet transmission / reception;
* ``Tr(m, v)`` / ``Rs(m, v)`` — acknowledgment transmission / reception;
* ``Enq(m)`` — the Receiver delivering a message into its output queue.

The state variables ``exp_s`` and ``exp_r`` are the sender's and receiver's
expected sequence numbers (the paper's ``exp`` components, one per process).
Packet and acknowledgment losses are driven by a seeded RNG; retransmission
continues until the acknowledgment with the current sequence number arrives.

A faulty sender variant that does not alternate sequence numbers is provided
for the falsification half of experiment E4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..semantics.trace import Trace
from .simulator import OperationDriver, TraceBuilder

__all__ = ["ABProtocolConfig", "ab_protocol_trace", "ab_protocol_faulty_trace"]


@dataclass(frozen=True)
class ABProtocolConfig:
    """Parameters of the simulated run."""

    messages: Tuple[str, ...] = ("m1", "m2", "m3")
    packet_loss: float = 0.3
    ack_loss: float = 0.3
    seed: int = 0
    max_retransmissions: int = 6

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def _flip(bit: int) -> int:
    return 1 - bit


def ab_protocol_trace(config: Optional[ABProtocolConfig] = None) -> Trace:
    """Simulate a correct AB-protocol run and return its trace."""
    cfg = config or ABProtocolConfig()
    rng = cfg.rng()
    builder = TraceBuilder({"exp_s": 0, "exp_r": 0})
    send = OperationDriver(builder, "Send")
    dq = OperationDriver(builder, "Dq")
    ts = OperationDriver(builder, "Ts")
    rr = OperationDriver(builder, "Rr")
    tr = OperationDriver(builder, "Tr")
    rs = OperationDriver(builder, "Rs")
    enq = OperationDriver(builder, "Enq")
    rec = OperationDriver(builder, "Rec")

    builder.commit()  # initial state: nothing in flight, exp = 0 on both sides

    sender_queue: List[str] = []
    receiver_queue: List[str] = []

    # The sending user hands every message to the service up front.
    for message in cfg.messages:
        send.call(message, busy_steps=1, rng=rng)
        sender_queue.append(message)

    expected = 0          # receiver's next expected sequence number
    for index, message in enumerate(cfg.messages):
        # Sender dequeues the next message; successive messages use
        # alternating sequence numbers and exp is defined at Dq time.
        sequence = index % 2
        builder.set(exp_s=sequence)
        sender_queue.pop(0)
        dq.begin(message)
        dq.execute(message, steps=1)
        dq.finish((message,), (message,))
        dq.reset()

        acknowledged = False
        attempts = 0
        while not acknowledged:
            attempts += 1
            forced_delivery = attempts >= cfg.max_retransmissions
            # Transmit the packet <message, sequence>.
            ts.call(message, sequence, busy_steps=1, rng=rng)
            packet_arrives = forced_delivery or rng.random() >= cfg.packet_loss
            if packet_arrives:
                rr.call(message, sequence, busy_steps=1, rng=rng)
                if sequence == expected:
                    # New packet: deliver the message, then flip expectation.
                    builder.set(exp_r=sequence)
                    enq.call(message, busy_steps=1, rng=rng)
                    receiver_queue.append(message)
                    expected = _flip(expected)
                # Acknowledge the last received packet (its sequence number).
                tr.call(message, sequence, busy_steps=1, rng=rng)
                ack_arrives = forced_delivery or rng.random() >= cfg.ack_loss
                if ack_arrives:
                    rs.call(message, sequence, busy_steps=1, rng=rng)
                    acknowledged = True
            if attempts > 2 * cfg.max_retransmissions:
                raise SimulationError("AB protocol simulation failed to make progress")

    # The receiving user drains its queue.
    for message in list(receiver_queue):
        receiver_queue.pop(0)
        rec.call(message, results=(message,), busy_steps=1, rng=rng)

    builder.commit()
    return builder.build()


def ab_protocol_faulty_trace(config: Optional[ABProtocolConfig] = None,
                             fault: str = "no_alternation") -> Trace:
    """A protocol run violating the Chapter 7 sender requirements.

    * ``"no_alternation"`` — the sender transmits every packet with sequence
      number 0 (violates alternation; duplicate deliveries follow);
    * ``"transmit_during_dq"`` — a packet transmission overlaps a dequeue
      (violates sender axiom A3);
    * ``"skip_ack_wait"`` — the sender dequeues the next message without
      having received any acknowledgment (violates sender axiom A1).
    """
    cfg = config or ABProtocolConfig(packet_loss=0.0, ack_loss=0.0)
    rng = cfg.rng()
    builder = TraceBuilder({"exp_s": 0, "exp_r": 0})
    dq = OperationDriver(builder, "Dq")
    ts = OperationDriver(builder, "Ts")
    rr = OperationDriver(builder, "Rr")
    tr = OperationDriver(builder, "Tr")
    rs = OperationDriver(builder, "Rs")
    enq = OperationDriver(builder, "Enq")
    builder.commit()

    expected = 0
    for index, message in enumerate(cfg.messages):
        sequence = 0 if fault == "no_alternation" else (index % 2)
        builder.set(exp_s=sequence)
        if fault == "transmit_during_dq" and index == 1:
            # Start the dequeue, transmit while still inside it.
            dq.begin(message)
            builder.set_operation("Dq", "in", (message,))
            builder.set_operation("Ts", "in", (message, sequence))
            builder.commit()
            builder.set_operation("Ts", "idle")
            dq.finish((message,), (message,))
            dq.reset()
        else:
            dq.call(message, results=(message,), busy_steps=1, rng=rng)
        ts.call(message, sequence, busy_steps=1, rng=rng)
        rr.call(message, sequence, busy_steps=1, rng=rng)
        if sequence == expected:
            builder.set(exp_r=sequence)
            enq.call(message, busy_steps=1, rng=rng)
            expected = _flip(expected)
        tr.call(message, sequence, busy_steps=1, rng=rng)
        if fault != "skip_ack_wait":
            rs.call(message, sequence, busy_steps=1, rng=rng)
    builder.commit()
    return builder.build()
