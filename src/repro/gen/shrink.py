"""Greedy minimization of failing cases.

Given a case and a ``still_fails`` predicate, the shrinker repeatedly tries
one-step-smaller variants — structural simplifications of the formula,
shorter traces, simpler state values, smaller quantification domains — and
greedily keeps any variant that still fails, until no candidate helps (or a
predicate-call budget is exhausted).  The result is the smallest replayable
witness the greedy walk can find, which is what a fuzzing disagreement is
reported and archived as.

The formula simplifications never introduce syntax the generators avoid, so
a shrunk case still round-trips through the corpus file format.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterator

from ..syntax.formulas import (
    Always,
    And,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    Not,
    Occurs,
    Or,
    TrueFormula,
    formula_size,
)
from ..syntax.intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from ..syntax.parser import parse_formula
from ..syntax.pretty import to_ascii
from .cases import Case, TraceSpec

__all__ = ["formula_variants", "term_variants", "case_variants", "shrink_case"]


def _unique(variants: Iterator[Any]) -> Iterator[Any]:
    seen = set()
    for variant in variants:
        key = str(variant)
        if key not in seen:
            seen.add(key)
            yield variant


def formula_variants(formula: Formula) -> Iterator[Formula]:
    """One-step-simpler formulas (root replacements first, then recursion)."""
    yield from _unique(_formula_variants(formula))


def _formula_variants(formula: Formula) -> Iterator[Formula]:
    # Replace the whole formula by a constant or by one of its sub-formulas.
    if not isinstance(formula, (TrueFormula, FalseFormula)):
        yield TrueFormula()
        yield FalseFormula()
    for child in formula.children():
        yield child
    # Rebuild the node around a simplified child.
    if isinstance(formula, Not):
        for sub in _formula_variants(formula.operand):
            yield Not(sub)
    elif isinstance(formula, (And, Or, Implies, Iff)):
        cls = type(formula)
        for sub in _formula_variants(formula.left):
            yield cls(sub, formula.right)
        for sub in _formula_variants(formula.right):
            yield cls(formula.left, sub)
    elif isinstance(formula, Always):
        for sub in _formula_variants(formula.operand):
            yield Always(sub)
    elif isinstance(formula, Eventually):
        for sub in _formula_variants(formula.operand):
            yield Eventually(sub)
    elif isinstance(formula, IntervalFormula):
        for term in term_variants(formula.term):
            yield IntervalFormula(term, formula.body)
        for sub in _formula_variants(formula.body):
            yield IntervalFormula(formula.term, sub)
    elif isinstance(formula, Occurs):
        for term in term_variants(formula.term):
            yield Occurs(term)
    elif isinstance(formula, Forall):
        for sub in _formula_variants(formula.body):
            yield Forall(formula.variables, sub)


def term_variants(term: IntervalTerm) -> Iterator[IntervalTerm]:
    """One-step-simpler interval terms."""
    if isinstance(term, EventTerm):
        for sub in _formula_variants(term.formula):
            if not isinstance(sub, Occurs):  # *(I) would re-parse as Star
                yield EventTerm(sub)
        return
    if isinstance(term, (Begin, End, Star)):
        yield term.term
        cls = type(term)
        for sub in term_variants(term.term):
            yield cls(sub)
        return
    if isinstance(term, (Forward, Backward)):
        cls = type(term)
        if term.left is not None:
            yield term.left
            yield cls(None, term.right)
            for sub in term_variants(term.left):
                yield cls(sub, term.right)
        if term.right is not None:
            yield term.right
            yield cls(term.left, None)
            for sub in term_variants(term.right):
                yield cls(term.left, sub)


def _trace_variants(spec: TraceSpec) -> Iterator[TraceSpec]:
    if spec.rows is None:
        return  # simulator references shrink through the formula only
    rows = spec.rows
    operations = spec.operations
    # Drop one state at a time (keeping at least one).
    if len(rows) > 1:
        for index in range(len(rows)):
            new_rows = rows[:index] + rows[index + 1 :]
            new_operations = (
                operations[:index] + operations[index + 1 :]
                if operations is not None
                else None
            )
            loop_start = spec.loop_start
            if loop_start is not None and loop_start > len(new_rows):
                loop_start = None
            yield replace(spec, rows=new_rows, operations=new_operations, loop_start=loop_start)
    # Forget the lasso shape.
    if spec.loop_start is not None:
        yield replace(spec, loop_start=None)
    # Drop operation records wholesale.
    if operations is not None and any(operations):
        yield replace(spec, operations=None)
    # Drop a whole variable column (vetoed by the predicate when the
    # formula still reads it — the evaluation error changes the failure).
    if rows:
        for name in sorted(rows[0]):
            yield replace(spec, rows=[{k: v for k, v in row.items() if k != name} for row in rows])
    # Simplify one value at a time.
    for index, row in enumerate(rows):
        for name, value in row.items():
            simple: Any = False if isinstance(value, bool) else 0
            if value != simple:
                new_row = dict(row)
                new_row[name] = simple
                yield replace(spec, rows=rows[:index] + [new_row] + rows[index + 1 :])


def case_variants(case: Case) -> Iterator[Case]:
    """One-step-smaller cases: simpler formula, trace, domain or bound."""
    formula = case.parsed_formula()
    for variant in formula_variants(formula):
        yield case.replacing(formula=to_ascii(variant))
    if case.trace is not None:
        for spec in _trace_variants(case.trace):
            yield case.replacing(trace=spec)
    if case.domain:
        yield case.replacing(domain=None)
        for name, values in case.domain.items():
            if len(values) > 1:
                smaller = dict(case.domain)
                smaller[name] = values[:-1]
                yield case.replacing(domain=smaller)
    if case.kind != "trace" and case.max_length > 1:
        yield case.replacing(max_length=case.max_length - 1)


def _value_weight(value: Any) -> int:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return abs(value)
    return 1


def _case_weight(case: Case, formula: Formula) -> int:
    weight = formula_size(formula)
    if case.trace is not None and case.trace.rows is not None:
        weight += 2 * len(case.trace.rows)
        for row in case.trace.rows:
            weight += sum(2 + _value_weight(value) for value in row.values())
        if case.trace.operations is not None:
            weight += sum(2 * len(per_state) for per_state in case.trace.operations)
    if case.domain:
        weight += sum(len(values) for values in case.domain.values())
    return weight


def shrink_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    max_checks: int = 400,
) -> Case:
    """Greedily minimize ``case`` while ``still_fails`` holds.

    The returned case always satisfies ``still_fails`` (it is the input case
    when no smaller variant does); recorded expectations are dropped, since
    a shrunk scenario is a different question than the one the expectations
    were recorded for.
    """
    current = case.replacing(expect=None)
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        current_weight = _case_weight(current, current.parsed_formula())
        for candidate in case_variants(current):
            if checks >= max_checks:
                break
            try:
                # The candidate must still round-trip (replayability is the
                # whole point of a shrunk case).
                candidate_formula = parse_formula(candidate.formula)
            except Exception:
                continue
            if _case_weight(candidate, candidate_formula) >= current_weight:
                continue
            checks += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
