"""Built-in corpora and corpus replay.

Three corpora are seeded from the reproduction's own material and live
under ``tests/corpus/``:

* ``catalogue.jsonl`` — the Chapter 4 valid-formula catalogue (V1–V16) as
  small-scope validity cases (bounds capped by variable count so a full
  replay stays test-suite fast);
* ``specs.jsonl`` — every clause of every specification module, evaluated
  on the matching simulated system, as trace cases referencing the
  simulator registry;
* ``faulty_traces.jsonl`` — the same specifications on fault-injected runs
  of the four case-study simulators (queues, arbiter / request-ack
  handshake, AB protocol, mutex), pinning the ``False`` verdicts so every
  engine keeps *detecting* the violations;
* ``spec_plans.jsonl`` — whole specifications as multi-clause ``"spec"``
  cases: every replay re-checks that the multi-root
  :class:`~repro.compile.specplan.SpecPlan` path agrees clause-for-clause
  with the per-clause trace and compiled engines.  Nightly ``fuzz --specs``
  sweeps append any new disagreement here.

Seeding records each engine's verdict in the case's ``expect`` mapping via
:meth:`~repro.gen.oracle.DifferentialOracle.record_expectations`, so a
replay (``python -m repro.gen replay tests/corpus``) both re-runs the
cross-engine comparison and pins every verdict as a regression.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.valid_formulas import catalogue
from ..syntax.parser import parse_formula
from ..syntax.pretty import to_ascii
from .cases import Case, TraceSpec, load_corpus, save_corpus
from .oracle import DifferentialOracle, OracleReport

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "build_catalogue_corpus",
    "build_spec_corpus",
    "build_faulty_corpus",
    "build_spec_plan_corpus",
    "seed_builtin_corpora",
    "corpus_files",
    "load_corpus_dir",
    "replay_corpus",
]


DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


def _capped_bound(entry_bound: int, variable_count: int) -> int:
    """Cap a catalogue entry's bound so the boolean enumeration stays small.

    The enumeration visits ``Σ (2^v)^L · L`` traces; capping by variable
    count keeps every entry around or below ~2k traces.
    """
    if variable_count <= 2:
        return min(entry_bound, 4)
    if variable_count == 3:
        return min(entry_bound, 3)
    return min(entry_bound, 2)


def build_catalogue_corpus(oracle: Optional[DifferentialOracle] = None) -> List[Case]:
    """The Chapter 4 catalogue as validity cases with recorded verdicts."""
    oracle = oracle or DifferentialOracle()
    cases = []
    for entry in catalogue():
        case = Case(
            kind="validity",
            formula=to_ascii(entry.formula),
            id=f"catalogue/{entry.name}",
            max_length=_capped_bound(entry.max_length, len(entry.variables)),
            include_lassos=entry.include_lassos,
            variables=list(entry.variables),
            note=entry.description,
        )
        cases.append(oracle.record_expectations(case))
    return cases


def _spec_systems() -> Sequence[Tuple[object, str, dict]]:
    from ..specs import (
        arbiter_spec,
        mutex_spec,
        receiver_spec,
        reliable_queue_spec,
        request_ack_spec,
        sender_spec,
        service_provided_spec,
        stack_spec,
        unreliable_queue_spec,
    )

    return (
        (reliable_queue_spec(), "reliable_queue", {"num_values": 3, "seed": 1}),
        (stack_spec(), "stack", {"num_values": 3, "seed": 1}),
        (unreliable_queue_spec(), "unreliable_queue", {"seed": 1}),
        (arbiter_spec(), "arbiter", {"seed": 1}),
        (request_ack_spec(), "request_ack", {"seed": 1}),
        (sender_spec(), "ab_protocol", {"seed": 1}),
        (receiver_spec(), "ab_protocol", {"seed": 1}),
        (service_provided_spec(), "ab_protocol", {"seed": 1}),
        (mutex_spec(2), "mutex", {"processes": 2, "entries": 2, "seed": 1}),
        (mutex_spec(3), "mutex", {"processes": 3, "entries": 2, "seed": 1}),
    )


def build_spec_corpus(oracle: Optional[DifferentialOracle] = None) -> List[Case]:
    """Every spec-module clause on its matching simulated system."""
    oracle = oracle or DifferentialOracle()
    cases = []
    for specification, system, args in _spec_systems():
        for clause in specification.clauses:
            formula = clause.interpreted_formula()
            text = to_ascii(formula)
            if parse_formula(text) != formula:  # pragma: no cover - guards new clauses
                raise ValueError(
                    f"clause {specification.name}/{clause.name} does not "
                    "round-trip through the corpus text format"
                )
            case = Case(
                kind="trace",
                formula=text,
                id=f"{specification.name}/{clause.name}",
                trace=TraceSpec(system=system, args=dict(args)),
            )
            cases.append(oracle.record_expectations(case))
    return cases


def _faulty_systems() -> Sequence[Tuple[object, str, str, dict, str]]:
    """(specification, case-family label, system, args, note) per fault."""
    from ..specs import (
        arbiter_spec,
        mutex_spec,
        reliable_queue_spec,
        request_ack_spec,
        sender_spec,
        unreliable_queue_spec,
    )

    return (
        (reliable_queue_spec(), "queue-reorder", "reordering_queue",
         {"num_values": 4, "seed": 2},
         "faulty queue serves values out of order (violates FIFO.)"),
        (reliable_queue_spec(), "queue-invent", "inventing_queue",
         {"num_values": 4, "seed": 2},
         "faulty queue delivers values never enqueued"),
        (unreliable_queue_spec(), "lossy-misorder", "unreliable_misordering",
         {"num_values": 4, "seed": 2},
         "lossy queue delivers surviving values out of order (violates I1)"),
        (arbiter_spec(), "arbiter-early-ack", "arbiter_faulty",
         {"seed": 2, "fault": "early_user_ack"},
         "UAi raised before TAi and RMA (violates Figure 6-4 A1)"),
        (arbiter_spec(), "arbiter-double-grant", "arbiter_faulty",
         {"seed": 2, "fault": "simultaneous_grants"},
         "both transfer requests up at once (violates Figure 6-4 A2)"),
        (request_ack_spec(), "handshake-early-drop", "request_ack_faulty",
         {"seed": 2, "fault": "early_ack_drop"},
         "A lowered while R still up (violates Figure 6-2 A2)"),
        (request_ack_spec(), "handshake-request-drop", "request_ack_faulty",
         {"seed": 2, "fault": "request_drop"},
         "R lowered before A rises (violates Figure 6-2 A1)"),
        (sender_spec(), "ab-no-alternation", "ab_protocol_faulty",
         {"fault": "no_alternation"},
         "sender never alternates the sequence number (violates A2)"),
        (sender_spec(), "ab-transmit-during-dq", "ab_protocol_faulty",
         {"fault": "transmit_during_dq"},
         "packet transmission overlaps a dequeue (violates sender A3)"),
        (mutex_spec(2), "mutex-barge-in", "mutex_faulty",
         {"processes": 2, "seed": 2},
         "process 2 enters its critical section without checking flags"),
    )


def build_faulty_corpus(oracle: Optional[DifferentialOracle] = None) -> List[Case]:
    """Fault-injected case-study runs with every clause verdict pinned.

    One trace case per (fault family, specification clause): the four
    case-study simulators with injected faults (queues, arbiter /
    request-ack handshake, AB protocol, mutex) evaluated against their own
    specifications.  The ``expect`` mappings pin the per-engine verdicts —
    prominently the ``False`` ones: a regression that makes any engine stop
    *detecting* a violation fails the replay just as loudly as one that
    breaks a passing clause.
    """
    oracle = oracle or DifferentialOracle()
    cases = []
    for specification, label, system, args, note in _faulty_systems():
        for clause in specification.clauses:
            formula = clause.interpreted_formula()
            text = to_ascii(formula)
            if parse_formula(text) != formula:  # pragma: no cover - guards new clauses
                raise ValueError(
                    f"clause {specification.name}/{clause.name} does not "
                    "round-trip through the corpus text format"
                )
            case = Case(
                kind="trace",
                formula=text,
                id=f"faulty/{label}/{clause.name}",
                trace=TraceSpec(system=system, args=dict(args)),
                note=note,
            )
            cases.append(oracle.record_expectations(case))
    return cases


def build_spec_plan_corpus(oracle: Optional[DifferentialOracle] = None) -> List[Case]:
    """Whole specifications as multi-clause spec cases with pinned verdicts.

    One ``"spec"`` case per (specification, simulated system): all clauses
    ride in the case's ``clauses`` list, so every replay evaluates them
    through one multi-root :class:`~repro.compile.specplan.SpecPlan` *and*
    per clause through the trace/compiled engines, pinning the per-clause
    verdict vector of each path.  This family is where nightly
    ``fuzz --specs`` sweeps archive new disagreements.
    """
    oracle = oracle or DifferentialOracle()
    cases = []
    for specification, system, args in _spec_systems():
        clause_texts = []
        for clause in specification.clauses:
            formula = clause.interpreted_formula()
            text = to_ascii(formula)
            if parse_formula(text) != formula:  # pragma: no cover - guards new clauses
                raise ValueError(
                    f"clause {specification.name}/{clause.name} does not "
                    "round-trip through the corpus text format"
                )
            clause_texts.append(text)
        case = Case(
            kind="spec",
            formula="",
            id=f"specplan/{specification.name}",
            clauses=clause_texts,
            trace=TraceSpec(system=system, args=dict(args)),
            note=f"all {len(clause_texts)} clauses as one multi-root plan",
        )
        cases.append(oracle.record_expectations(case))
    return cases


def seed_builtin_corpora(
    directory: str = DEFAULT_CORPUS_DIR, oracle: Optional[DifferentialOracle] = None
) -> List[str]:
    """(Re)write the built-in corpus files; returns the written paths."""
    oracle = oracle or DifferentialOracle()
    os.makedirs(directory, exist_ok=True)
    written = []
    for name, cases in (
        ("catalogue.jsonl", build_catalogue_corpus(oracle)),
        ("specs.jsonl", build_spec_corpus(oracle)),
        ("faulty_traces.jsonl", build_faulty_corpus(oracle)),
        ("spec_plans.jsonl", build_spec_plan_corpus(oracle)),
    ):
        path = os.path.join(directory, name)
        save_corpus(path, cases)
        written.append(path)
    return written


def corpus_files(paths: Iterable[str]) -> List[str]:
    """Expand files and directories into the ``.jsonl`` corpus files within."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            )
        else:
            files.append(path)
    return files


def load_corpus_dir(directory: str = DEFAULT_CORPUS_DIR) -> List[Case]:
    """All cases from every ``.jsonl`` file under ``directory``."""
    cases: List[Case] = []
    for path in corpus_files([directory]):
        cases.extend(load_corpus(path))
    return cases


def replay_corpus(
    cases: Sequence[Case],
    oracle: Optional[DifferentialOracle] = None,
    processes: Optional[int] = None,
) -> OracleReport:
    """Run the differential oracle over corpus cases."""
    oracle = oracle or DifferentialOracle()
    return oracle.run(list(cases), processes=processes)
