"""The cross-engine differential oracle.

Every :class:`~repro.gen.cases.Case` is routed through *every applicable
engine* of a façade :class:`~repro.api.session.Session` — applicability is
decided from the engines' machine-readable
:class:`~repro.api.engines.EngineCapabilities`, never from hard-coded names
— and the verdicts are compared under rules that respect each engine's
soundness guarantees:

* **exact engines must agree** — trace vs monitor on a computation, and
  either of them vs the tableau's claims replayed as explicit models;
* **bounded refutations are sound** — a counterexample from the bounded
  engine contradicts a tableau "valid", a model found by the bounded or LLL
  engine contradicts a tableau "unsatisfiable";
* **bounded affirmations are one-sided** — a bounded "valid" or LLL
  "no interpretation" is only a disagreement when an exact engine produced
  an explicit witness *within the same bound* (which the enumeration must
  then have found);
* **models replay** — a tableau countermodel (or model) is re-evaluated
  with the Chapter 3 trace engine, and for computations in the LTL fragment
  the trace verdict is cross-checked against the explicit-model LTL
  semantics (:func:`repro.ltl.semantics.ltl_satisfies`) through the
  :func:`~repro.ltl.translation.interval_to_ltl` translation;
* **recorded verdicts reproduce** — a case carrying an ``expect`` mapping
  (the corpus regression format) must reproduce every recorded verdict
  exactly;
* **spec plans agree clause-for-clause** — a ``"spec"`` case checks every
  clause of a multi-clause specification four ways: per clause through
  the ``trace`` engine, per clause through the ``compiled`` engine
  (vectorized bitset kernel), per clause through the ``stepwise`` engine
  (the same plan with the kernel disabled), and all clauses at once
  through one multi-root :class:`~repro.compile.specplan.SpecPlan` (the
  shared-subformula path conformance campaigns run on); the four
  per-clause verdict vectors must be identical.

Disagreements are shrunk with :mod:`repro.gen.shrink` to a minimal
replayable case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.request import QUERY_SATISFIABILITY, QUERY_VALIDITY, CheckRequest
from ..api.result import CheckResult
from ..api.session import Session
from ..core.bounded_checker import proposition_names
from ..errors import DecisionProcedureError
from ..ltl.semantics import ltl_satisfies
from ..ltl.translation import interval_to_ltl, is_in_ltl_fragment
from ..semantics.trace import Trace, make_trace
from ..syntax.formulas import Formula
from .cases import Case

__all__ = [
    "FormulaProfile",
    "EngineVerdict",
    "Disagreement",
    "OracleReport",
    "DifferentialOracle",
]


@dataclass(frozen=True)
class FormulaProfile:
    """The fragment facts engine applicability is decided on."""

    propositional: bool
    ltl_fragment: bool

    @staticmethod
    def of(formula: Formula) -> "FormulaProfile":
        try:
            proposition_names(formula)
            propositional = True
        except DecisionProcedureError:
            propositional = False
        return FormulaProfile(
            propositional=propositional,
            ltl_fragment=is_in_ltl_fragment(formula),
        )


@dataclass
class EngineVerdict:
    engine: str
    verdict: Optional[bool]
    error: Optional[str] = None

    def __str__(self) -> str:
        if self.error:
            return f"{self.engine}=ERROR({self.error})"
        return f"{self.engine}={self.verdict}"


@dataclass
class Disagreement:
    """A verdict conflict, with the minimized case that still exhibits it."""

    case: Case
    verdicts: List[EngineVerdict]
    reason: str
    shrunk: Optional[Case] = None

    def replay_case(self) -> Case:
        """The smallest case known to exhibit the disagreement."""
        return self.shrunk if self.shrunk is not None else self.case

    def __str__(self) -> str:
        verdicts = ", ".join(str(v) for v in self.verdicts)
        return f"[{self.case.id or self.case.kind}] {self.reason} ({verdicts})"


@dataclass
class OracleReport:
    cases: int = 0
    engine_runs: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENT(S)"
        return f"{status}: {self.cases} cases, {self.engine_runs} engine runs"


class DifferentialOracle:
    """Routes cases through every applicable engine and compares verdicts.

    Parameters
    ----------
    session:
        The façade session to check through; a fresh default session when
        omitted.  Custom sessions (e.g. with a deliberately broken engine
        registered) are how the harness tests itself.
    monitor_max_states:
        Incremental engines re-evaluate every prefix, so their cost is
        quadratic in the trace length; traces longer than this are not
        routed to them.
    shrink:
        Minimize each disagreeing case before reporting it.
    work_budget:
        Per-request work budget handed to engines that honor
        ``CheckRequest.budget`` (the LLL bounded semantics is
        super-exponential in expression nesting).  An engine that exhausts
        its budget *abstains* — its run is excluded from the comparison
        instead of hanging the campaign or counting as a disagreement.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        monitor_max_states: int = 25,
        shrink: bool = True,
        work_budget: Optional[int] = 200_000,
    ) -> None:
        self.session = session if session is not None else Session()
        self.monitor_max_states = monitor_max_states
        self.shrink = shrink
        self.work_budget = work_budget

    # -- applicability -----------------------------------------------------------

    def applicable_engines(
        self, case: Case, formula: Formula, trace: Optional[Trace]
    ) -> List[str]:
        """Engine names able to answer this case, from capability metadata."""
        profile = FormulaProfile.of(formula)
        names: List[str] = []
        for engine in self.session.registry.engines():
            caps = engine.capabilities
            if case.kind == "trace":
                if not caps.needs_trace or trace is None:
                    continue
                if caps.stutter_only and not trace.is_stutter_extended:
                    continue
                if caps.incremental and trace.length > self.monitor_max_states:
                    continue
            else:
                if caps.needs_trace:
                    continue
                if case.kind not in caps.queries:
                    continue
                if caps.propositional_only and not profile.propositional:
                    continue
                if caps.ltl_fragment_only and not profile.ltl_fragment:
                    continue
            names.append(engine.name)
        return names

    def requests_for(
        self, case: Case, formula: Formula, trace: Optional[Trace]
    ) -> List[CheckRequest]:
        """One request per applicable engine (labels carry the engine name)."""
        requests = []
        for engine in self.applicable_engines(case, formula, trace):
            options: Dict[str, Any] = {
                "mode": engine,
                "capture_errors": True,
                "label": engine,
            }
            if case.kind == "trace":
                options["trace"] = trace
                options["domain"] = case.domain
            else:
                options["query"] = (
                    QUERY_VALIDITY if case.kind == "validity" else QUERY_SATISFIABILITY
                )
                options["max_length"] = case.max_length
                options["include_lassos"] = case.include_lassos
                options["budget"] = self.work_budget
                if case.variables is not None:
                    options["variables"] = tuple(case.variables)
                # Explicit witnesses make the tableau's exact claims
                # replayable on the Chapter 3 evaluator.
                options["extract_model"] = True
            requests.append(CheckRequest(formula=formula, **options))
        return requests

    # -- checking ---------------------------------------------------------------

    def run(
        self,
        cases: Sequence[Case],
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> OracleReport:
        """Check every case; serial by default, chunked fan-out with workers."""
        report = OracleReport(cases=len(cases))
        prepared: List[Tuple[Case, Formula, Optional[Trace], List[CheckRequest]]] = []
        flat: List[CheckRequest] = []
        for case in cases:
            if case.kind == "spec":
                # Spec cases run in-process: the multi-root plan path is a
                # session-level evaluation, not a single shippable request.
                try:
                    per_engine = self._spec_results(case)
                except Exception as exc:
                    report.disagreements.append(Disagreement(
                        case=case,
                        verdicts=[],
                        reason=f"malformed case: {type(exc).__name__}: {exc}",
                    ))
                    continue
                report.engine_runs += len(per_engine)
                reason = self._judge_spec(case, per_engine)
                if reason is not None:
                    report.disagreements.append(
                        self._disagreement(case, per_engine, reason)
                    )
                continue
            try:
                formula = case.parsed_formula()
                trace = case.built_trace()
                requests = self.requests_for(case, formula, trace)
            except Exception as exc:
                # A malformed case (unparseable formula, unknown system
                # reference, bad rows) is reported against its id and the
                # rest of the batch still runs — a regression corpus must
                # never abort wholesale on one bad line.
                report.disagreements.append(Disagreement(
                    case=case,
                    verdicts=[],
                    reason=f"malformed case: {type(exc).__name__}: {exc}",
                ))
                continue
            prepared.append((case, formula, trace, requests))
            flat.extend(requests)
        results = self.session.check_many(flat, processes=processes, chunk_size=chunk_size)
        report.engine_runs += len(results)
        cursor = 0
        for case, formula, trace, requests in prepared:
            per_engine = {
                request.label: result
                for request, result in zip(requests, results[cursor : cursor + len(requests)])
            }
            cursor += len(requests)
            reason = self.judge(case, formula, trace, per_engine)
            if reason is not None:
                report.disagreements.append(
                    self._disagreement(case, per_engine, reason)
                )
        return report

    def check_case(self, case: Case) -> Tuple[Optional[str], Dict[str, CheckResult]]:
        """Judge one case in-process; returns (disagreement reason, verdicts)."""
        if case.kind == "spec":
            per_engine = self._spec_results(case)
            return self._judge_spec(case, per_engine), per_engine
        formula = case.parsed_formula()
        trace = case.built_trace()
        requests = self.requests_for(case, formula, trace)
        results = self.session.check_many(requests)
        per_engine = {r.label: result for r, result in zip(requests, results)}
        return self.judge(case, formula, trace, per_engine), per_engine

    # -- spec cases ---------------------------------------------------------------

    def _spec_results(self, case: Case) -> Dict[str, CheckResult]:
        """Per-clause results under keys ``trace[i]`` / ``compiled[i]`` /
        ``stepwise[i]`` / ``specplan[i]`` — the four paths a specification
        clause can take (``stepwise`` being the compiled plan with the
        vectorized bitset kernel disabled)."""
        from ..core.specification import Specification

        clauses = case.clauses or []
        trace = case.built_trace()
        if trace is None:
            raise ValueError("spec cases need a trace")
        per_engine: Dict[str, CheckResult] = {}
        for engine in ("trace", "compiled", "stepwise"):
            for index, text in enumerate(clauses):
                label = f"{engine}[{index}]"
                per_engine[label] = self.session.check(
                    text, mode=engine, trace=trace, domain=case.domain,
                    capture_errors=True, label=label,
                )
        specification = Specification(case.id or "fuzz-spec")
        for index, formula in enumerate(case.parsed_clauses()):
            specification.add_axiom(f"c{index}", formula)
        result = self.session.check_spec(
            specification, trace, domain=case.domain, compiled=True
        )
        for index, verdict in enumerate(result.verdicts):
            label = f"specplan[{index}]"
            per_engine[label] = CheckResult(
                verdict=None if verdict.error else verdict.holds,
                engine="specplan",
                request=CheckRequest(
                    formula=clauses[index], trace=case.trace, label=label
                ),
                error=verdict.error,
            )
        return per_engine

    def _judge_spec(
        self, case: Case, per_engine: Dict[str, CheckResult]
    ) -> Optional[str]:
        """The disagreement reason for a multi-clause spec case."""
        errors = {name: r.error for name, r in per_engine.items() if r.error}
        if errors:
            return f"engine error(s): {errors}"
        if case.expect:
            for engine, expected in case.expect.items():
                result = per_engine.get(engine)
                if result is not None and result.verdict is not expected:
                    return (
                        f"{engine} verdict {result.verdict} differs from the "
                        f"recorded {expected}"
                    )
        for index in range(len(case.clauses or [])):
            verdicts = {
                path: per_engine[f"{path}[{index}]"].verdict
                for path in ("trace", "compiled", "stepwise", "specplan")
            }
            if len(set(verdicts.values())) > 1:
                return f"clause {index} verdicts disagree: {verdicts}"
        return None

    def record_expectations(self, case: Case) -> Case:
        """The case with every engine's current verdict recorded as ``expect``.

        Raises :class:`ValueError` if the engines already disagree — a
        corpus must never be seeded on top of a live bug.
        """
        reason, per_engine = self.check_case(case)
        if reason is not None:
            raise ValueError(f"cannot record a disagreeing case {case.id!r}: {reason}")
        return case.replacing(
            expect={
                name: result.verdict
                for name, result in per_engine.items()
                if not result.error  # abstained engines pin nothing
            }
        )

    # -- judgement ---------------------------------------------------------------

    def judge(
        self,
        case: Case,
        formula: Formula,
        trace: Optional[Trace],
        per_engine: Dict[str, CheckResult],
    ) -> Optional[str]:
        """The disagreement reason, or ``None`` when all verdicts cohere."""
        # An exhausted work budget is an abstention, not a verdict: the
        # engine is removed from the comparison (never compared, never a
        # disagreement).
        per_engine = {
            name: result
            for name, result in per_engine.items()
            if not (result.error or "").startswith("PsiBudgetError")
        }
        errors = {name: r.error for name, r in per_engine.items() if r.error}
        if errors:
            return f"engine error(s): {errors}"
        if case.expect:
            for engine, expected in case.expect.items():
                result = per_engine.get(engine)
                if result is not None and result.verdict is not expected:
                    return (
                        f"{engine} verdict {result.verdict} differs from the "
                        f"recorded {expected}"
                    )
        capabilities = self.session.capabilities()
        exact = {
            name: r.verdict
            for name, r in per_engine.items()
            if capabilities[name].exact
        }
        if len(set(exact.values())) > 1:
            return f"exact engines disagree: {exact}"
        if case.kind == "trace":
            return self._judge_trace(formula, trace, per_engine)
        return self._judge_decision(case, formula, per_engine)

    def _judge_trace(
        self, formula: Formula, trace: Trace, per_engine: Dict[str, CheckResult]
    ) -> Optional[str]:
        # Cross-check the Chapter 3 evaluator against the explicit-model LTL
        # semantics through the fragment translation (works on lassos too,
        # where the monitor cannot follow).
        verdicts = {name: r.verdict for name, r in per_engine.items()}
        if verdicts and is_in_ltl_fragment(formula):
            translated = ltl_satisfies(trace, interval_to_ltl(formula))
            mismatched = {n: v for n, v in verdicts.items() if v is not translated}
            if mismatched:
                return (
                    f"LTL explicit-model semantics says {translated}, "
                    f"engines say {mismatched}"
                )
        return None

    def _judge_decision(
        self, case: Case, formula: Formula, per_engine: Dict[str, CheckResult]
    ) -> Optional[str]:
        tableau = per_engine.get("tableau")
        bounded = per_engine.get("bounded")
        lll = per_engine.get("lll")
        def within_bound(model: Any) -> bool:
            # A model the bounded enumeration must itself have visited: short
            # enough, and of an enumerated shape (without lassos only the
            # stutter extension is enumerated).
            return (
                isinstance(model, Trace)
                and model.length <= case.max_length
                and (case.include_lassos or model.is_stutter_extended)
            )
        if case.kind == "validity":
            if tableau is not None and bounded is not None:
                if tableau.verdict and not bounded.verdict:
                    return "bounded counterexample refutes a tableau-valid formula"
                if not tableau.verdict and bounded.verdict and within_bound(tableau.counterexample):
                    return (
                        "tableau countermodel lies within the bound but the "
                        "bounded enumeration found no counterexample"
                    )
            if tableau is not None and not tableau.verdict:
                reason = self._replay(formula, tableau.counterexample, expect=False)
                if reason:
                    return f"tableau validity countermodel: {reason}"
            if bounded is not None and not bounded.verdict:
                reason = self._replay(formula, bounded.counterexample, expect=False)
                if reason:
                    return f"bounded counterexample: {reason}"
            return None
        # satisfiability
        if tableau is not None:
            for name, other in (("bounded", bounded), ("lll", lll)):
                if other is not None and other.verdict and not tableau.verdict:
                    return f"{name} found a model but the tableau says unsatisfiable"
            if (
                tableau.verdict
                and bounded is not None
                and not bounded.verdict
                and within_bound(tableau.witness)
            ):
                return (
                    "tableau model lies within the bound but the bounded "
                    "enumeration found no model"
                )
            if tableau.verdict:
                reason = self._replay(formula, tableau.witness, expect=True)
                if reason:
                    return f"tableau satisfiability model: {reason}"
        if bounded is not None and bounded.verdict:
            reason = self._replay(formula, bounded.witness, expect=True)
            if reason:
                return f"bounded model: {reason}"
        return None

    def _replay(self, formula: Formula, model: Any, expect: bool) -> Optional[str]:
        """Re-evaluate an explicit model with the trace engine."""
        if not isinstance(model, Trace):
            return None
        try:
            names = proposition_names(formula)
        except DecisionProcedureError:
            return None
        rows = [
            {name: bool(state.get(name, False)) for name in names}
            for state in model.states()
        ]
        replayable = make_trace(rows, loop_start=model.loop_start)
        result = self.session.check(
            formula, mode="trace", trace=replayable, capture_errors=True
        )
        if result.error:
            return f"evaluator errored on the model: {result.error}"
        if result.verdict is not expect:
            return (
                f"evaluator says {result.verdict} on the explicit model, "
                f"expected {expect}"
            )
        return None

    # -- reporting ---------------------------------------------------------------

    def _disagreement(
        self, case: Case, per_engine: Dict[str, CheckResult], reason: str
    ) -> Disagreement:
        verdicts = [
            EngineVerdict(name, result.verdict, result.error)
            for name, result in sorted(per_engine.items())
        ]
        shrunk = None
        # Spec cases are judged as a whole (the shrinker's formula/trace
        # moves are per-formula), so they are reported unshrunk.
        if self.shrink and case.kind != "spec":
            from .shrink import shrink_case

            # A candidate must preserve the failure *class*: a shrink step
            # that merely breaks evaluation (dropping a variable the formula
            # reads) would otherwise hijack a genuine verdict disagreement.
            original_is_error = reason.startswith("engine error")

            def still_fails(candidate: Case) -> bool:
                try:
                    failed_reason, _ = self.check_case(candidate)
                except Exception:
                    return False
                if failed_reason is None:
                    return False
                return failed_reason.startswith("engine error") == original_is_error

            shrunk = shrink_case(case, still_fails)
            if shrunk == case:
                shrunk = None
        return Disagreement(case=case, verdicts=verdicts, reason=reason, shrunk=shrunk)
