"""Seeded, grammar-directed random generators for scenarios.

Three things are generated, all from a caller-supplied ``random.Random`` so
every scenario is replayable from its seed:

* **formulas** — :func:`gen_formula` walks the Chapter 2/3 grammar under a
  node budget: atoms (propositions, comparisons, operation predicates,
  ``start``), the propositional connectives, ``[] / <>``, interval formulas
  ``[I] α`` and eventualities ``*I`` over terms built from events,
  ``begin/end``, both arrows and the ``*`` modifier, plus ``forall`` over
  rigid variables (fragment permitting);
* **traces** — :func:`gen_trace` draws random state rows (and random lasso
  shapes) over a :class:`ScenarioProfile`'s variable pools;
* **transition systems** — :class:`RandomSystem` builds a random guarded
  update system and drives it through the simulation kernel
  (:class:`repro.systems.simulator.TraceBuilder` /
  :class:`~repro.systems.simulator.OperationDriver`), so generated traces
  also exercise operation lifecycles exactly the way the paper's case-study
  simulators do.

Fragments
---------
``gen_formula`` takes a ``fragment`` argument mirroring the engine
capability metadata of :mod:`repro.api.engines`:

``"ltl"``
    propositional atoms, boolean connectives, ``[] / <>`` and ``*e`` over
    propositional events — the exact input language of the tableau and LLL
    engines;
``"interval"``
    adds the full interval-term grammar (``[I] α``, ``begin/end``, arrows,
    ``*`` modifier) while keeping atoms propositional — the bounded engine's
    language;
``"rich"``
    adds comparisons over state expressions, operation predicates,
    ``start`` and ``forall`` over rigid variables — everything the trace and
    monitor engines evaluate.

Every generated formula round-trips through the concrete syntax
(``parse_formula(to_ascii(f)) == f`` and the unicode variant); the
generators deliberately avoid the two documented one-way spellings (the
``bind-next`` convention, which the parser does not read, and ``<=``
comparisons, whose ASCII spelling collides with the backward arrow inside
interval terms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..semantics.trace import Trace, make_trace
from ..syntax.builder import (
    after_op,
    at_op,
    in_op,
)
from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from ..syntax.intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from ..syntax.terms import (
    BinOp,
    Cmp,
    Const,
    Expr,
    LogicalVar,
    Prop,
    StartPredicate,
    Var,
)
from ..systems.simulator import OperationDriver, TraceBuilder

__all__ = [
    "FRAGMENTS",
    "ScenarioProfile",
    "gen_expr",
    "gen_formula",
    "gen_term",
    "gen_trace",
    "RandomSystem",
    "gen_system_trace",
]


FRAGMENTS = ("ltl", "interval", "rich")

# Comparison operators the generators use.  "<=" is deliberately absent: its
# ASCII spelling is the backward arrow inside interval terms (the documented
# one-way case of repro.syntax.parser), so formulas containing it would not
# round-trip through the corpus file format.
_CMP_OPS = ("==", "!=", "<", ">", ">=")


@dataclass(frozen=True)
class ScenarioProfile:
    """The shared vocabulary of a generated scenario.

    Formulas draw their atoms from these pools and traces assign exactly
    these variables in every state, so any generated formula can be
    evaluated on any generated trace of the same profile.
    """

    bool_vars: Tuple[str, ...] = ("p", "q", "r")
    int_vars: Tuple[str, ...] = ("x", "y")
    logical_vars: Tuple[str, ...] = ("a", "b")
    operations: Tuple[str, ...] = ("Dq", "Req")
    int_range: Tuple[int, int] = (0, 3)

    def domain(self) -> Dict[str, List[int]]:
        """A quantification domain covering every logical variable."""
        lo, hi = self.int_range
        return {name: list(range(lo, hi + 1)) for name in self.logical_vars}

    @staticmethod
    def propositional(variables: Sequence[str] = ("p", "q")) -> "ScenarioProfile":
        """A profile whose formulas stay propositional (decision engines)."""
        return ScenarioProfile(
            bool_vars=tuple(variables), int_vars=(), logical_vars=(), operations=()
        )


# ---------------------------------------------------------------------------
# Expressions and atoms
# ---------------------------------------------------------------------------


def gen_expr(
    rng: random.Random,
    profile: ScenarioProfile,
    bound_vars: Tuple[str, ...] = (),
    depth: int = 1,
) -> Expr:
    """A random integer-valued state expression."""
    lo, hi = profile.int_range
    choices = ["const"]
    if profile.int_vars:
        choices += ["var", "var"]
    if bound_vars:
        choices += ["lvar", "lvar"]
    if depth > 0 and profile.int_vars:
        choices.append("binop")
    kind = rng.choice(choices)
    if kind == "var":
        return Var(rng.choice(profile.int_vars))
    if kind == "lvar":
        return LogicalVar(rng.choice(bound_vars))
    if kind == "binop":
        op = rng.choice(("+", "-"))
        return BinOp(
            op,
            gen_expr(rng, profile, bound_vars, depth - 1),
            gen_expr(rng, profile, bound_vars, depth - 1),
        )
    return Const(rng.randint(lo, hi))


def _gen_atom(
    rng: random.Random,
    profile: ScenarioProfile,
    fragment: str,
    bound_vars: Tuple[str, ...],
) -> Formula:
    choices: List[str] = []
    if profile.bool_vars:
        choices += ["prop"] * 4
    choices += ["const"]
    if fragment == "rich":
        if profile.int_vars or bound_vars:
            choices += ["cmp"] * 3
        if profile.operations:
            choices += ["op"] * 2
        choices += ["start"]
    kind = rng.choice(choices)
    if kind == "prop":
        return Atom(Prop(rng.choice(profile.bool_vars)))
    if kind == "cmp":
        op = rng.choice(_CMP_OPS)
        return Atom(
            Cmp(gen_expr(rng, profile, bound_vars), op, gen_expr(rng, profile, bound_vars))
        )
    if kind == "op":
        name = rng.choice(profile.operations)
        maker = rng.choice((at_op, in_op, after_op))
        if rng.random() < 0.5:
            return maker(name, gen_expr(rng, profile, bound_vars))
        return maker(name)
    if kind == "start":
        return Atom(StartPredicate())
    return TrueFormula() if rng.random() < 0.5 else FalseFormula()


# ---------------------------------------------------------------------------
# Formulas and interval terms
# ---------------------------------------------------------------------------


def gen_formula(
    rng: random.Random,
    profile: Optional[ScenarioProfile] = None,
    size: int = 8,
    fragment: str = "rich",
    bound_vars: Tuple[str, ...] = (),
    max_interval_depth: Optional[int] = None,
) -> Formula:
    """A random formula of the requested fragment with ~``size`` nodes.

    ``max_interval_depth`` caps the nesting of interval operators
    (``[I] α``, ``*I`` and their terms).  Deciding interval logic is
    non-elementary in that nesting — the bounded engine's per-trace
    evaluation and the LLL ``Ψ`` computation both blow up on it — so
    campaign configurations keep decision-engine cases shallow while
    letting single-trace cases nest freely.
    """
    if fragment not in FRAGMENTS:
        raise ValueError(f"fragment must be one of {FRAGMENTS}, got {fragment!r}")
    profile = profile or ScenarioProfile()
    if size <= 1:
        return _gen_atom(rng, profile, fragment, bound_vars)
    choices = ["not", "and", "or", "implies", "iff", "always", "eventually"]
    if max_interval_depth is None or max_interval_depth > 0:
        choices += ["occurs"]
        if fragment != "ltl":
            choices += ["interval", "interval"]
    if fragment == "rich":
        unbound = tuple(v for v in profile.logical_vars if v not in bound_vars)
        if unbound:
            choices.append("forall")
    kind = rng.choice(choices)
    budget = size - 1
    depth = max_interval_depth
    inner_depth = None if depth is None else depth - 1
    if kind == "not":
        return Not(gen_formula(rng, profile, budget, fragment, bound_vars, depth))
    if kind in ("and", "or", "implies", "iff"):
        left_budget = rng.randint(1, max(1, budget - 1))
        left = gen_formula(rng, profile, left_budget, fragment, bound_vars, depth)
        right = gen_formula(rng, profile, budget - left_budget, fragment, bound_vars, depth)
        cls = {"and": And, "or": Or, "implies": Implies, "iff": Iff}[kind]
        return cls(left, right)
    if kind == "always":
        return Always(gen_formula(rng, profile, budget, fragment, bound_vars, depth))
    if kind == "eventually":
        return Eventually(gen_formula(rng, profile, budget, fragment, bound_vars, depth))
    if kind == "occurs":
        return Occurs(gen_term(rng, profile, max(1, budget), fragment, bound_vars, inner_depth))
    if kind == "interval":
        term_budget = rng.randint(1, max(1, budget - 1))
        term = gen_term(rng, profile, term_budget, fragment, bound_vars, inner_depth)
        body = gen_formula(rng, profile, budget - term_budget, fragment, bound_vars, inner_depth)
        return IntervalFormula(term, body)
    # forall: bind a fresh rigid variable in the body.
    unbound = tuple(v for v in profile.logical_vars if v not in bound_vars)
    name = rng.choice(unbound)
    body = gen_formula(rng, profile, budget, fragment, bound_vars + (name,), depth)
    return Forall((name,), body)


def _gen_event_formula(
    rng: random.Random,
    profile: ScenarioProfile,
    size: int,
    fragment: str,
    bound_vars: Tuple[str, ...],
    max_interval_depth: Optional[int],
) -> Formula:
    """An event-defining formula.

    A top-level ``Occurs`` is avoided: the event ``*(I)`` prints exactly like
    the ``*`` interval-term modifier applied to ``(I)``, so it would not
    round-trip through the concrete syntax.
    """
    for _ in range(8):
        formula = gen_formula(rng, profile, size, fragment, bound_vars, max_interval_depth)
        if not isinstance(formula, Occurs):
            return formula
    return _gen_atom(rng, profile, fragment, bound_vars)


def gen_term(
    rng: random.Random,
    profile: Optional[ScenarioProfile] = None,
    size: int = 4,
    fragment: str = "rich",
    bound_vars: Tuple[str, ...] = (),
    max_interval_depth: Optional[int] = None,
) -> IntervalTerm:
    """A random interval term with ~``size`` nodes.

    In the ``"ltl"`` fragment only plain event terms are generated (the
    translation of :mod:`repro.ltl.translation` accepts nothing else).
    """
    profile = profile or ScenarioProfile()
    depth = max_interval_depth
    if fragment == "ltl" or size <= 1:
        return EventTerm(
            _gen_event_formula(rng, profile, max(1, size), fragment, bound_vars, depth)
        )
    kind = rng.choice(["event", "event", "begin", "end", "forward", "backward", "star"])
    budget = size - 1
    if kind == "event":
        return EventTerm(_gen_event_formula(rng, profile, size, fragment, bound_vars, depth))
    if kind == "begin":
        return Begin(gen_term(rng, profile, budget, fragment, bound_vars, depth))
    if kind == "end":
        return End(gen_term(rng, profile, budget, fragment, bound_vars, depth))
    if kind == "star":
        return Star(gen_term(rng, profile, budget, fragment, bound_vars, depth))
    cls = Forward if kind == "forward" else Backward
    shape = rng.choice(("both", "left", "right"))
    if shape == "both" and budget >= 2:
        left_budget = rng.randint(1, budget - 1)
        return cls(
            gen_term(rng, profile, left_budget, fragment, bound_vars, depth),
            gen_term(rng, profile, budget - left_budget, fragment, bound_vars, depth),
        )
    if shape == "left":
        return cls(gen_term(rng, profile, budget, fragment, bound_vars, depth), None)
    return cls(None, gen_term(rng, profile, budget, fragment, bound_vars, depth))


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------


_PHASE_CYCLE = ("at", "in", "after")


def gen_trace(
    rng: random.Random,
    profile: Optional[ScenarioProfile] = None,
    max_states: int = 7,
    lasso_probability: float = 0.25,
    with_operations: bool = True,
) -> Trace:
    """A random trace assigning every profile variable in every state.

    With probability ``lasso_probability`` the trace is a genuine lasso
    (``loop_start < n``); otherwise it uses the paper's finite-computation
    convention.  Operation lifecycles follow the legal
    ``idle → at → in* → after → idle`` cycle so the Chapter 2.2 axioms hold
    on generated traces exactly as they do on simulated ones.
    """
    profile = profile or ScenarioProfile()
    lo, hi = profile.int_range
    length = rng.randint(1, max(1, max_states))
    rows: List[Dict[str, Any]] = []
    operations: List[Dict[str, Tuple[str, Tuple[int, ...], Tuple[int, ...]]]] = []
    phase_index = {name: -1 for name in profile.operations}
    op_args: Dict[str, Tuple[int, ...]] = {}
    for _ in range(length):
        row: Dict[str, Any] = {}
        for name in profile.bool_vars:
            row[name] = rng.random() < 0.5
        for name in profile.int_vars:
            row[name] = rng.randint(lo, hi)
        rows.append(row)
        record: Dict[str, Tuple[str, Tuple[int, ...], Tuple[int, ...]]] = {}
        if with_operations:
            for name in profile.operations:
                index = phase_index[name]
                if index < 0:
                    if rng.random() < 0.4:
                        phase_index[name] = 0
                        op_args[name] = (rng.randint(lo, hi),)
                elif index == 1 and rng.random() < 0.5:
                    pass  # linger in the "in" phase
                else:
                    phase_index[name] = index + 1
                    if phase_index[name] >= len(_PHASE_CYCLE):
                        phase_index[name] = -1
                index = phase_index[name]
                if index >= 0:
                    phase = _PHASE_CYCLE[index]
                    results = (rng.randint(lo, hi),) if phase == "after" else ()
                    record[name] = (phase, op_args[name], results)
        operations.append(record)
    loop_start = None
    if length > 1 and rng.random() < lasso_probability:
        loop_start = rng.randint(1, length - 1)
    return make_trace(rows, loop_start=loop_start, operations=operations if with_operations else None)


# ---------------------------------------------------------------------------
# Random transition systems
# ---------------------------------------------------------------------------


@dataclass
class RandomSystem:
    """A random guarded-update transition system over a profile's variables.

    The system is fully determined by ``(profile, seed)``: each boolean
    variable gets a random mod-2 update rule, each integer variable a random
    bounded affine walk, and each profile operation is invoked through
    :class:`~repro.systems.simulator.OperationDriver` whenever its random
    guard fires — so produced traces carry realistic operation lifecycles
    and correlated variable histories rather than independent noise.
    """

    profile: ScenarioProfile = field(default_factory=ScenarioProfile)
    seed: int = 0

    def trace(self, steps: int = 8, lasso_probability: float = 0.0) -> Trace:
        rng = random.Random(self.seed)
        lo, hi = self.profile.int_range
        initial: Dict[str, Any] = {name: False for name in self.profile.bool_vars}
        initial.update({name: lo for name in self.profile.int_vars})
        builder = TraceBuilder(initial)
        drivers = [OperationDriver(builder, name) for name in self.profile.operations]
        flip_probability = {name: rng.uniform(0.2, 0.8) for name in self.profile.bool_vars}
        step_delta = {name: rng.choice((-1, 1)) for name in self.profile.int_vars}
        builder.commit()
        committed = 1
        while committed < max(1, steps):
            for name in self.profile.bool_vars:
                if rng.random() < flip_probability[name]:
                    builder.set(**{name: not builder.get(name)})
            for name in self.profile.int_vars:
                value = builder.get(name) + step_delta[name]
                if not lo <= value <= hi:
                    step_delta[name] = -step_delta[name]
                    value = builder.get(name) + step_delta[name]
                builder.set(**{name: value})
            if drivers and rng.random() < 0.5:
                driver = rng.choice(drivers)
                argument = rng.randint(lo, hi)
                driver.call(argument, results=(argument,), busy_steps=2, rng=rng)
                committed += 4  # at + in(+) + after states, approximately
            else:
                builder.commit()
                committed += 1
        loop_start = None
        if lasso_probability and rng.random() < lasso_probability and builder.steps() > 1:
            loop_start = rng.randint(1, builder.steps() - 1)
        return builder.build(loop_start=loop_start)


def gen_system_trace(
    rng: random.Random,
    profile: Optional[ScenarioProfile] = None,
    max_steps: int = 10,
    lasso_probability: float = 0.25,
) -> Trace:
    """A trace of a fresh :class:`RandomSystem` seeded from ``rng``."""
    profile = profile or ScenarioProfile()
    system = RandomSystem(profile=profile, seed=rng.randrange(2**31))
    return system.trace(
        steps=rng.randint(2, max(2, max_steps)),
        lasso_probability=lasso_probability,
    )
