"""The ``python -m repro.gen`` command line.

Three subcommands::

    python -m repro.gen fuzz --seed 7 --cases 500 [--processes N]
        [--specs] [--save-failures PATH]
    python -m repro.gen replay [PATH ...]        # files or directories
    python -m repro.gen corpus [--list] [--seed-builtin] [--dir DIR]

``fuzz`` runs a seeded differential campaign and exits non-zero on any
cross-engine disagreement, printing each shrunk witness (and appending it to
``--save-failures`` as replayable corpus lines).  ``replay`` re-runs corpus
files through the oracle.  ``corpus`` lists or (re)seeds the built-in
corpora under ``tests/corpus/``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .cases import load_corpus, save_corpus
from .corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_files,
    replay_corpus,
    seed_builtin_corpora,
)
from .fuzz import FuzzConfig, fuzz
from .oracle import DifferentialOracle, OracleReport


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gen",
        description="Seeded scenario generation and cross-engine differential fuzzing.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz_cmd = commands.add_parser("fuzz", help="run a seeded differential campaign")
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.add_argument("--cases", type=int, default=100)
    fuzz_cmd.add_argument("--processes", type=int, default=None,
                          help="fan the campaign out over worker processes")
    fuzz_cmd.add_argument("--max-states", type=int, default=7,
                          help="maximum states of generated traces")
    fuzz_cmd.add_argument("--formula-size", type=int, default=10,
                          help="maximum node budget of generated formulas")
    fuzz_cmd.add_argument("--max-length", type=int, default=3,
                          help="length bound handed to the decision engines "
                               "(nightly sweeps raise it; the boolean "
                               "enumeration is exponential in it)")
    fuzz_cmd.add_argument("--specs", action="store_true",
                          help="generate multi-clause specification cases and "
                               "pit the multi-root SpecPlan path against the "
                               "per-clause trace/compiled engines")
    fuzz_cmd.add_argument("--no-shrink", action="store_true",
                          help="report disagreements without minimizing them")
    fuzz_cmd.add_argument("--save-failures", metavar="PATH", default=None,
                          help="append shrunk disagreements to this corpus file")

    replay_cmd = commands.add_parser("replay", help="replay corpus cases")
    replay_cmd.add_argument("paths", nargs="*", default=None,
                            help=f"corpus files or directories (default: {DEFAULT_CORPUS_DIR})")
    replay_cmd.add_argument("--processes", type=int, default=None)

    corpus_cmd = commands.add_parser("corpus", help="list or seed the built-in corpora")
    corpus_cmd.add_argument("--dir", default=DEFAULT_CORPUS_DIR)
    corpus_cmd.add_argument("--list", action="store_true", help="list corpus cases")
    corpus_cmd.add_argument("--seed-builtin", action="store_true",
                            help="(re)write the catalogue and spec corpora")
    return parser


def _report_disagreements(report: OracleReport) -> None:
    for disagreement in report.disagreements:
        print(f"DISAGREEMENT {disagreement}")
        replay = disagreement.replay_case()
        if replay is not disagreement.case:
            print(f"  shrunk to: {replay.formula!r}")
        print(f"  replay line: {replay.to_line()}")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    config = FuzzConfig(
        seed=args.seed,
        cases=args.cases,
        max_trace_states=args.max_states,
        max_formula_size=args.formula_size,
        max_length=args.max_length,
        specs=args.specs,
    )
    oracle = DifferentialOracle(shrink=not args.no_shrink)
    report = fuzz(config, oracle=oracle, processes=args.processes)
    print(f"fuzz seed={args.seed}: {report.summary()}")
    _report_disagreements(report)
    if report.disagreements and args.save_failures:
        failures = [d.replay_case().replacing(id=d.case.id) for d in report.disagreements]
        try:
            save_corpus(args.save_failures, failures, append=True)
        except OSError as exc:
            print(f"cannot write {args.save_failures}: {exc}", file=sys.stderr)
            print("replay lines above carry the same cases", file=sys.stderr)
        else:
            print(f"appended {len(failures)} replayable case(s) to {args.save_failures}")
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    paths = args.paths or [DEFAULT_CORPUS_DIR]
    files = corpus_files(paths)
    missing = [path for path in files if not os.path.exists(path)]
    if missing or not files:
        print(
            f"no corpus files found: {', '.join(missing or paths)}",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in files:
        cases = load_corpus(path)
        report = replay_corpus(cases, processes=args.processes)
        print(f"{path}: {report.summary()}")
        _report_disagreements(report)
        if not report.ok:
            status = 1
    return status


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.seed_builtin:
        for path in seed_builtin_corpora(args.dir):
            print(f"wrote {path}")
    if args.list or not args.seed_builtin:
        for path in corpus_files([args.dir]):
            for case in load_corpus(path):
                trace = ""
                if case.trace is not None:
                    if case.trace.system is not None:
                        trace = f" trace=system:{case.trace.system}"
                    else:
                        trace = f" trace=inline[{len(case.trace.rows or [])}]"
                print(f"{case.id or '?'}: kind={case.kind}{trace} formula={case.formula!r}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_corpus(args)
