"""The differential fuzzing campaign driver.

``fuzz(FuzzConfig(seed=7, cases=500))`` generates seeded scenario cases —
trace-satisfaction cases over random computations (half of them produced by
random transition systems running on the simulation kernel), small-scope
validity cases, and satisfiability cases in the LTL fragment — routes every
case through all applicable engines with the
:class:`~repro.gen.oracle.DifferentialOracle`, and reports shrunk,
replayable disagreements.  The same entry point backs
``python -m repro.gen fuzz``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..syntax.builder import always, eventually, implies, land, lnot, lor
from ..syntax.pretty import to_ascii
from .cases import Case, TraceSpec
from .generators import (
    ScenarioProfile,
    gen_formula,
    gen_system_trace,
    gen_trace,
)
from .oracle import DifferentialOracle, OracleReport

__all__ = ["FuzzConfig", "gen_case", "gen_cases", "gen_spec_case", "fuzz"]


@dataclass
class FuzzConfig:
    """Parameters of one fuzzing campaign (fully determined by ``seed``)."""

    seed: int = 0
    cases: int = 100
    #: Relative weights of the three case kinds.
    trace_weight: int = 7
    validity_weight: int = 2
    satisfiability_weight: int = 1
    max_formula_size: int = 10
    max_trace_states: int = 7
    #: Fraction of trace cases whose computation comes from a random
    #: transition system instead of independent random rows.
    system_trace_fraction: float = 0.5
    #: Probability that a generated computation is a genuine lasso
    #: (``loop_start < n``) rather than the finite stutter extension.
    lasso_probability: float = 0.25
    #: Bound for the decision engines (small: the boolean enumeration is
    #: exponential in ``variables × max_length``).
    max_length: int = 3
    #: Interval-operator nesting cap for decision-engine cases: deciding
    #: interval logic is non-elementary in that nesting, so validity /
    #: satisfiability campaigns keep it shallow (trace cases nest freely).
    decision_interval_depth: int = 2
    #: ``--specs`` mode: generate multi-clause specification cases pitting
    #: the multi-root SpecPlan path against the per-clause engines.
    specs: bool = False
    #: Clause count bounds for generated spec cases.
    min_spec_clauses: int = 2
    max_spec_clauses: int = 4
    profile: ScenarioProfile = field(default_factory=ScenarioProfile)
    decision_profile: ScenarioProfile = field(
        default_factory=lambda: ScenarioProfile.propositional(("p", "q"))
    )


def gen_spec_case(rng: random.Random, config: FuzzConfig, index: int = 0) -> Case:
    """One random multi-clause specification case.

    Clauses are combined from a small shared pool of generated formulas, so
    subformulas deliberately recur across clauses — exactly the sharing the
    multi-root :class:`~repro.compile.specplan.SpecPlan` exploits and the
    oracle must prove harmless.
    """
    profile = config.profile
    pool = [
        gen_formula(
            rng, profile,
            size=rng.randint(2, max(2, config.max_formula_size // 2)),
            fragment="rich",
        )
        for _ in range(rng.randint(2, 3))
    ]

    def combine():
        a, b = rng.choice(pool), rng.choice(pool)
        shape = rng.randrange(6)
        if shape == 0:
            return always(implies(a, b))
        if shape == 1:
            return eventually(land(a, b))
        if shape == 2:
            return implies(a, b)
        if shape == 3:
            return lor(a, lnot(b))
        if shape == 4:
            return always(a)
        return a

    clauses = [combine() for _ in range(
        rng.randint(config.min_spec_clauses, config.max_spec_clauses)
    )]
    if rng.random() < config.system_trace_fraction:
        trace = gen_system_trace(
            rng, profile,
            max_steps=config.max_trace_states + 3,
            lasso_probability=config.lasso_probability,
        )
    else:
        trace = gen_trace(
            rng, profile,
            max_states=config.max_trace_states,
            lasso_probability=config.lasso_probability,
        )
    return Case(
        kind="spec",
        formula="",
        id=f"fuzz-spec-{config.seed}-{index}",
        clauses=[to_ascii(clause) for clause in clauses],
        trace=TraceSpec.from_trace(trace),
        domain=profile.domain() or None,
    )


def gen_case(rng: random.Random, config: FuzzConfig, index: int = 0) -> Case:
    """One random case (kind chosen by the configured weights)."""
    if config.specs:
        return gen_spec_case(rng, config, index)
    kinds = (
        ["trace"] * config.trace_weight
        + ["validity"] * config.validity_weight
        + ["satisfiability"] * config.satisfiability_weight
    )
    kind = rng.choice(kinds)
    case_id = f"fuzz-{config.seed}-{index}"
    if kind == "trace":
        profile = config.profile
        size = rng.randint(2, config.max_formula_size)
        formula = gen_formula(rng, profile, size=size, fragment="rich")
        if rng.random() < config.system_trace_fraction:
            trace = gen_system_trace(
                rng, profile,
                max_steps=config.max_trace_states + 3,
                lasso_probability=config.lasso_probability,
            )
        else:
            trace = gen_trace(
                rng, profile,
                max_states=config.max_trace_states,
                lasso_probability=config.lasso_probability,
            )
        return Case(
            kind="trace",
            formula=to_ascii(formula),
            id=case_id,
            trace=TraceSpec.from_trace(trace),
            domain=profile.domain() or None,
        )
    profile = config.decision_profile
    size = rng.randint(2, max(3, config.max_formula_size - 3))
    fragment = "ltl" if kind == "satisfiability" else rng.choice(("ltl", "interval"))
    formula = gen_formula(
        rng, profile, size=size, fragment=fragment,
        max_interval_depth=config.decision_interval_depth,
    )
    return Case(
        kind=kind,
        formula=to_ascii(formula),
        id=case_id,
        max_length=config.max_length,
        variables=list(profile.bool_vars),
    )


def gen_cases(config: FuzzConfig) -> List[Case]:
    """The campaign's full case list, reproducible from ``config.seed``."""
    rng = random.Random(config.seed)
    return [gen_case(rng, config, index) for index in range(config.cases)]


def fuzz(
    config: Optional[FuzzConfig] = None,
    oracle: Optional[DifferentialOracle] = None,
    processes: Optional[int] = None,
) -> OracleReport:
    """Run a differential fuzzing campaign; returns the oracle's report."""
    config = config or FuzzConfig()
    oracle = oracle or DifferentialOracle()
    return oracle.run(gen_cases(config), processes=processes)
