"""The replayable scenario case and its JSON corpus format.

A :class:`Case` is one self-contained differential-testing scenario: a
formula in concrete syntax, the question kind, and — for trace questions —
the computation to evaluate it on.  Cases serialize to single JSON objects
(one per line in a ``.jsonl`` corpus file), so every fuzzing disagreement
becomes a permanent regression test and every corpus entry can be replayed
bit-for-bit by ``python -m repro.gen replay``.

Case kinds mirror the façade's questions:

``"trace"``
    does the formula hold on the given computation? (trace + monitor
    engines);
``"validity"``
    is the formula valid? (bounded engine; tableau when the formula is in
    the LTL fragment);
``"satisfiability"``
    is the formula satisfiable? (bounded + tableau + lll);
``"spec"``
    a multi-clause specification on one computation: every clause is
    checked per-clause by the trace and compiled engines *and* as one
    multi-root :class:`~repro.compile.specplan.SpecPlan`, and the three
    per-clause verdict vectors must agree (``clauses`` holds the clause
    formulas; ``formula`` is unused).

Traces are stored either inline (``rows`` / ``operations`` / ``loop_start``
— exactly the arguments of :func:`repro.semantics.trace.make_trace`) or as
a named reference into the simulator registry (``system`` + ``args``), which
keeps the spec-module corpus compact and exercises the simulators on every
replay.

The optional ``expect`` mapping records each engine's verdict at the time
the case was added; replaying compares fresh verdicts against it, turning
single-engine cases into genuine regressions too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..semantics.trace import Trace, make_trace
from ..syntax.formulas import Formula
from ..syntax.parser import parse_formula
from ..syntax.pretty import to_ascii

__all__ = ["CASE_KINDS", "Case", "TraceSpec", "SYSTEM_FACTORIES", "load_corpus", "save_corpus"]


CASE_KINDS = ("trace", "validity", "satisfiability", "spec")


def _system_factories() -> Dict[str, Any]:
    # Imported lazily so repro.gen stays importable without the systems
    # package's transitive dependencies in minimal deployments.
    from ..systems import (
        ab_protocol_faulty_trace,
        ab_protocol_trace,
        ABProtocolConfig,
        arbiter_faulty_trace,
        arbiter_trace,
        inventing_queue_trace,
        mutex_faulty_trace,
        mutex_trace,
        reliable_queue_trace,
        reordering_queue_trace,
        request_ack_faulty_trace,
        request_ack_trace,
        stack_trace,
        unreliable_misordering_trace,
        unreliable_queue_trace,
    )

    def ab_protocol_faulty(fault: str = "no_alternation", **kwargs: Any) -> Any:
        config = ABProtocolConfig(**kwargs) if kwargs else None
        return ab_protocol_faulty_trace(config, fault=fault)

    return {
        "reliable_queue": reliable_queue_trace,
        "stack": stack_trace,
        "unreliable_queue": unreliable_queue_trace,
        "arbiter": arbiter_trace,
        "request_ack": request_ack_trace,
        "ab_protocol": lambda **kwargs: ab_protocol_trace(ABProtocolConfig(**kwargs)),
        "mutex": mutex_trace,
        # Fault-injected variants: the differential corpus replays these to
        # pin that every engine keeps *detecting* the violations.
        "reordering_queue": reordering_queue_trace,
        "inventing_queue": inventing_queue_trace,
        "unreliable_misordering": unreliable_misordering_trace,
        "arbiter_faulty": arbiter_faulty_trace,
        "request_ack_faulty": request_ack_faulty_trace,
        "ab_protocol_faulty": ab_protocol_faulty,
        "mutex_faulty": mutex_faulty_trace,
    }


#: Simulator registry available to ``TraceSpec(system=...)`` references.
SYSTEM_FACTORIES = _system_factories


@dataclass
class TraceSpec:
    """A replayable description of one computation.

    Exactly one of ``rows`` (an inline trace) or ``system`` (a simulator
    reference) must be set.
    """

    rows: Optional[List[Dict[str, Any]]] = None
    operations: Optional[List[Dict[str, List[Any]]]] = None
    loop_start: Optional[int] = None
    system: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Trace:
        if self.system is not None:
            factories = SYSTEM_FACTORIES()
            try:
                factory = factories[self.system]
            except KeyError:
                raise ValueError(
                    f"unknown system {self.system!r}; available: "
                    f"{', '.join(sorted(factories))}"
                ) from None
            return factory(**self.args)
        if self.rows is None:
            raise ValueError("TraceSpec requires rows or a system reference")
        operations = None
        if self.operations is not None:
            operations = [
                {
                    name: (record[0], tuple(record[1]), tuple(record[2]))
                    for name, record in per_state.items()
                }
                for per_state in self.operations
            ]
        return make_trace(self.rows, loop_start=self.loop_start, operations=operations)

    @staticmethod
    def from_trace(trace: Trace) -> "TraceSpec":
        """Serialize a concrete trace (generated traces carry JSON-safe values)."""
        rows: List[Dict[str, Any]] = []
        operations: List[Dict[str, List[Any]]] = []
        any_operations = False
        for state in trace.states():
            rows.append(
                {name: value for name, value in state.values_map.items() if name != "__start__"}
            )
            record = {
                name: [op.phase, list(op.args), list(op.results)]
                for name, op in state.operations.items()
            }
            any_operations = any_operations or bool(record)
            operations.append(record)
        return TraceSpec(
            rows=rows,
            operations=operations if any_operations else None,
            loop_start=None if trace.is_stutter_extended else trace.loop_start,
        )

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.system is not None:
            payload["system"] = self.system
            if self.args:
                payload["args"] = self.args
        else:
            payload["rows"] = self.rows
            if self.operations is not None:
                payload["operations"] = self.operations
            if self.loop_start is not None:
                payload["loop_start"] = self.loop_start
        return payload

    @staticmethod
    def from_json(payload: Dict[str, Any]) -> "TraceSpec":
        return TraceSpec(
            rows=payload.get("rows"),
            operations=payload.get("operations"),
            loop_start=payload.get("loop_start"),
            system=payload.get("system"),
            args=dict(payload.get("args", {})),
        )


@dataclass
class Case:
    """One replayable differential-testing scenario."""

    kind: str
    formula: str
    id: str = ""
    trace: Optional[TraceSpec] = None
    domain: Optional[Dict[str, List[Any]]] = None
    max_length: int = 3
    include_lassos: bool = True
    variables: Optional[List[str]] = None
    #: Clause formulas of a ``"spec"`` case (concrete syntax, in order).
    clauses: Optional[List[str]] = None
    expect: Optional[Dict[str, Optional[bool]]] = None
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CASE_KINDS:
            raise ValueError(f"kind must be one of {CASE_KINDS}, got {self.kind!r}")
        if isinstance(self.formula, Formula):
            self.formula = to_ascii(self.formula)
        if self.clauses is not None:
            self.clauses = [
                to_ascii(clause) if isinstance(clause, Formula) else clause
                for clause in self.clauses
            ]
        if self.kind == "spec" and not self.clauses:
            raise ValueError("spec cases need a non-empty clauses list")

    def parsed_formula(self) -> Formula:
        return parse_formula(self.formula)

    def parsed_clauses(self) -> List[Formula]:
        return [parse_formula(clause) for clause in self.clauses or []]

    def built_trace(self) -> Optional[Trace]:
        return self.trace.build() if self.trace is not None else None

    def replacing(self, **changes: Any) -> "Case":
        from dataclasses import replace

        return replace(self, **changes)

    # -- JSON ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"id": self.id, "kind": self.kind, "formula": self.formula}
        if self.trace is not None:
            payload["trace"] = self.trace.to_json()
        if self.domain is not None:
            payload["domain"] = self.domain
        if self.clauses is not None:
            payload["clauses"] = self.clauses
        if self.kind not in ("trace", "spec"):
            payload["max_length"] = self.max_length
            payload["include_lassos"] = self.include_lassos
            if self.variables is not None:
                payload["variables"] = self.variables
        if self.expect is not None:
            payload["expect"] = self.expect
        if self.note:
            payload["note"] = self.note
        return payload

    @staticmethod
    def from_json(payload: Dict[str, Any]) -> "Case":
        trace = payload.get("trace")
        return Case(
            kind=payload["kind"],
            formula=payload.get("formula", ""),
            id=payload.get("id", ""),
            trace=TraceSpec.from_json(trace) if trace is not None else None,
            domain=payload.get("domain"),
            max_length=payload.get("max_length", 3),
            include_lassos=payload.get("include_lassos", True),
            variables=payload.get("variables"),
            clauses=payload.get("clauses"),
            expect=payload.get("expect"),
            note=payload.get("note", ""),
        )

    def to_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)


def load_corpus(path) -> List[Case]:
    """Read a ``.jsonl`` corpus file into cases (blank lines ignored)."""
    cases: List[Case] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                cases.append(Case.from_json(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{line_number}: malformed corpus case: {exc}") from exc
    return cases


def save_corpus(path, cases, append: bool = False) -> None:
    """Write cases to a ``.jsonl`` corpus file, one JSON object per line.

    With ``append`` the cases are added to whatever the file already holds
    (how fuzzing campaigns archive new disagreements without destroying
    earlier regressions).
    """
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for case in cases:
            handle.write(case.to_line() + "\n")
