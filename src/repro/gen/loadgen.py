"""Parameterized stream workloads for the monitoring service.

The :mod:`repro.serve` load generator needs a *fleet* of realistic
streams, not one trace: thousands of named devices, each running one of
the paper's simulated systems against its specification, a configurable
fraction of them fault-injected.  This module is the seeded, replayable
source of that fleet — built on :data:`~repro.gen.cases.SYSTEM_FACTORIES`
so every simulator (and every fault mode the differential corpus pins)
doubles as service load.

A :class:`StreamScript` is one stream's whole life: its id, the spec the
service should monitor (:data:`~repro.serve.streams.SPEC_FACTORIES` name),
the simulator reference that produces its states, and whether it was
fault-injected — so a load run knows which streams *should* end failing.
Scripts are deterministic in (seed, index): two load generators with the
same parameters produce byte-identical workloads on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cases import SYSTEM_FACTORIES

__all__ = ["StreamScript", "LOAD_FAMILIES", "generate_stream_scripts"]


#: (spec, correct system, faulty system, per-stream args) — each family
#: pairs a Chapter 5-8 specification with its simulator and a
#: fault-injected variant whose violations the spec's clauses detect.
LOAD_FAMILIES: Tuple[Tuple[str, str, str, Dict[str, Any]], ...] = (
    ("mutex", "mutex", "mutex_faulty", {"processes": 2}),
    ("reliable_queue", "reliable_queue", "reordering_queue", {"num_values": 4}),
    ("arbiter", "arbiter", "arbiter_faulty", {}),
    ("request_ack", "request_ack", "request_ack_faulty", {"cycles": 2}),
)


@dataclass
class StreamScript:
    """One stream of a load campaign: identity, spec, and state source."""

    stream: str
    spec: str
    system: str
    args: Dict[str, Any] = field(default_factory=dict)
    faulty: bool = False

    def build_trace(self):
        """The stream's full state sequence, via the simulator registry."""
        factories = SYSTEM_FACTORIES()
        return factories[self.system](**self.args)

    def rows(self) -> List[Dict[str, Any]]:
        """The trace as wire rows (lazy import keeps gen serve-free)."""
        from ..serve.protocol import trace_to_rows

        return trace_to_rows(self.build_trace())


def generate_stream_scripts(
    streams: int,
    seed: int = 0,
    fault_rate: float = 0.2,
    families: Optional[Sequence[Tuple[str, str, str, Dict[str, Any]]]] = None,
) -> List[StreamScript]:
    """A deterministic fleet of ``streams`` scripts.

    Families rotate round-robin; each stream draws its own simulator seed
    and — with probability ``fault_rate`` — swaps in the family's
    fault-injected variant.  Stream ids encode family and index
    (``mutex-0007``) so shard assignments and failures read at a glance.
    """
    if streams < 1:
        raise ValueError(f"streams must be at least 1, got {streams}")
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be within [0, 1], got {fault_rate}")
    chosen = list(families if families is not None else LOAD_FAMILIES)
    rng = random.Random(seed)
    scripts: List[StreamScript] = []
    for index in range(streams):
        spec, correct, faulty_system, base_args = chosen[index % len(chosen)]
        faulty = rng.random() < fault_rate
        args = dict(base_args)
        args["seed"] = rng.randrange(1 << 30)
        scripts.append(
            StreamScript(
                stream=f"{spec}-{index:04d}",
                spec=spec,
                system=faulty_system if faulty else correct,
                args=args,
                faulty=faulty,
            )
        )
    return scripts
