"""Seeded scenario generation and cross-engine differential fuzzing.

The five engines behind the :mod:`repro.api` façade answer overlapping
questions, which makes them free oracles for each other.  This package
closes the loop:

* :mod:`~repro.gen.generators` — seeded, grammar-directed random formulas,
  traces and transition systems (driven through the simulation kernel);
* :mod:`~repro.gen.oracle` — the differential oracle routing each case
  through every applicable engine (selected from the engines' capability
  metadata) and comparing verdicts under soundness-aware rules;
* :mod:`~repro.gen.shrink` — greedy minimization of failing cases;
* :mod:`~repro.gen.cases` / :mod:`~repro.gen.corpus` — the replayable
  corpus file format and the built-in catalogue/spec corpora under
  ``tests/corpus/``;
* :mod:`~repro.gen.fuzz` + ``python -m repro.gen`` — campaign driver and
  the ``fuzz`` / ``replay`` / ``corpus`` command line.

Quickstart::

    from repro.gen import FuzzConfig, fuzz

    report = fuzz(FuzzConfig(seed=7, cases=500))
    assert report.ok, report.summary()
"""

from .cases import Case, TraceSpec, load_corpus, save_corpus
from .corpus import (
    DEFAULT_CORPUS_DIR,
    build_catalogue_corpus,
    build_faulty_corpus,
    build_spec_corpus,
    build_spec_plan_corpus,
    load_corpus_dir,
    replay_corpus,
    seed_builtin_corpora,
)
from .fuzz import FuzzConfig, fuzz, gen_case, gen_cases, gen_spec_case
from .generators import (
    RandomSystem,
    ScenarioProfile,
    gen_expr,
    gen_formula,
    gen_system_trace,
    gen_term,
    gen_trace,
)
from .oracle import (
    Disagreement,
    DifferentialOracle,
    EngineVerdict,
    FormulaProfile,
    OracleReport,
)
from .shrink import case_variants, formula_variants, shrink_case, term_variants

__all__ = [
    "Case",
    "TraceSpec",
    "load_corpus",
    "save_corpus",
    "DEFAULT_CORPUS_DIR",
    "build_catalogue_corpus",
    "build_faulty_corpus",
    "build_spec_corpus",
    "build_spec_plan_corpus",
    "load_corpus_dir",
    "replay_corpus",
    "seed_builtin_corpora",
    "FuzzConfig",
    "fuzz",
    "gen_case",
    "gen_cases",
    "gen_spec_case",
    "RandomSystem",
    "ScenarioProfile",
    "gen_expr",
    "gen_formula",
    "gen_system_trace",
    "gen_term",
    "gen_trace",
    "Disagreement",
    "DifferentialOracle",
    "EngineVerdict",
    "FormulaProfile",
    "OracleReport",
    "case_variants",
    "formula_variants",
    "shrink_case",
    "term_variants",
]
