"""Parameterized abstract operations (Chapter 2.2).

For an abstract operation ``O`` the paper defines state predicates ``atO``,
``inO`` and ``afterO`` — "at the beginning", "within", and "immediately
after" the operation — and constrains them by a temporal axiomatization:

1. ``[ atO => begin afterO ] [] inO`` — from entry until just before the
   state following the operation, control is within the operation;
2. ``[ afterO => begin atO ] [] ~inO`` — between an operation instance and
   the next entry, control is not within the operation;
3. ``atO`` may be true only at the beginning of the operation;
4. ``afterO`` may be true only immediately following an operation.

Axioms 3 and 4 are stated in the paper only in prose (the displayed formulas
are illegible in the archival scan); we reconstruct them as the natural
interval-logic statements that ``atO`` (resp. ``afterO``) holds at the start
of its change interval and does not recur within the same operation
instance.  No granularity, duration or termination assumption is implied;
:meth:`Operation.termination_axiom` provides the optional termination
requirement ("``[ atO => * afterO ] True``").

Operations may carry entry parameters and results; the ``at``/``after``
predicates are overloaded with argument expressions exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..errors import SpecificationError
from ..syntax.builder import (
    after_op,
    always,
    at_op,
    begin,
    event,
    forward,
    in_op,
    interval,
    lnot,
    occurs,
    star,
    to_expr,
)
from ..syntax.formulas import Formula
from ..syntax.terms import OpAfter, OpAt, OpIn, OpPhase
from ..semantics.state import OperationRecord, State

__all__ = ["Operation", "OperationSet"]


@dataclass(frozen=True)
class Operation:
    """An abstract operation with ``n`` entry parameters and ``m`` results.

    The class is purely descriptive: it names the operation, documents its
    arity, and builds the Chapter 2.2 predicates and axioms.  Simulators
    record the lifecycle of each operation in the trace's states via
    :class:`repro.semantics.state.OperationRecord`.
    """

    name: str
    entry_parameters: Tuple[str, ...] = ()
    result_parameters: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("operation name must be non-empty")
        object.__setattr__(self, "entry_parameters", tuple(self.entry_parameters))
        object.__setattr__(self, "result_parameters", tuple(self.result_parameters))

    # -- predicates -------------------------------------------------------------

    def at(self, *args: Any) -> Formula:
        """``atO(args...)`` as an atomic formula."""
        return at_op(self.name, *[to_expr(a) for a in args])

    def within(self, *args: Any) -> Formula:
        """``inO(args...)`` as an atomic formula."""
        return in_op(self.name, *[to_expr(a) for a in args])

    def after(self, *args: Any) -> Formula:
        """``afterO(args...)`` as an atomic formula."""
        return after_op(self.name, *[to_expr(a) for a in args])

    # -- axioms -----------------------------------------------------------------

    def axioms(self) -> List[Formula]:
        """The four lifecycle axioms of Chapter 2.2 for this operation."""
        at_f = self.at()
        in_f = self.within()
        after_f = self.after()
        axiom1 = interval(forward(event(at_f), begin(event(after_f))), always(in_f))
        axiom2 = interval(
            forward(event(after_f), begin(event(at_f))), always(lnot(in_f))
        )
        # Reconstructed axiom 3: once atO has fallen it does not recur before
        # the operation completes (atO is true only at the beginning).
        axiom3 = interval(
            forward(event(at_f), begin(event(after_f))),
            interval(forward(event(lnot(at_f)), None), always(lnot(at_f))),
        )
        # Reconstructed axiom 4: dually, afterO is true only immediately after
        # an operation — once it has fallen it does not recur before the next
        # entry.
        axiom4 = interval(
            forward(event(after_f), begin(event(at_f))),
            interval(forward(event(lnot(after_f)), None), always(lnot(after_f))),
        )
        return [axiom1, axiom2, axiom3, axiom4]

    def termination_axiom(self) -> Formula:
        """``[ atO => * afterO ] True`` — the operation always terminates."""
        return interval(forward(event(self.at()), star(event(self.after()))), True)

    # -- state construction helpers ----------------------------------------------

    def record(self, phase: str, args: Sequence[Any] = (), results: Sequence[Any] = ()) -> OperationRecord:
        """Build an :class:`OperationRecord` for this operation."""
        if phase not in OpPhase.ALL:
            raise SpecificationError(f"unknown phase {phase!r} for operation {self.name}")
        return OperationRecord(phase, tuple(args), tuple(results))

    def idle(self) -> OperationRecord:
        return self.record(OpPhase.IDLE)

    def entering(self, *args: Any) -> OperationRecord:
        return self.record(OpPhase.AT, args)

    def executing(self, *args: Any) -> OperationRecord:
        return self.record(OpPhase.IN, args)

    def returning(self, args: Sequence[Any] = (), results: Sequence[Any] = ()) -> OperationRecord:
        return self.record(OpPhase.AFTER, args, results)

    def __str__(self) -> str:
        params = ", ".join(self.entry_parameters)
        results = ", ".join(self.result_parameters)
        arrow = f" -> ({results})" if results else ""
        return f"{self.name}({params}){arrow}"


class OperationSet:
    """A named collection of operations sharing a specification.

    Provides the conjunction of all lifecycle axioms and a convenient
    ``state`` builder for simulators: ``ops.state(x=1, Enq=("at", (5,)))``.
    """

    def __init__(self, operations: Sequence[Operation]) -> None:
        self._by_name: Dict[str, Operation] = {}
        for op in operations:
            if op.name in self._by_name:
                raise SpecificationError(f"duplicate operation name: {op.name}")
            self._by_name[op.name] = op

    def __getitem__(self, name: str) -> Operation:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SpecificationError(f"unknown operation: {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)

    def lifecycle_axioms(self) -> List[Formula]:
        """The lifecycle axioms of every operation in the set."""
        axioms: List[Formula] = []
        for op in self._by_name.values():
            axioms.extend(op.axioms())
        return axioms

    def state(self, values: Dict[str, Any] = None, **op_phases: Any) -> State:
        """Build a state: keyword arguments name operations and give phases.

        Each keyword value is either a phase string, a ``(phase, args)``
        pair, or a ``(phase, args, results)`` triple.  Operations not
        mentioned are idle.
        """
        records: Dict[str, OperationRecord] = {}
        for name, spec in op_phases.items():
            op = self[name]
            if isinstance(spec, str):
                records[name] = op.record(spec)
            else:
                parts = tuple(spec)
                phase = parts[0]
                args = parts[1] if len(parts) > 1 else ()
                results = parts[2] if len(parts) > 2 else ()
                records[name] = op.record(phase, args, results)
        return State(values or {}, records)
