"""The interval-logic core API.

Parameterized abstract operations (Chapter 2.2), Init/Axioms specifications
(Chapter 3), the Chapter 4 valid-formula catalogue, small-scope bounded
validity checking, and semantic proof support for Chapter 8.
"""

from .bounded_checker import (
    BoundedResult,
    check_bounded_equivalence,
    count_bounded_traces,
    enumerate_boolean_traces,
    find_counterexample,
    is_bounded_valid,
    proposition_names,
    random_boolean_traces,
)
from .operations import Operation, OperationSet
from .proof import Lemma, LemmaCheck, ProofScript
from .specification import Clause, ClauseVerdict, Specification, SpecificationResult
from . import valid_formulas

__all__ = [
    "BoundedResult",
    "check_bounded_equivalence",
    "count_bounded_traces",
    "enumerate_boolean_traces",
    "find_counterexample",
    "is_bounded_valid",
    "proposition_names",
    "random_boolean_traces",
    "Operation",
    "OperationSet",
    "Lemma",
    "LemmaCheck",
    "ProofScript",
    "Clause",
    "ClauseVerdict",
    "Specification",
    "SpecificationResult",
    "valid_formulas",
]
