"""The Chapter 4 catalogue of valid formulas (V1 – V16).

"In this section we present a selection of valid formulas.  Our intention
here is simply to illustrate a style of expression and deduction rather than
a more comprehensive list of valid formulas or a complete axiomatization."

Each catalogue entry provides a *schema* (a function building the formula
from its metavariables) plus a canonical propositional *instance* used by the
reproduction experiments: experiment E1 (``benchmarks/bench_valid_formulas.py``)
checks every instance with the bounded small-scope checker and reports the
validity verdicts next to the paper's claims.

Where the archival scan of the report garbles a formula, the docstring of the
schema records the reconstruction; two formulas (V13, the interval
partitioning rule, and V16, the composition simplification) require an
explicit ``*I`` occurrence conjunct for validity under the paper's own
vacuous-satisfaction semantics, which we add and flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..syntax.builder import (
    always,
    begin,
    end,
    event,
    eventually,
    forward,
    backward,
    iff,
    implies,
    interval,
    land,
    lnot,
    lor,
    occurs,
    prop,
    star,
    whole_context,
)
from ..syntax.formulas import Formula
from ..syntax.intervals import IntervalTerm

__all__ = ["ValidFormula", "CATALOGUE", "catalogue", "get"]


@dataclass(frozen=True)
class ValidFormula:
    """One catalogue entry: the paper's name, a description, and the instance."""

    name: str
    description: str
    formula: Formula
    variables: Tuple[str, ...]
    max_length: int = 4
    include_lassos: bool = True
    reconstructed: bool = False

    def __str__(self) -> str:
        flag = " (reconstructed)" if self.reconstructed else ""
        return f"{self.name}{flag}: {self.description}"


# -- schemas -------------------------------------------------------------------


def v1(term: IntervalTerm, alpha: Formula, beta: Formula) -> Formula:
    """V1: ``[I]a /\\ [I]b  ===  [I](a /\\ b)`` — conjunction distributes."""
    return iff(land(interval(term, alpha), interval(term, beta)),
               interval(term, land(alpha, beta)))


def v2(term: IntervalTerm, alpha: Formula, beta: Formula) -> Formula:
    """V2: ``([I]a -> [I]b)  ===  [I](a -> b)`` — implication distributes."""
    return iff(implies(interval(term, alpha), interval(term, beta)),
               interval(term, implies(alpha, beta)))


def v3(term: IntervalTerm, alpha: Formula) -> Formula:
    """V3: ``[I]a === ~*I \\/ [*I]a`` — the fundamental case split.

    The formula is true if either the interval cannot be constructed or
    ``a`` holds for the constructed interval.
    """
    return iff(interval(term, alpha),
               lor(lnot(occurs(term)), interval(star(term), alpha)))


def v4(term: IntervalTerm) -> Formula:
    """V4: ``*I === ~[I] False`` — interval eventuality as an interval formula."""
    return iff(occurs(term), lnot(interval(term, False)))


def v5(alpha: Formula) -> Formula:
    """V5: ``*a === <>(~a /\\ <>a)`` — event eventuality via nested ``<>``."""
    return iff(occurs(event(alpha)), eventually(land(lnot(alpha), eventually(alpha))))


def v6(term: IntervalTerm, alpha: Formula) -> Formula:
    """V6: ``~[I]a === [*I]~a`` — pushing negation into the interval."""
    return iff(lnot(interval(term, alpha)), interval(star(term), lnot(alpha)))


def v7(alpha: Formula) -> Formula:
    """V7: ``a === [=>]a`` — the bare arrow selects the whole outer context."""
    return iff(alpha, interval(whole_context(), alpha))


def v8(term: IntervalTerm, alpha: Formula) -> Formula:
    """V8: ``[]a -> [I =>][]a`` — an outer invariant holds in any tail interval."""
    return implies(always(alpha), interval(forward(term, None), always(alpha)))


def v9(alpha: Formula) -> Formula:
    """V9: ``[a => begin(~a)] []a`` — between becoming true and just before
    becoming false, ``a`` stays true."""
    return interval(forward(event(alpha), begin(event(lnot(alpha)))), always(alpha))


def v10(alpha: Formula, beta: Formula) -> Formula:
    """V10: ``[begin a =>]*b \\/ [begin b =>]*a`` — fundamental event ordering."""
    return lor(
        interval(forward(begin(event(alpha)), None), occurs(event(beta))),
        interval(forward(begin(event(beta)), None), occurs(event(alpha))),
    )


def v11(alpha: Formula, beta: Formula, gamma: Formula) -> Formula:
    """V11: ``[a <= b]g === [=> b][~*a =>]g`` — the backward operator reduced
    to forward operators via a nested interval event (for non-nested terms)."""
    lhs = interval(backward(event(alpha), event(beta)), gamma)
    rhs = interval(
        forward(None, event(beta)),
        interval(forward(event(lnot(occurs(event(alpha)))), None), gamma),
    )
    return iff(lhs, rhs)


def v12(term_i: IntervalTerm, term_j: IntervalTerm) -> Formula:
    """V12: ``[=> I] ~[]<>*J`` — a finite interval cannot contain an unbounded
    number of J intervals (J an event-based term)."""
    return interval(forward(None, term_i), lnot(always(eventually(occurs(term_j)))))


def v13(term: IntervalTerm, p: Formula) -> Formula:
    """V13: ``[=> I][]p /\\ [I =>][]p /\\ *I  ->  []p`` — interval partitioning.

    Reconstruction note: the occurrence conjunct ``*I`` is required for
    validity under the vacuous-satisfaction semantics (both interval formulas
    are vacuously true when ``I`` cannot be found); the paper's prose reads
    the rule only for the case where ``I`` partitions the context.
    """
    return implies(
        land(
            interval(forward(None, term), always(p)),
            interval(forward(term, None), always(p)),
            occurs(term),
        ),
        always(p),
    )


def v14(term: IntervalTerm, p: Formula) -> Formula:
    """V14: ``<>p -> [=> I]<>p \\/ [I =>]<>p`` — the dual of V13."""
    return implies(
        eventually(p),
        lor(
            interval(forward(None, term), eventually(p)),
            interval(forward(term, None), eventually(p)),
        ),
    )


def v15(
    term_i: IntervalTerm, term_j: IntervalTerm, term_k: IntervalTerm, p: Formula
) -> Formula:
    """V15: ``[I=>J][]p /\\ [(I=>J)=>K][]p  ->  [I=>(J=>K)][]p`` — composition."""
    return implies(
        land(
            interval(forward(term_i, term_j), always(p)),
            interval(forward(forward(term_i, term_j), term_k), always(p)),
        ),
        interval(forward(term_i, forward(term_j, term_k)), always(p)),
    )


def v16(term_j: IntervalTerm, term_k: IntervalTerm, alpha: Formula) -> Formula:
    """V16: ``[=>(J=>K)]a /\\ [=> *J]~*K  ->  [=>K]a`` — when the first K also
    follows the first J, ``=>(J=>K)`` simplifies to ``=>K``."""
    return implies(
        land(
            interval(forward(None, forward(term_j, term_k)), alpha),
            interval(forward(None, star(term_j)), lnot(occurs(term_k))),
        ),
        interval(forward(None, term_k), alpha),
    )


# -- canonical instances -------------------------------------------------------


def _instances() -> List[ValidFormula]:
    p, q, r = prop("p"), prop("q"), prop("r")
    a_event = event(prop("p"))
    b_event = event(prop("q"))
    c_event = event(prop("r"))
    entries = [
        ValidFormula(
            "V1", "conjunction distributes over an interval",
            v1(forward(a_event, b_event), prop("r"), eventually(prop("r"))),
            ("p", "q", "r"), max_length=4,
        ),
        ValidFormula(
            "V2", "implication distributes over an interval",
            v2(forward(a_event, b_event), prop("r"), eventually(prop("r"))),
            ("p", "q", "r"), max_length=4,
        ),
        ValidFormula(
            "V3", "fundamental case split on interval construction",
            v3(forward(a_event, b_event), eventually(prop("r"))),
            ("p", "q", "r"), max_length=4,
        ),
        ValidFormula(
            "V4", "interval eventuality as negated vacuous interval formula",
            v4(forward(a_event, b_event)),
            ("p", "q"), max_length=5,
        ),
        ValidFormula(
            "V5", "event eventuality via nested <>",
            v5(prop("p")),
            ("p",), max_length=6,
        ),
        ValidFormula(
            "V6", "pushing negation into the interval",
            v6(forward(a_event, b_event), eventually(prop("r"))),
            ("p", "q", "r"), max_length=4,
        ),
        ValidFormula(
            "V7", "the bare arrow selects the whole outer context",
            v7(land(prop("p"), eventually(prop("q")))),
            ("p", "q"), max_length=5,
        ),
        ValidFormula(
            "V8", "outer invariants promote to tail intervals",
            v8(a_event, prop("q")),
            ("p", "q"), max_length=5,
        ),
        ValidFormula(
            "V9", "an event's property persists until just before it falls",
            v9(prop("p")),
            ("p",), max_length=6,
        ),
        ValidFormula(
            "V10", "fundamental event-ordering case split",
            v10(prop("p"), prop("q")),
            ("p", "q"), max_length=5,
        ),
        ValidFormula(
            "V11", "backward operator reduced to forward operators",
            v11(prop("p"), prop("q"), eventually(prop("r"))),
            ("p", "q", "r"), max_length=4,
        ),
        ValidFormula(
            "V12", "a bounded interval contains finitely many J intervals",
            v12(c_event, a_event),
            ("p", "r"), max_length=5,
        ),
        ValidFormula(
            "V13", "interval partitioning of an invariant",
            v13(a_event, prop("q")),
            ("p", "q"), max_length=5, reconstructed=True,
        ),
        ValidFormula(
            "V14", "interval partitioning of an eventuality (dual of V13)",
            v14(a_event, prop("q")),
            ("p", "q"), max_length=5,
        ),
        ValidFormula(
            "V15", "interval composition for invariants",
            v15(a_event, b_event, c_event, prop("s")),
            ("p", "q", "r", "s"), max_length=3,
        ),
        ValidFormula(
            "V16", "simplification of composed intervals when K follows J",
            v16(b_event, c_event, eventually(prop("p"))),
            ("p", "q", "r"), max_length=4, reconstructed=True,
        ),
    ]
    return entries


CATALOGUE: Dict[str, ValidFormula] = {entry.name: entry for entry in _instances()}


def catalogue() -> List[ValidFormula]:
    """All catalogue entries in the paper's order."""
    return [CATALOGUE[name] for name in sorted(CATALOGUE, key=lambda n: int(n[1:]))]


def get(name: str) -> ValidFormula:
    """Look up a catalogue entry by name (``"V1"`` ... ``"V16"``)."""
    return CATALOGUE[name]
