"""Small-scope (bounded) validity checking of interval-logic formulas.

The paper decides interval logic through an (unpublished) reduction to
linear-time temporal logic and the Appendix B/C procedures.  For the
reproduction we complement those procedures with an exhaustive *small-scope*
checker: it enumerates every boolean computation over a formula's atomic
propositions up to a bounded number of states — optionally including every
lasso (loop-back) shape, which captures infinite periodic behaviours — and
evaluates the formula with the exact Chapter 3 semantics on each.

The checker is:

* **sound for refutation** — any counterexample it returns is a genuine
  counterexample under the paper's semantics;
* **exhaustive within the bound** — "bounded-valid" means no computation of
  at most ``max_length`` states (with the chosen lasso shapes) falsifies the
  formula, which is the standard small-scope evidence used by the test-suite
  and by the Chapter 4 / Chapter 8 experiments.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import DecisionProcedureError
from ..semantics.evaluator import Evaluator
from ..semantics.state import State
from ..semantics.trace import Trace
from ..syntax.formulas import Formula, Iff
from ..syntax.terms import Prop

__all__ = [
    "BoundedResult",
    "proposition_names",
    "enumerate_boolean_traces",
    "random_boolean_traces",
    "find_counterexample",
    "is_bounded_valid",
    "check_bounded_equivalence",
    "count_bounded_traces",
]


@dataclass(frozen=True)
class BoundedResult:
    """Outcome of a bounded validity check."""

    valid: bool
    counterexample: Optional[Trace]
    traces_checked: int
    max_length: int
    variables: Tuple[str, ...]

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        verdict = "bounded-valid" if self.valid else "REFUTED"
        return (
            f"{verdict} over {self.traces_checked} traces "
            f"(vars={list(self.variables)}, max_length={self.max_length})"
        )


def proposition_names(formula: Formula) -> Tuple[str, ...]:
    """The boolean state variables a formula depends on.

    Raises :class:`DecisionProcedureError` when the formula contains
    non-propositional atoms (comparisons, operation predicates), since the
    boolean small-scope enumeration cannot cover their value domains.
    """
    names: List[str] = []
    for predicate in sorted(formula.atoms(), key=str):
        if isinstance(predicate, Prop):
            if predicate.name not in names:
                names.append(predicate.name)
        elif predicate.state_vars() or predicate.free_logical_vars():
            raise DecisionProcedureError(
                "bounded checking handles propositional formulas only; "
                f"non-propositional atom: {predicate}"
            )
    return tuple(names)


def _trace_from_rows(
    variables: Sequence[str], rows: Sequence[Sequence[bool]], loop_start: Optional[int]
) -> Trace:
    states = [
        State({name: bool(value) for name, value in zip(variables, row)})
        for row in rows
    ]
    return Trace(states, loop_start=loop_start)


def enumerate_boolean_traces(
    variables: Sequence[str],
    max_length: int,
    include_lassos: bool = True,
    min_length: int = 1,
) -> Iterator[Trace]:
    """Every boolean trace over ``variables`` with ``min_length..max_length`` states.

    With ``include_lassos`` every loop-back position is generated for each
    state sequence (the stutter-extension shape, ``loop_start = n``, is always
    included); without it only the paper's finite-computation convention is
    used.
    """
    if max_length < 1:
        raise DecisionProcedureError("max_length must be at least 1")
    variables = list(variables)
    assignments = list(itertools.product((False, True), repeat=len(variables)))
    for length in range(max(1, min_length), max_length + 1):
        for rows in itertools.product(assignments, repeat=length):
            if include_lassos:
                for loop_start in range(1, length + 1):
                    yield _trace_from_rows(variables, rows, loop_start)
            else:
                yield _trace_from_rows(variables, rows, None)


def count_bounded_traces(
    num_variables: int, max_length: int, include_lassos: bool = True
) -> int:
    """How many traces :func:`enumerate_boolean_traces` would generate."""
    total = 0
    per_state = 2 ** num_variables
    for length in range(1, max_length + 1):
        sequences = per_state ** length
        total += sequences * (length if include_lassos else 1)
    return total


def random_boolean_traces(
    variables: Sequence[str],
    count: int,
    max_length: int,
    include_lassos: bool = True,
    seed: Optional[int] = None,
) -> Iterator[Trace]:
    """A random sample of boolean traces (used when exhaustion is too costly)."""
    rng = random.Random(seed)
    variables = list(variables)
    for _ in range(count):
        length = rng.randint(1, max_length)
        rows = [
            [rng.random() < 0.5 for _ in variables]
            for _ in range(length)
        ]
        loop_start = rng.randint(1, length) if include_lassos else None
        yield _trace_from_rows(variables, rows, loop_start)


def find_counterexample(
    formula: Formula,
    variables: Optional[Sequence[str]] = None,
    max_length: int = 4,
    include_lassos: bool = True,
) -> Tuple[Optional[Trace], int]:
    """Search for a trace falsifying ``formula``; return it and the count tried."""
    if variables is None:
        variables = proposition_names(formula)
    if not variables:
        variables = ("p",)
    checked = 0
    for trace in enumerate_boolean_traces(variables, max_length, include_lassos):
        checked += 1
        if not Evaluator(trace).satisfies(formula):
            return trace, checked
    return None, checked


def is_bounded_valid(
    formula: Formula,
    variables: Optional[Sequence[str]] = None,
    max_length: int = 4,
    include_lassos: bool = True,
) -> BoundedResult:
    """Check ``formula`` on every boolean trace within the bound."""
    if variables is None:
        variables = proposition_names(formula)
    if not variables:
        variables = ("p",)
    counterexample, checked = find_counterexample(
        formula, variables, max_length, include_lassos
    )
    return BoundedResult(
        valid=counterexample is None,
        counterexample=counterexample,
        traces_checked=checked,
        max_length=max_length,
        variables=tuple(variables),
    )


def check_bounded_equivalence(
    left: Formula,
    right: Formula,
    variables: Optional[Sequence[str]] = None,
    max_length: int = 4,
    include_lassos: bool = True,
) -> BoundedResult:
    """Check ``left ≡ right`` on every boolean trace within the bound."""
    if variables is None:
        names = set(proposition_names(left)) | set(proposition_names(right))
        variables = tuple(sorted(names))
    return is_bounded_valid(Iff(left, right), variables, max_length, include_lassos)
