"""Semantic proof support for the Chapter 8 mutual-exclusion argument.

The paper proves mutual exclusion from the Figure 8-1 specification through
lemmas L1–L5 (Figure 8-2), noting that with mechanized decision-procedure
support "the only user input necessary, in principle, is instantiation of the
free variable m ... and of I in step L2".

This module provides the light-weight proof bookkeeping the reproduction
needs: lemmas are (hypotheses ⊢ conclusion) records, and every proof step is
*checked semantically* — on exhaustive bounded boolean traces and/or on
simulator-generated traces — rather than derived syntactically.  This matches
the reproduction's overall strategy (the Chapter 3 model is the normative
artifact) while keeping the structure of the paper's argument visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import SpecificationError
from ..semantics.evaluator import Evaluator
from ..semantics.trace import Trace
from ..syntax.builder import implies, land
from ..syntax.formulas import Formula
from .bounded_checker import BoundedResult, is_bounded_valid

__all__ = ["Lemma", "LemmaCheck", "ProofScript"]


@dataclass(frozen=True)
class Lemma:
    """One step of a proof: hypotheses entail the conclusion.

    ``hypotheses`` may be empty, in which case the lemma claims validity of
    the conclusion outright.
    """

    name: str
    conclusion: Formula
    hypotheses: Tuple[Formula, ...] = ()
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("lemma name must be non-empty")
        object.__setattr__(self, "hypotheses", tuple(self.hypotheses))

    def as_implication(self) -> Formula:
        """``(H1 /\\ ... /\\ Hn) -> conclusion`` (or just the conclusion)."""
        if not self.hypotheses:
            return self.conclusion
        return implies(land(*self.hypotheses), self.conclusion)


@dataclass(frozen=True)
class LemmaCheck:
    """The result of checking one lemma."""

    lemma: Lemma
    method: str  # "bounded" or "traces"
    holds: bool
    detail: str = ""
    counterexample: Optional[Trace] = None

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"{status} {self.lemma.name} [{self.method}] {self.detail}"


class ProofScript:
    """An ordered collection of lemmas culminating in a theorem.

    The script does not track logical dependencies between steps — the
    semantic checks are independent — but it preserves the paper's
    presentation order and offers whole-script checking helpers.
    """

    def __init__(self, name: str, lemmas: Optional[Sequence[Lemma]] = None) -> None:
        if not name:
            raise SpecificationError("proof script name must be non-empty")
        self.name = name
        self._lemmas: List[Lemma] = list(lemmas or [])

    def add(self, lemma: Lemma) -> "ProofScript":
        self._lemmas.append(lemma)
        return self

    @property
    def lemmas(self) -> Tuple[Lemma, ...]:
        return tuple(self._lemmas)

    def lemma(self, name: str) -> Lemma:
        for lemma in self._lemmas:
            if lemma.name == name:
                return lemma
        raise SpecificationError(f"no lemma named {name!r} in proof {self.name!r}")

    # -- checking ------------------------------------------------------------------

    def check_bounded(
        self,
        variables: Optional[Sequence[str]] = None,
        max_length: int = 4,
        include_lassos: bool = True,
    ) -> List[LemmaCheck]:
        """Check every lemma's implication with the small-scope checker."""
        results: List[LemmaCheck] = []
        for lemma in self._lemmas:
            outcome: BoundedResult = is_bounded_valid(
                lemma.as_implication(),
                variables=variables,
                max_length=max_length,
                include_lassos=include_lassos,
            )
            results.append(
                LemmaCheck(
                    lemma=lemma,
                    method="bounded",
                    holds=outcome.valid,
                    detail=str(outcome),
                    counterexample=outcome.counterexample,
                )
            )
        return results

    def check_on_traces(self, traces: Iterable[Trace]) -> List[LemmaCheck]:
        """Check every lemma on the supplied traces.

        A lemma fails if some trace satisfies all hypotheses but not the
        conclusion.  Typical use: traces produced by the Chapter 8 simulator.
        """
        trace_list = list(traces)
        results: List[LemmaCheck] = []
        for lemma in self._lemmas:
            counterexample: Optional[Trace] = None
            for trace in trace_list:
                evaluator = Evaluator(trace)
                if all(evaluator.satisfies(h) for h in lemma.hypotheses):
                    if not evaluator.satisfies(lemma.conclusion):
                        counterexample = trace
                        break
            results.append(
                LemmaCheck(
                    lemma=lemma,
                    method="traces",
                    holds=counterexample is None,
                    detail=f"{len(trace_list)} traces",
                    counterexample=counterexample,
                )
            )
        return results

    def summary(self, checks: Sequence[LemmaCheck]) -> str:
        lines = [f"Proof {self.name!r}:"]
        for check in checks:
            lines.append("  " + str(check))
        verdict = "ALL STEPS HOLD" if all(c.holds for c in checks) else "SOME STEPS FAIL"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)
