"""Interval-logic specifications: Init clauses plus Axioms (Chapter 3).

"Interval logic specifications are divided into two parts: Init and Axioms.
An Init portion states properties to be satisfied at (from) the beginning of
a computation, assuming a distinguished starting state.  Formally, using
distinguished (uninterpreted) state predicate ``start``, each interval
formula ``alpha`` within the Init clause is interpreted as an axiom of the
form ``start ⊃ alpha``."

A :class:`Specification` bundles named Init clauses, named Axioms, and the
abstract operations the formulas mention.  Checking a specification against
a trace evaluates every clause on the whole computation ``<1, ∞>`` (where
``start`` holds in the first state) and reports a per-clause verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SpecificationError
from ..semantics.evaluator import Evaluator
from ..semantics.trace import Trace
from ..syntax.builder import implies, start
from ..syntax.formulas import Formula
from .operations import Operation, OperationSet

__all__ = ["Clause", "ClauseVerdict", "SpecificationResult", "Specification"]


@dataclass(frozen=True)
class Clause:
    """One named clause of a specification."""

    name: str
    formula: Formula
    kind: str = "axiom"  # "init" or "axiom"
    comment: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("init", "axiom"):
            raise SpecificationError(f"clause kind must be init/axiom, got {self.kind!r}")

    def interpreted_formula(self) -> Formula:
        """The formula actually evaluated: Init clauses become ``start ⊃ alpha``."""
        if self.kind == "init":
            return implies(start(), self.formula)
        return self.formula


@dataclass(frozen=True)
class ClauseVerdict:
    """The outcome of evaluating one clause on one trace."""

    clause: Clause
    holds: bool
    error: Optional[str] = None

    def __str__(self) -> str:
        status = "PASS" if self.holds else ("ERROR" if self.error else "FAIL")
        return f"{status:5s} {self.clause.kind:5s} {self.clause.name}"


@dataclass
class SpecificationResult:
    """The outcome of checking a whole specification on one trace."""

    specification: "Specification"
    verdicts: List[ClauseVerdict]

    @property
    def holds(self) -> bool:
        return all(v.holds for v in self.verdicts)

    @property
    def failures(self) -> List[ClauseVerdict]:
        return [v for v in self.verdicts if not v.holds]

    def verdict(self, clause_name: str) -> ClauseVerdict:
        for v in self.verdicts:
            if v.clause.name == clause_name:
                return v
        raise SpecificationError(f"no clause named {clause_name!r}")

    def summary(self) -> str:
        lines = [f"Specification {self.specification.name!r}: "
                 f"{'SATISFIED' if self.holds else 'VIOLATED'}"]
        for v in self.verdicts:
            lines.append("  " + str(v))
        return "\n".join(lines)


class Specification:
    """A named interval-logic specification (Init clauses + Axioms).

    Parameters
    ----------
    name:
        A human-readable name ("Unreliable queue", "AB protocol sender", ...).
    operations:
        The abstract operations the specification's formulas refer to.
    include_lifecycle_axioms:
        When true, the Chapter 2.2 lifecycle axioms of every operation are
        appended automatically as axioms named ``lifecycle/<op>/<k>``.
    """

    def __init__(
        self,
        name: str,
        operations: Optional[Sequence[Operation]] = None,
        include_lifecycle_axioms: bool = False,
    ) -> None:
        if not name:
            raise SpecificationError("specification name must be non-empty")
        self.name = name
        self.operations = OperationSet(operations or [])
        self._clauses: List[Clause] = []
        self._names: Dict[str, int] = {}
        self._digest: Optional[str] = None
        if include_lifecycle_axioms:
            for op in self.operations:
                for index, axiom in enumerate(op.axioms(), start=1):
                    self.add_axiom(f"lifecycle/{op.name}/{index}", axiom)

    # -- construction -------------------------------------------------------------

    def _add(self, clause: Clause) -> None:
        if clause.name in self._names:
            raise SpecificationError(
                f"duplicate clause name {clause.name!r} in specification {self.name!r}"
            )
        self._names[clause.name] = len(self._clauses)
        self._clauses.append(clause)
        self._digest = None  # the cached content digest is now stale

    def add_init(self, name: str, formula: Formula, comment: str = "") -> "Specification":
        """Add an Init clause (interpreted as ``start ⊃ formula``)."""
        self._add(Clause(name, formula, "init", comment))
        return self

    def add_axiom(self, name: str, formula: Formula, comment: str = "") -> "Specification":
        """Add an Axiom clause."""
        self._add(Clause(name, formula, "axiom", comment))
        return self

    # -- introspection --------------------------------------------------------------

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return tuple(self._clauses)

    @property
    def init_clauses(self) -> Tuple[Clause, ...]:
        return tuple(c for c in self._clauses if c.kind == "init")

    @property
    def axiom_clauses(self) -> Tuple[Clause, ...]:
        return tuple(c for c in self._clauses if c.kind == "axiom")

    def clause(self, name: str) -> Clause:
        try:
            return self._clauses[self._names[name]]
        except KeyError as exc:
            raise SpecificationError(f"no clause named {name!r}") from exc

    def formulas(self) -> List[Formula]:
        """The interpreted formulas of every clause, in declaration order."""
        return [c.interpreted_formula() for c in self._clauses]

    @property
    def digest(self) -> str:
        """Content digest of the interpreted clauses (cached until a clause
        is added).

        Two specifications with the same clause names and (structurally)
        the same interpreted formulas share a digest.  The hashing is the
        same :func:`~repro.compile.specplan.spec_digest` the compile layer
        applies to multi-root plans (minus the per-request domain shape the
        plan cache appends), so external tooling can use it as a stable
        spec identity that lines up with compiled-plan digests.
        """
        if self._digest is None:
            from ..compile.specplan import spec_digest

            self._digest = spec_digest(
                [(c.name, c.interpreted_formula()) for c in self._clauses]
            )
        return self._digest

    def __len__(self) -> int:
        return len(self._clauses)

    def __str__(self) -> str:
        return (
            f"Specification({self.name!r}, {len(self.init_clauses)} init, "
            f"{len(self.axiom_clauses)} axioms)"
        )

    # -- checking --------------------------------------------------------------------

    def check(
        self,
        trace: Trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        stop_at_first_failure: bool = False,
    ) -> SpecificationResult:
        """Evaluate every clause on ``trace`` and collect verdicts.

        ``domain`` optionally fixes the quantification domain of ``Forall``
        variables; by default they range over the values observed in the
        trace.
        """
        evaluator = Evaluator(trace, domain)
        verdicts: List[ClauseVerdict] = []
        for clause in self._clauses:
            error: Optional[str] = None
            try:
                holds = evaluator.satisfies(clause.interpreted_formula())
            except Exception as exc:  # surfaced in the verdict, not swallowed
                holds = False
                error = f"{type(exc).__name__}: {exc}"
            verdicts.append(ClauseVerdict(clause, holds, error))
            if stop_at_first_failure and not holds:
                break
        return SpecificationResult(self, verdicts)

    def check_many(
        self,
        traces: Sequence[Trace],
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> List[SpecificationResult]:
        """Check every trace; convenience for conformance campaigns."""
        return [self.check(trace, domain) for trace in traces]
