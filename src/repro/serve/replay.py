"""Differential replay: the regression corpus through the wire protocol.

The serve path is a fourth way to evaluate a formula on a computation —
parse → plan-cache → incremental multi-root plan fed by batched ``append``
frames — so it enrolls in the same differential discipline as the
engines: every trace-backed corpus case is replayed *through the protocol
codec* (each frame encoded to its wire line and decoded back, exactly
what a socket would carry) into a :class:`~repro.serve.streams.
StreamRegistry`, and the stream's final verdicts must match a one-shot
check of the same clauses on the same trace through the session's
compiled path — plus the corpus's own pinned expectations.

Two case populations ride:

* ``kind="trace"`` — one clause per case, including every fault-injected
  run whose ``False`` verdict the corpus pins: a serve-side regression
  that stops *detecting* a violation fails replay as loudly as one that
  breaks a passing clause.
* ``kind="spec"`` — all clauses of a specification as one stream, so the
  multi-root plan behind ``append`` is exercised with genuine sharing.

Lasso (infinite, eventually-periodic) traces are skipped: the monitor
convention is finite computations under stutter extension, and a loop is
not expressible as a prefix of appends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..api.session import Session
from ..gen.corpus import DEFAULT_CORPUS_DIR, corpus_files, load_corpus
from .protocol import decode_frame, encode_frame, trace_to_rows
from .streams import StreamRegistry

__all__ = ["ServeDisagreement", "ServeReplayReport", "replay_case", "replay_corpus"]


@dataclass
class ServeDisagreement:
    """One case where the serve path and the one-shot check differ."""

    case_id: str
    clause: str
    served: Optional[bool]
    expected: Optional[bool]
    source: str  # "one-shot" or "pinned"
    detail: str = ""

    def describe(self) -> str:
        return (
            f"{self.case_id} clause {self.clause!r}: serve={self.served} "
            f"vs {self.source}={self.expected}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class ServeReplayReport:
    """What a corpus replay through the protocol established."""

    cases: int = 0
    streams: int = 0
    states: int = 0
    clauses: int = 0
    skipped_kind: int = 0
    skipped_lasso: int = 0
    alerts: int = 0
    disagreements: List[ServeDisagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = (
            "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENT(S)"
        )
        return (
            f"{status}: {self.streams} streams replayed "
            f"({self.clauses} clauses, {self.states} states, "
            f"{self.alerts} alerts) from {self.cases} cases; "
            f"skipped {self.skipped_kind} non-trace, "
            f"{self.skipped_lasso} lasso"
        )


def _roundtrip(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Through the codec both ways — replay must exercise the wire format."""
    return decode_frame(encode_frame(frame).rstrip(b"\n"))


def _drive(
    registry: StreamRegistry, frame: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """One request frame through codec → registry → codec."""
    responses = registry.handle(_roundtrip(frame))
    return [_roundtrip(response) for response in responses]


def replay_case(
    case,
    registry: StreamRegistry,
    session: Session,
    stream: str,
    batch: int = 16,
) -> List[ServeDisagreement]:
    """Replay one corpus case as one stream; returns its disagreements.

    The caller has already built (and vetted) the trace; this drives the
    frames and compares final verdicts against (a) a fresh one-shot
    compiled check per clause and (b) the case's pinned ``compiled``
    expectations where present.
    """
    trace = case.built_trace()
    clause_texts = (
        {f"clause-{i}": text for i, text in enumerate(case.clauses)}
        if case.kind == "spec"
        else {"formula": case.formula}
    )
    open_frame: Dict[str, Any] = {
        "op": "open",
        "stream": stream,
        "formulas": clause_texts,
    }
    if case.domain is not None:
        open_frame["domain"] = case.domain
    (opened,) = _drive(registry, open_frame)
    if "error" in opened:
        return [
            ServeDisagreement(
                case_id=case.id,
                clause="*",
                served=None,
                expected=None,
                source="one-shot",
                detail=f"open failed: {opened}",
            )
        ]

    rows = trace_to_rows(trace)
    final: Optional[Dict[str, Any]] = None
    for start in range(0, len(rows), batch):
        responses = _drive(
            registry,
            {
                "op": "append",
                "stream": stream,
                "states": rows[start : start + batch],
            },
        )
        final = responses[-1]
        if "error" in final:
            return [
                ServeDisagreement(
                    case_id=case.id,
                    clause="*",
                    served=None,
                    expected=None,
                    source="one-shot",
                    detail=f"append failed: {final}",
                )
            ]
    (closed,) = _drive(registry, {"op": "close", "stream": stream})
    served_verdicts: Dict[str, Optional[bool]] = closed["verdicts"]

    disagreements: List[ServeDisagreement] = []
    expect = case.expect or {}
    for index, (clause, text) in enumerate(clause_texts.items()):
        served = served_verdicts.get(clause)
        one_shot = session.check(
            text,
            trace=trace,
            domain=case.domain,
            mode="compiled",
            capture_errors=True,
        )
        if served != one_shot.verdict:
            disagreements.append(
                ServeDisagreement(
                    case_id=case.id,
                    clause=clause,
                    served=served,
                    expected=one_shot.verdict,
                    source="one-shot",
                    detail=one_shot.error or "",
                )
            )
        pinned_key = f"compiled[{index}]" if case.kind == "spec" else "compiled"
        if pinned_key in expect and served != expect[pinned_key]:
            disagreements.append(
                ServeDisagreement(
                    case_id=case.id,
                    clause=clause,
                    served=served,
                    expected=expect[pinned_key],
                    source="pinned",
                )
            )
    return disagreements


def replay_corpus(
    paths: Optional[Sequence[str]] = None,
    session: Optional[Session] = None,
    registry: Optional[StreamRegistry] = None,
    batch: int = 16,
) -> ServeReplayReport:
    """Replay every trace-backed corpus case through the serve protocol.

    ``paths`` are corpus files or directories (the built-in corpus by
    default).  One registry (one session, one warm plan cache) serves the
    whole run — exactly the serving shape — while the one-shot comparisons
    run on a separate session so nothing about serve state can leak into
    the expected side.
    """
    session = session if session is not None else Session()
    if registry is None:
        registry = StreamRegistry(session=Session())
    report = ServeReplayReport()
    cases = []
    for path in corpus_files(list(paths) if paths else [DEFAULT_CORPUS_DIR]):
        cases.extend(load_corpus(path))
    report.cases = len(cases)
    for index, case in enumerate(cases):
        if case.kind not in ("trace", "spec") or case.trace is None:
            report.skipped_kind += 1
            continue
        trace = case.built_trace()
        if not trace.is_stutter_extended:
            report.skipped_lasso += 1
            continue
        stream = f"replay-{index:05d}"
        disagreements = replay_case(
            case, registry, session, stream=stream, batch=batch
        )
        report.streams += 1
        report.states += trace.length
        report.clauses += len(case.clauses) if case.kind == "spec" else 1
        report.disagreements.extend(disagreements)
    report.alerts = registry.alerts_emitted
    return report
