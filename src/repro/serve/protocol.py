"""The newline-framed JSONL wire protocol of the monitoring service.

Every frame is one JSON object on one ``\\n``-terminated line, UTF-8.
Requests carry an ``op`` discriminator; responses carry exactly one of
``ok`` (acknowledgement), ``event`` (an unsolicited per-stream alert
emitted *before* the acknowledgement of the frame that caused it) or
``error``.  Frames are small and self-describing so any language's JSON +
line reader is a complete client.

Request frames::

    {"op": "open", "stream": "dev-7", "spec": "mutex"}
    {"op": "open", "stream": "dev-8",
     "formulas": {"safety": "[] (p -> <> q)"}, "domain": {...}}
    {"op": "append", "stream": "dev-7", "states": [ROW, ...], "ack": true}
    {"op": "snapshot", "stream": "dev-7"}      # omit "stream": service-wide
    {"op": "close", "stream": "dev-7"}
    {"op": "ping"}
    {"op": "metrics"}                          # repro.obs registry snapshot

A state ROW is ``{"values": {name: value, ...}}`` plus an optional
``"ops"`` mapping of operation records ``{name: [phase, args, results]}``
— exactly the shape :func:`state_to_row`/:func:`row_to_state` round-trip.
``append`` frames are **batched**: all rows are absorbed as one unit and
verdicts re-evaluate once at the batch boundary (send one row per frame
for per-state alert granularity).  ``"ack": false`` suppresses the
``appended`` acknowledgement (alerts still fire) for fire-and-forget
ingestion.

Response frames::

    {"ok": "opened", "stream": ..., "clauses": [...], "plan_from_cache": ...}
    {"event": "alert", "stream": ..., "clause": ..., "verdict": ...,
     "at": prefix_length, "error": ...?}
    {"ok": "appended", "stream": ..., "count": n, "length": L,
     "version": V, "verdicts": {...}}
    {"ok": "snapshot", ...}                    # version-stamped, see streams
    {"ok": "closed", "stream": ..., "length": L, "verdicts": {...}}
    {"ok": "pong"}
    {"ok": "metrics", "metrics": SNAPSHOT}     # + "shards": n behind a pool
    {"error": CODE, "message": ..., "stream": ...?}

``metrics`` answers the serving process's :mod:`repro.obs` registry
snapshot (merged across every worker behind a :class:`ShardPool`) —
JSON-safe, mergeable with :func:`repro.obs.merge_snapshots`, renderable
with :func:`repro.obs.to_prometheus_text`.

Malformed input never kills a connection: undecodable bytes, oversized
lines, non-object JSON, unknown ops and missing/ill-typed fields each
produce an explicit ``error`` frame (codes in :data:`ERROR_CODES`) and the
session continues with the next line.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..semantics.state import OperationRecord, State

__all__ = [
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "state_to_row",
    "row_to_state",
    "rows_to_states",
    "trace_to_rows",
    "MAX_LINE_BYTES",
    "REQUEST_OPS",
    "ERROR_CODES",
]


#: Guard against unframed garbage (or a binary protocol pointed at the
#: service): a line longer than this is rejected before being buffered.
MAX_LINE_BYTES = 4 * 1024 * 1024

REQUEST_OPS = ("open", "append", "snapshot", "close", "ping", "metrics")

ERROR_CODES = (
    "bad-json",        # line is not valid JSON
    "bad-frame",       # JSON but not an object, or ill-typed fields
    "unknown-op",      # "op" not one of REQUEST_OPS
    "missing-field",   # a required field is absent
    "line-too-long",   # framing guard tripped
    "unknown-stream",  # append/snapshot/close on a stream never opened
    "duplicate-stream",  # open on a name already serving
    "unknown-spec",    # open names a spec outside the registry
    "bad-formula",     # open carries unparseable concrete syntax
    "bad-state",       # append carries a row that does not build a State
    "internal",        # unexpected server-side failure, stream unharmed
)


class ProtocolError(Exception):
    """A wire-level failure that maps onto one ``error`` response frame."""

    def __init__(self, code: str, message: str, stream: Optional[str] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code: {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.stream = stream

    def to_frame(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"error": self.code, "message": self.message}
        if self.stream is not None:
            frame["stream"] = self.stream
        return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame → one newline-terminated JSON line."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_frame(line: Any) -> Dict[str, Any]:
    """One line (bytes or str) → a frame dict, or :class:`ProtocolError`."""
    if isinstance(line, (bytes, bytearray)):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-json", f"undecodable bytes: {exc}") from None
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-json", f"not a JSON frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad-frame", f"a frame is a JSON object, got {type(frame).__name__}"
        )
    return frame


def _require(frame: Dict[str, Any], field: str, types: tuple, op: str) -> Any:
    try:
        value = frame[field]
    except KeyError:
        raise ProtocolError(
            "missing-field",
            f"{op!r} frame requires the field {field!r}",
            stream=frame.get("stream") if isinstance(frame.get("stream"), str) else None,
        ) from None
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise ProtocolError(
            "bad-frame",
            f"{op!r} frame field {field!r} must be {names}, "
            f"got {type(value).__name__}",
            stream=frame.get("stream") if isinstance(frame.get("stream"), str) else None,
        )
    return value


def validate_request(frame: Dict[str, Any]) -> str:
    """Check a request frame's shape; returns its ``op``.

    Field *presence and JSON types* are enforced here so registries and
    workers downstream can index frames without defensive code; semantic
    errors (unknown streams, unparseable formulas) surface from them.
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-frame", "request frames require a string 'op'")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}"
        )
    if op in ("ping", "metrics"):
        return op
    if op == "snapshot":
        if "stream" in frame:
            _require(frame, "stream", (str,), op)
        return op
    stream = _require(frame, "stream", (str,), op)
    if op == "open":
        has_spec = "spec" in frame
        has_formulas = "formulas" in frame
        if has_spec == has_formulas:
            raise ProtocolError(
                "bad-frame",
                "'open' takes exactly one of 'spec' (a registered specification "
                "name) or 'formulas' (clause name -> concrete syntax)",
                stream=stream,
            )
        if has_spec:
            _require(frame, "spec", (str,), op)
        else:
            formulas = _require(frame, "formulas", (dict,), op)
            if not formulas:
                raise ProtocolError(
                    "bad-frame", "'formulas' must be non-empty", stream=stream
                )
            for name, text in formulas.items():
                if not isinstance(text, str):
                    raise ProtocolError(
                        "bad-frame",
                        f"formula {name!r} must be concrete syntax (a string)",
                        stream=stream,
                    )
        if "domain" in frame and not isinstance(frame["domain"], dict):
            raise ProtocolError(
                "bad-frame", "'domain' must be an object", stream=stream
            )
    elif op == "append":
        states = _require(frame, "states", (list,), op)
        if not states:
            raise ProtocolError(
                "bad-frame", "'states' must be a non-empty list", stream=stream
            )
        if "ack" in frame and not isinstance(frame["ack"], bool):
            raise ProtocolError("bad-frame", "'ack' must be a boolean", stream=stream)
    return op


class FrameDecoder:
    """Incremental newline framing over an arbitrary byte stream.

    ``feed`` accepts whatever chunk the transport produced — half a line, a
    hundred lines, a line split mid-UTF-8-sequence — buffers the partial
    tail and returns the *complete* raw lines.  Decoding those lines (and
    answering per-line errors) is the caller's business, so one bad line
    never poisons its neighbours in the same chunk.

    Oversize-line poisoning is *counted*: :attr:`poisoned_lines` is the
    number of lines rejected by the framing guard and :attr:`resyncs` the
    number of successful re-synchronizations at a later newline.  The
    service folds both into ``service_snapshot()["framing"]`` and the
    ``serve_framing_*`` metrics series, so garbage on the wire is visible
    to operators instead of silently discarded.
    """

    __slots__ = ("_buffer", "_max_line", "_poisoned", "poisoned_lines", "resyncs")

    def __init__(self, max_line: int = MAX_LINE_BYTES) -> None:
        self._buffer = bytearray()
        self._max_line = max_line
        self._poisoned = False
        #: Lines rejected for exceeding ``max_line`` before their newline.
        self.poisoned_lines = 0
        #: Recoveries: the decoder found the next newline and resumed.
        self.resyncs = 0

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for their newline."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb a chunk; returns every newly completed line (sans ``\\n``)."""
        if self._poisoned:
            # After an oversized line, resynchronize at the next newline.
            cut = data.find(b"\n")
            if cut < 0:
                return []
            data = data[cut + 1:]
            self._poisoned = False
            self.resyncs += 1
            self._buffer.clear()
        self._buffer.extend(data)
        if b"\n" not in self._buffer:
            if len(self._buffer) > self._max_line:
                self._poisoned = True
                self.poisoned_lines += 1
                self._buffer.clear()
                raise ProtocolError(
                    "line-too-long",
                    f"frame exceeds {self._max_line} bytes before its newline",
                )
            return []
        *complete, tail = self._buffer.split(b"\n")
        self._buffer = bytearray(tail)
        lines = [line.rstrip(b"\r") for line in complete if line.strip()]
        if len(self._buffer) > self._max_line:
            self._poisoned = True
            self.poisoned_lines += 1
            self._buffer.clear()
            raise ProtocolError(
                "line-too-long",
                f"frame exceeds {self._max_line} bytes before its newline",
            )
        for line in lines:
            if len(line) > self._max_line:
                self.poisoned_lines += 1
                raise ProtocolError(
                    "line-too-long", f"frame exceeds {self._max_line} bytes"
                )
        return lines


# -- state rows -------------------------------------------------------------


def state_to_row(state: State) -> Dict[str, Any]:
    """A JSON-safe row for one :class:`State` (``__start__`` is framing,
    re-derived by the receiving monitor, so it never travels)."""
    row: Dict[str, Any] = {
        "values": {
            name: value
            for name, value in state.values_map.items()
            if name != "__start__"
        }
    }
    if state.operations:
        row["ops"] = {
            name: [record.phase, list(record.args), list(record.results)]
            for name, record in state.operations.items()
        }
    return row


def row_to_state(row: Any, stream: Optional[str] = None) -> State:
    """One wire row → a :class:`State`; :class:`ProtocolError` on bad shape."""
    if not isinstance(row, dict):
        raise ProtocolError(
            "bad-state", f"a state row is an object, got {type(row).__name__}",
            stream=stream,
        )
    values = row.get("values")
    if not isinstance(values, dict):
        raise ProtocolError(
            "bad-state", "a state row requires an object field 'values'",
            stream=stream,
        )
    operations = None
    if "ops" in row:
        raw_ops = row["ops"]
        if not isinstance(raw_ops, dict):
            raise ProtocolError(
                "bad-state", "'ops' must map operation names to records",
                stream=stream,
            )
        operations = {}
        for name, record in raw_ops.items():
            if (
                not isinstance(record, (list, tuple))
                or len(record) != 3
                or not isinstance(record[0], str)
                or not isinstance(record[1], list)
                or not isinstance(record[2], list)
            ):
                raise ProtocolError(
                    "bad-state",
                    f"operation {name!r} record must be [phase, args, results]",
                    stream=stream,
                )
            try:
                operations[name] = OperationRecord(
                    record[0], tuple(record[1]), tuple(record[2])
                )
            except Exception as exc:
                raise ProtocolError(
                    "bad-state", f"operation {name!r}: {exc}", stream=stream
                ) from None
    try:
        return State(values, operations)
    except Exception as exc:
        raise ProtocolError("bad-state", str(exc), stream=stream) from None


def rows_to_states(rows: Iterable[Any], stream: Optional[str] = None) -> List[State]:
    return [row_to_state(row, stream) for row in rows]


def trace_to_rows(trace) -> List[Dict[str, Any]]:
    """Every state of a trace as wire rows (load generators, replay)."""
    return [state_to_row(state) for state in trace.states()]
