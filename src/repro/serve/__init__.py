"""``repro.serve`` — monitoring as a long-lived service.

The paper's checking problem, turned inside out: instead of one formula
evaluated on one finished computation, a *service* holds thousands of
named streams, each an incremental multi-root plan
(:class:`~repro.checking.monitor.Monitor`) absorbing appended states as
the monitored systems produce them.  The pieces:

- :mod:`~repro.serve.protocol` — the newline-framed JSONL wire format
  (``open`` / ``append`` / ``snapshot`` / ``close``, batched appends,
  explicit error frames, incremental framing);
- :mod:`~repro.serve.streams` — the per-worker
  :class:`~repro.serve.streams.StreamRegistry`: monitors, MVCC-style
  published snapshots, verdict-change alerts;
- :mod:`~repro.serve.shard` / :mod:`~repro.serve.worker` — consistent-hash
  sharding over worker processes with a shared on-disk plan cache;
- :mod:`~repro.serve.service` — the asyncio socket front end;
- :mod:`~repro.serve.client` — an asyncio client and the load generator;
- :mod:`~repro.serve.replay` — the regression corpus replayed through the
  wire codec against the one-shot engines.

Run ``python -m repro.serve serve`` / ``loadgen`` / ``replay``.
"""

from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    REQUEST_OPS,
    FrameDecoder,
    ProtocolError,
    decode_frame,
    encode_frame,
    row_to_state,
    rows_to_states,
    state_to_row,
    trace_to_rows,
    validate_request,
)
from .shard import DEFAULT_REPLICAS, HashRing
from .streams import SPEC_FACTORIES, StreamHandle, StreamRegistry

__all__ = [
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "state_to_row",
    "row_to_state",
    "rows_to_states",
    "trace_to_rows",
    "MAX_LINE_BYTES",
    "REQUEST_OPS",
    "ERROR_CODES",
    "HashRing",
    "DEFAULT_REPLICAS",
    "SPEC_FACTORIES",
    "StreamHandle",
    "StreamRegistry",
    "MonitorService",
    "ServeClient",
    "run_load",
    "replay_corpus",
    "ShardPool",
]


def __getattr__(name):
    # Heavy/optional surfaces load lazily: importing repro.serve for the
    # protocol helpers must not pull in asyncio servers or multiprocessing.
    if name == "MonitorService":
        from .service import MonitorService

        return MonitorService
    if name in ("ServeClient", "run_load"):
        from . import client

        return getattr(client, name)
    if name == "replay_corpus":
        from .replay import replay_corpus

        return replay_corpus
    if name == "ShardPool":
        from .worker import ShardPool

        return ShardPool
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
