"""Named monitored streams and the per-worker stream registry.

A :class:`StreamRegistry` is the synchronous core every transport shares:
the asyncio front end (single-process service), each shard worker process,
and the corpus replay harness all push decoded request frames through
:meth:`StreamRegistry.handle` and write back whatever response frames it
returns.  One registry owns one :class:`~repro.api.session.Session`, so
every stream opened on the same specification reuses one warm compiled
plan (and, with a persistent plan-cache directory, plans compiled by any
earlier process).

Each stream is an incremental :class:`~repro.checking.monitor.Monitor` —
the multi-root ``SpecPlanState`` path with tail-aware memos — plus a
**published snapshot**: a small version-stamped verdict digest rebuilt at
every batch boundary.  Snapshot reads return that published version
as-is, MVCC-style (the "Multiversion Concurrency Control" reading of the
ROADMAP item): a reader sees the last *committed* batch, never a
half-absorbed one, and ingestion never waits on readers — there is no
lock to contend because snapshots cost a dict copy.

Verdict-change alerts ride the monitor's ``on_change`` hook: whenever a
clause's verdict flips (or first materializes, or starts erroring), the
registry emits an ``alert`` event frame ahead of the triggering frame's
acknowledgement.

**Same-stream coalescing.**  :meth:`StreamRegistry.handle_batch` is the
batch entry every transport shipping multiple frames at once uses (shard
workers, the asyncio front end's per-read frame lists, replay harnesses).
Back-to-back ``append`` frames for one stream are absorbed as **one**
runtime batch — one volatile-memo sweep, one tail-kernel extension, one
verdict re-evaluation with ``commits=k`` so every clause's ``stable_for``
advances exactly as ``k`` frame-at-a-time commits would have.  Each frame
still gets its own acknowledgement (cumulative length, its own snapshot
version), and when a verdict *does* flip inside a coalesced group the
handle replays the stream frame-at-a-time on a fresh monitor from its
retained frame boundaries, recovering the exact per-frame alert positions
and ``stable_for`` resets — coalescing is an optimization, never a
semantic change.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.session import Session
from ..obs import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from ..syntax.parser import parse_formula
from .protocol import ProtocolError, rows_to_states, validate_request

__all__ = ["SPEC_FACTORIES", "StreamHandle", "StreamRegistry"]


def _spec_factories() -> Dict[str, Callable[[], Any]]:
    # Lazy: repro.specs pulls in the full syntax/builder stack.
    from ..specs import (
        arbiter_spec,
        mutex_spec,
        receiver_spec,
        reliable_queue_spec,
        request_ack_spec,
        sender_spec,
        service_provided_spec,
        stack_spec,
        unreliable_queue_spec,
    )

    return {
        "mutex": mutex_spec,
        "reliable_queue": reliable_queue_spec,
        "stack": stack_spec,
        "unreliable_queue": unreliable_queue_spec,
        "arbiter": arbiter_spec,
        "request_ack": request_ack_spec,
        "ab_sender": sender_spec,
        "ab_receiver": receiver_spec,
        "ab_service": service_provided_spec,
    }


#: ``open`` frames with ``"spec": name`` resolve through this registry —
#: the paper's Chapter 5-8 specifications, ready to serve.
SPEC_FACTORIES = _spec_factories


class StreamHandle:
    """One named stream: an incremental monitor plus its published snapshot."""

    __slots__ = (
        "name",
        "family",
        "monitor",
        "version",
        "states_ingested",
        "batches",
        "alerts_emitted",
        "last_rebuild_s",
        "_published",
        "_pending_alerts",
        "_frame_counts",
        "_rebuild",
        "_release",
    )

    def __init__(
        self,
        name: str,
        monitor,
        rebuild: Optional[Callable[[], Any]] = None,
        family: str = "formulas",
        release: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        #: The spec family this stream monitors (a registered spec name, or
        #: ``"formulas"`` for ad-hoc clause maps) — the label the registry
        #: files this stream's metrics series under.
        self.family = family
        self.monitor = monitor
        #: Bumped once per committed batch; snapshots carry it, so a client
        #: polling snapshots can tell "no progress" from "no change".
        self.version = 0
        self.states_ingested = 0
        self.batches = 0
        self.alerts_emitted = 0
        self._pending_alerts: List[Dict[str, Any]] = []
        #: State count of every committed frame, in order — the commit
        #: boundaries a coalesced group's flip replay reconstructs from.
        self._frame_counts: List[int] = []
        #: Builds a fresh, empty monitor for the same formulas (the
        #: registry passes one backed by the session's warm plan cache).
        self._rebuild = rebuild
        #: Hands a retired monitor back to the session's plan-state pool
        #: (a flip replay retires the optimistic monitor it replaces).
        self._release = release
        #: Wall seconds of the most recent published-snapshot rebuild.
        self.last_rebuild_s = 0.0
        self._published = self._build_snapshot()
        monitor.on_change = self._on_change  # the stream owns the alert hook

    # -- alerts ---------------------------------------------------------------

    def _on_change(self, clause: str, verdict) -> None:
        alert: Dict[str, Any] = {
            "event": "alert",
            "stream": self.name,
            "clause": clause,
            "verdict": verdict.holds,
            "at": self.monitor.prefix_length,
        }
        if verdict.error is not None:
            alert["error"] = verdict.error
        self._pending_alerts.append(alert)

    # -- ingestion ------------------------------------------------------------

    def absorb(self, states) -> List[Dict[str, Any]]:
        """Commit one batch; returns the alert frames it raised."""
        self.monitor.observe_batch(states)
        self.version += 1
        self.states_ingested += len(states)
        self.batches += 1
        self._frame_counts.append(len(states))
        alerts, self._pending_alerts = self._pending_alerts, []
        self.alerts_emitted += len(alerts)
        self._published = self._build_snapshot()
        return alerts

    def absorb_group(
        self, batches: Sequence[Sequence[Any]]
    ) -> List[Tuple[List[Dict[str, Any]], Dict[str, Optional[bool]], int, int]]:
        """Commit ``k`` back-to-back frames as one coalesced runtime batch.

        The concatenated states are absorbed in **one**
        :meth:`~repro.checking.monitor.Monitor.observe_batch` call with
        ``commits=k`` — one volatile-memo sweep and one verdict refresh
        whose ``stable_for`` weights stand in for the ``k`` commits.  The
        published snapshot is rebuilt once, at the group boundary, but
        every frame keeps its own snapshot version (``k`` bumps).

        Returns one ``(alerts, verdict_map, length, version)`` entry per
        frame, exactly what frame-at-a-time ingestion would have produced:
        on the common no-flip path the alert lists are empty and the maps
        identical; when a verdict flipped inside the group, the stream is
        replayed frame-at-a-time from its retained commit boundaries on a
        fresh monitor, recovering the exact mid-group alert positions and
        ``stable_for`` resets (see :meth:`_replay_group`).
        """
        if len(batches) == 1:
            alerts = self.absorb(batches[0])
            return [
                (alerts, self.verdict_map(), self.monitor.prefix_length, self.version)
            ]
        start_version = self.version
        start_length = self.monitor.prefix_length
        merged = [state for batch in batches for state in batch]
        commits = sum(1 for batch in batches if batch)
        if merged:
            self.monitor.observe_batch(merged, commits=commits)
        self.version += len(batches)
        self.states_ingested += len(merged)
        self.batches += len(batches)
        self._frame_counts.extend(len(batch) for batch in batches)
        alerts, self._pending_alerts = self._pending_alerts, []
        if alerts:
            pairs = self._replay_group(len(batches), alerts)
        else:
            verdicts = self.verdict_map()
            pairs = [([], verdicts) for _ in batches]
        for frame_alerts, _ in pairs:
            self.alerts_emitted += len(frame_alerts)
        self._published = self._build_snapshot()
        out: List[Tuple[List[Dict[str, Any]], Dict[str, Optional[bool]], int, int]] = []
        length = start_length
        for index, (batch, (frame_alerts, verdicts)) in enumerate(zip(batches, pairs)):
            length += len(batch)
            out.append((frame_alerts, verdicts, length, start_version + index + 1))
        return out

    def _replay_group(
        self, group_size: int, coalesced_alerts: List[Dict[str, Any]]
    ) -> List[Tuple[List[Dict[str, Any]], Dict[str, Optional[bool]]]]:
        """Exact per-frame alerts for a coalesced group that flipped.

        A flip observed at the group boundary could have happened at any
        of the group's commit points; clients are promised frame-at-a-time
        alert positions and ``stable_for`` resets regardless of how frames
        were coalesced.  So: rebuild a fresh monitor (plan comes warm from
        the session cache), replay every retained commit silently up to
        the group, then commit the group's frames one at a time, capturing
        alerts and verdict maps per frame.  The replayed monitor replaces
        the optimistic one — its final verdicts are identical (batched
        absorption is verdict-equivalent by construction); only the alert
        granularity differs.  Flips are rare (once per faulty stream), so
        the O(history) replay amortizes away against the batched fast
        path.

        Without a ``rebuild`` hook the handle degrades to
        commit-granularity alerts: the coalesced alerts (positioned at the
        group boundary) ride ahead of the last frame's acknowledgement.
        """
        if self._rebuild is None:
            verdicts = self.verdict_map()
            pairs: List[Tuple[List[Dict[str, Any]], Dict[str, Optional[bool]]]] = [
                ([], verdicts) for _ in range(group_size - 1)
            ]
            pairs.append((coalesced_alerts, verdicts))
            return pairs
        monitor = self._rebuild()
        states = self.monitor.plan_state.trace.states()
        counts = self._frame_counts
        boundary = len(counts) - group_size
        captured: List[Dict[str, Any]] = []

        def capture(clause: str, verdict) -> None:
            alert: Dict[str, Any] = {
                "event": "alert",
                "stream": self.name,
                "clause": clause,
                "verdict": verdict.holds,
                "at": monitor.prefix_length,
            }
            if verdict.error is not None:
                alert["error"] = verdict.error
            captured.append(alert)

        pairs = []
        offset = 0
        for index, count in enumerate(counts):
            chunk = list(states[offset:offset + count])
            offset += count
            if index == boundary:
                monitor.on_change = capture
            monitor.observe_batch(chunk)
            if index >= boundary:
                frame_alerts, captured = captured, []
                pairs.append(
                    (frame_alerts,
                     {name: v.holds for name, v in monitor.verdicts.items()})
                )
        monitor.on_change = self._on_change
        retired, self.monitor = self.monitor, monitor
        self._pending_alerts = []
        if self._release is not None:
            # The replayed states were copied chunk by chunk above, so the
            # retired monitor's trace can be reset and its plan state
            # parked for the next stream of this family.
            self._release(retired)
        return pairs

    # -- the published (non-blocking) snapshot --------------------------------

    def _build_snapshot(self) -> Dict[str, Any]:
        rebuild_started = time.perf_counter()
        monitor = self.monitor
        costs = monitor.step_costs
        verdicts = {
            name: {
                "holds": v.holds,
                "stable_for": v.stable_for,
                **({"error": v.error} if v.error is not None else {}),
            }
            for name, v in monitor.verdicts.items()
        }
        published = {
            "ok": "snapshot",
            "stream": self.name,
            "version": self.version,
            "length": monitor.prefix_length,
            "states_ingested": self.states_ingested,
            "batches": self.batches,
            "alerts": self.alerts_emitted,
            "verdicts": verdicts,
            "failing": sorted(monitor.failing()),
            "step_cost": {
                "last": monitor.last_step_cost,
                "window": len(costs),
                "window_total": sum(costs),
                "lifetime_batches": costs.total_count,
                "lifetime_total": costs.total,
            },
            "memo_size": monitor.plan_state.memo_size,
        }
        self.last_rebuild_s = time.perf_counter() - rebuild_started
        return published

    def snapshot(self) -> Dict[str, Any]:
        """The last *committed* version — a copy, never an evaluation.

        A deep copy: snapshots hold nested verdict/step-cost objects, and
        a reader mutating its copy must not corrupt the published version
        every other reader shares.
        """
        return copy.deepcopy(self._published)

    def verdict_map(self) -> Dict[str, Optional[bool]]:
        return {name: v.holds for name, v in self.monitor.verdicts.items()}


class StreamRegistry:
    """All streams of one worker, behind the frame-level request surface.

    The plain integer counters (``opened``, ``states_ingested``, ...) are
    the legacy ``service_snapshot()`` surface; the same events also land
    in the session's :class:`~repro.obs.MetricsRegistry` as per-family
    labelled ``serve_*`` series, exported by the ``metrics`` frame.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        stat_window: int = 256,
        worker_id: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._session = session if session is not None else Session()
        self._stat_window = stat_window
        self._streams: Dict[str, StreamHandle] = {}
        #: Resolved clause maps per registered spec family.  Reusing the
        #: *same* formula objects across opens keeps the session's
        #: identity fast path and plan-state pool hot: every stream of a
        #: family lands on one interned plan and recycled states.
        self._family_formulas: Dict[str, Dict[str, Any]] = {}
        self.worker_id = worker_id
        self.opened = 0
        self.closed = 0
        self.states_ingested = 0
        self.alerts_emitted = 0
        self.errors = 0
        #: Defaults to the session's registry so engine/cache series and
        #: serve series travel in one snapshot.
        self.metrics = metrics if metrics is not None else self._session.metrics
        self._m_opened = self.metrics.counter(
            "serve_streams_opened_total", "Streams opened, by spec family.",
            ("family",),
        )
        self._m_pool_state = self.metrics.counter(
            "serve_pool_state_total",
            "Plan states served from the session pool on stream open, "
            "by spec family and outcome.",
            ("family", "outcome"),
        )
        self._m_closed = self.metrics.counter(
            "serve_streams_closed_total", "Streams closed, by spec family.",
            ("family",),
        )
        self._m_states = self.metrics.counter(
            "serve_states_ingested_total", "States absorbed, by spec family.",
            ("family",),
        )
        self._m_alerts = self.metrics.counter(
            "serve_alerts_total", "Verdict-change alerts emitted, by spec family.",
            ("family",),
        )
        self._m_errors = self.metrics.counter(
            "serve_errors_total", "Error frames answered, by protocol code.",
            ("code",),
        )
        self._m_batch_states = self.metrics.histogram(
            "serve_batch_states", "States per append frame, by spec family.",
            ("family",), buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_coalesced = self.metrics.histogram(
            "serve_coalesced_frames",
            "Append frames coalesced into one runtime batch, by spec family.",
            ("family",), buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_step_cost = self.metrics.histogram(
            "serve_step_cost", "Evaluation step cost per committed batch, by spec family.",
            ("family",), buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_rebuild_seconds = self.metrics.histogram(
            "serve_snapshot_rebuild_seconds",
            "Published-snapshot rebuild wall time, by spec family.",
            ("family",),
        )
        self._m_open_streams = self.metrics.gauge(
            "serve_streams_open", "Streams currently open on this worker."
        )

    @property
    def session(self) -> Session:
        return self._session

    @property
    def stream_count(self) -> int:
        return len(self._streams)

    def stream(self, name: str) -> StreamHandle:
        try:
            return self._streams[name]
        except KeyError:
            raise ProtocolError(
                "unknown-stream", f"no stream named {name!r} is open", stream=name
            ) from None

    # -- the frame-level surface ----------------------------------------------

    def handle(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        """One request frame → its response frames (alerts before acks).

        Protocol failures come back as ``error`` frames instead of
        raising, so every transport (socket loop, shard pipe, replay
        harness) shares one error discipline; unexpected internal failures
        are caught too (``"internal"``) — one poisoned frame must not take
        down a worker serving thousands of streams.
        """
        try:
            op = validate_request(frame)
            if op == "ping":
                return [{"ok": "pong"}]
            if op == "metrics":
                return [self.metrics_frame()]
            if op == "open":
                return [self.open(frame)]
            if op == "append":
                return self.append(frame)
            if op == "snapshot":
                return [self.snapshot(frame.get("stream"))]
            return [self.close(frame["stream"])]
        except ProtocolError as exc:
            self.errors += 1
            self._m_errors.child(exc.code).inc()
            return [exc.to_frame()]
        except Exception as exc:  # pragma: no cover - defensive
            self.errors += 1
            self._m_errors.child("internal").inc()
            return [
                ProtocolError(
                    "internal",
                    f"{type(exc).__name__}: {exc}",
                    stream=frame.get("stream")
                    if isinstance(frame.get("stream"), str)
                    else None,
                ).to_frame()
            ]

    def handle_batch(
        self, frames: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """A frame batch → its response frames, coalescing same-stream runs.

        Maximal runs of back-to-back ``append`` frames for one (open)
        stream absorb as a single runtime batch (:meth:`append_group`);
        every other frame goes through :meth:`handle` one at a time.
        Responses are ordered exactly as frame-at-a-time dispatch orders
        them: each frame's alerts ahead of its own acknowledgement.
        """
        responses: List[Dict[str, Any]] = []
        index = 0
        total = len(frames)
        while index < total:
            frame = frames[index]
            stream = frame.get("stream")
            if (
                frame.get("op") == "append"
                and isinstance(stream, str)
                and stream in self._streams
                and index + 1 < total
                and frames[index + 1].get("op") == "append"
                and frames[index + 1].get("stream") == stream
            ):
                end = index + 2
                while (
                    end < total
                    and frames[end].get("op") == "append"
                    and frames[end].get("stream") == stream
                ):
                    end += 1
                consumed, grouped = self.append_group(frames[index:end])
                responses.extend(grouped)
                index += consumed
            else:
                responses.extend(self.handle(frame))
                index += 1
        return responses

    # -- operations ------------------------------------------------------------

    def open(self, frame: Mapping[str, Any]) -> Dict[str, Any]:
        name = frame["stream"]
        if name in self._streams:
            raise ProtocolError(
                "duplicate-stream", f"stream {name!r} is already open", stream=name
            )
        formulas = self._resolve_formulas(frame)
        domain = frame.get("domain")
        monitor = self._session.monitor(
            formulas,
            domain,
            capture_errors=True,
            stat_window=self._stat_window,
        )

        def rebuild():
            # A fresh monitor on the same warm plan — what a coalesced
            # group's flip replay runs the stream back through.
            return self._session.monitor(
                formulas,
                domain,
                capture_errors=True,
                stat_window=self._stat_window,
            )

        family = frame.get("spec", "formulas")
        handle = StreamHandle(
            name,
            monitor,
            rebuild=rebuild,
            family=family,
            release=self._session.release_monitor,
        )
        self._streams[name] = handle
        self.opened += 1
        self._m_opened.child(family).inc()
        from_pool = bool(getattr(monitor, "state_from_pool", False))
        self._m_pool_state.child(family, "hit" if from_pool else "miss").inc()
        self._m_open_streams.child().set(len(self._streams))
        return {
            "ok": "opened",
            "stream": name,
            "clauses": list(formulas),
            "plan_from_cache": bool(monitor.plan_from_cache),
            "state_from_pool": from_pool,
        }

    def _resolve_formulas(self, frame: Mapping[str, Any]) -> Dict[str, Any]:
        name = frame["stream"]
        if "spec" in frame:
            family = frame["spec"]
            cached = self._family_formulas.get(family)
            if cached is not None:
                return cached
            factories = SPEC_FACTORIES()
            try:
                factory = factories[family]
            except KeyError:
                raise ProtocolError(
                    "unknown-spec",
                    f"unknown spec {family!r}; available: "
                    f"{', '.join(sorted(factories))}",
                    stream=name,
                ) from None
            specification = factory()
            resolved = {
                clause.name: clause.interpreted_formula()
                for clause in specification.clauses
            }
            # Cache the resolved clause map so every later open of this
            # family hands the session identity-stable formula objects.
            self._family_formulas[family] = resolved
            return resolved
        formulas = {}
        for clause, text in frame["formulas"].items():
            try:
                formulas[clause] = parse_formula(text)
            except Exception as exc:
                raise ProtocolError(
                    "bad-formula", f"clause {clause!r}: {exc}", stream=name
                ) from None
        return formulas

    def append(self, frame: Mapping[str, Any]) -> List[Dict[str, Any]]:
        name = frame["stream"]
        handle = self.stream(name)
        states = rows_to_states(frame["states"], stream=name)
        alerts = handle.absorb(states)
        self.states_ingested += len(states)
        self.alerts_emitted += len(alerts)
        self._record_commit(handle, len(states), len(alerts))
        responses = list(alerts)
        if frame.get("ack", True):
            responses.append(
                {
                    "ok": "appended",
                    "stream": name,
                    "count": len(states),
                    "length": handle.monitor.prefix_length,
                    "version": handle.version,
                    "verdicts": handle.verdict_map(),
                }
            )
        return responses

    def append_group(
        self, run: Sequence[Dict[str, Any]]
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """Absorb a run of same-stream ``append`` frames as one batch.

        Every frame is validated and decoded *before* anything commits, so
        a malformed frame ``k`` truncates the group: frames ``[0, k)``
        still absorb (coalesced), frame ``k`` answers with its error
        frame, and the frames after ``k`` are left for the caller to
        redispatch (the returned consumed count covers ``[0, k]`` only) —
        exactly the prefix frame-at-a-time dispatch would have committed
        before hitting the error.
        """
        name = run[0]["stream"]
        handle = self._streams[name]
        decoded: List[Tuple[Dict[str, Any], List[Any]]] = []
        failure: Optional[ProtocolError] = None
        for frame in run:
            try:
                validate_request(frame)
                decoded.append(
                    (frame, rows_to_states(frame["states"], stream=name))
                )
            except ProtocolError as exc:
                failure = exc
                break
        responses: List[Dict[str, Any]] = []
        if decoded:
            try:
                outcomes = handle.absorb_group(
                    [states for _, states in decoded]
                )
            except Exception as exc:  # pragma: no cover - defensive
                self.errors += 1
                responses.append(
                    ProtocolError(
                        "internal", f"{type(exc).__name__}: {exc}", stream=name
                    ).to_frame()
                )
                outcomes = []
            if outcomes:
                self._m_coalesced.child(handle.family).observe(len(decoded))
                self._record_commit(
                    handle,
                    sum(len(states) for _, states in decoded),
                    sum(len(alerts) for alerts, _, _, _ in outcomes),
                )
            for (frame, states), (alerts, verdicts, length, version) in zip(
                decoded, outcomes
            ):
                self.states_ingested += len(states)
                self.alerts_emitted += len(alerts)
                responses.extend(alerts)
                if frame.get("ack", True):
                    responses.append(
                        {
                            "ok": "appended",
                            "stream": name,
                            "count": len(states),
                            "length": length,
                            "version": version,
                            "verdicts": verdicts,
                        }
                    )
        if failure is not None:
            self.errors += 1
            self._m_errors.child(failure.code).inc()
            responses.append(failure.to_frame())
            return len(decoded) + 1, responses
        return len(decoded), responses

    def _record_commit(self, handle: StreamHandle, states: int, alerts: int) -> None:
        """One committed batch (single frame or coalesced group) → series."""
        family = handle.family
        self._m_states.child(family).inc(states)
        self._m_batch_states.child(family).observe(states)
        if alerts:
            self._m_alerts.child(family).inc(alerts)
        cost = handle.monitor.last_step_cost
        if cost is not None:
            self._m_step_cost.child(family).observe(cost)
        self._m_rebuild_seconds.child(family).observe(handle.last_rebuild_s)

    def snapshot(self, name: Optional[str] = None) -> Dict[str, Any]:
        if name is not None:
            return self.stream(name).snapshot()
        return self.service_snapshot()

    def service_snapshot(self) -> Dict[str, Any]:
        """The whole worker's aggregate, cache stats included.

        The legacy operational surface; :meth:`metrics_snapshot` (and the
        wire-level ``metrics`` frame) carries the same totals as
        composable, per-family :mod:`repro.obs` series.
        """
        snapshot: Dict[str, Any] = {
            "ok": "snapshot",
            "streams": len(self._streams),
            "opened": self.opened,
            "closed": self.closed,
            "states_ingested": self.states_ingested,
            "alerts": self.alerts_emitted,
            "errors": self.errors,
            "failing_streams": sorted(
                handle.name
                for handle in self._streams.values()
                if handle.monitor.failing()
            ),
            "cache": self._session.cache_statistics(),
        }
        if self.worker_id is not None:
            snapshot["worker"] = self.worker_id
        return snapshot

    def metrics_frame(self) -> Dict[str, Any]:
        """The ``{"op": "metrics"}`` response: this worker's registry
        snapshot (cache gauges synced when the session's registry is
        shared, which is the default)."""
        return {"ok": "metrics", "metrics": self.metrics_snapshot()}

    def metrics_snapshot(self) -> Dict[str, Any]:
        self._m_open_streams.child().set(len(self._streams))
        if self.metrics is self._session.metrics:
            return self._session.metrics_snapshot()
        return self.metrics.snapshot()

    def close(self, name: str) -> Dict[str, Any]:
        handle = self.stream(name)
        del self._streams[name]
        self.closed += 1
        self._m_closed.child(handle.family).inc()
        self._m_open_streams.child().set(len(self._streams))
        response = {
            "ok": "closed",
            "stream": name,
            "length": handle.monitor.prefix_length,
            "version": handle.version,
            "verdicts": handle.verdict_map(),
        }
        # After the farewell frame is built, the monitor's plan state goes
        # back to the session pool for the next stream of this family.
        self._session.release_monitor(handle.monitor)
        return response
