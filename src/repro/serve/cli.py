"""The ``python -m repro.serve`` command line.

Four subcommands::

    python -m repro.serve serve [--host H] [--port P] [--shards N]
        [--plan-cache DIR] [--stat-window N] [--metrics-port P]
    python -m repro.serve loadgen [--host H] [--port P | --self-host [--shards N]]
        [--streams N] [--rate STATES_PER_SEC] [--fault-rate F]
        [--batch B] [--seed S] [--connections C] [--plan-cache DIR]
    python -m repro.serve replay [PATH ...] [--batch B]
    python -m repro.serve stats [--host H] [--port P] [--interval S] [--json]

``serve`` runs the monitoring service until interrupted; with
``--metrics-port`` it also answers Prometheus text scrapes on that port.
``loadgen`` drives a seeded fleet of simulated-system streams against a
service — its own ephemeral one under ``--self-host`` — and exits
non-zero if any *correct* stream ends failing or any fault-injected
stream goes undetected.  ``replay`` pushes the regression corpus through
the wire codec and exits non-zero on any divergence from the one-shot
engines.  ``stats`` samples a live service's ``metrics`` frame twice,
``--interval`` seconds apart, and prints the aggregated fleet picture:
open streams, ingest rate, alerts, cache hits, latency quantiles.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, List, Optional

from ..gen.corpus import DEFAULT_CORPUS_DIR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="A sharded monitoring service for concurrent incremental streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="run the monitoring service")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=9178)
    serve_cmd.add_argument("--shards", type=int, default=0,
                           help="shard streams over N worker processes "
                                "(0/1: one in-process registry)")
    serve_cmd.add_argument("--plan-cache", default=None, metavar="DIR",
                           help="persistent digest-addressed plan cache "
                                "(defaults to $REPRO_PLAN_CACHE)")
    serve_cmd.add_argument("--stat-window", type=int, default=256,
                           help="per-stream bounded stats window")
    serve_cmd.add_argument("--metrics-port", type=int, default=None, metavar="P",
                           help="also serve Prometheus text metrics on this port")

    load_cmd = commands.add_parser("loadgen", help="drive a generated stream fleet")
    load_cmd.add_argument("--host", default="127.0.0.1")
    load_cmd.add_argument("--port", type=int, default=9178)
    load_cmd.add_argument("--self-host", action="store_true",
                          help="spin up an ephemeral service in this process")
    load_cmd.add_argument("--shards", type=int, default=0,
                          help="shards for --self-host")
    load_cmd.add_argument("--streams", type=int, default=100)
    load_cmd.add_argument("--rate", type=float, default=0.0, metavar="STATES_PER_SEC",
                          help="aggregate pacing target (0: unpaced)")
    load_cmd.add_argument("--fault-rate", type=float, default=0.2)
    load_cmd.add_argument("--batch", type=int, default=16,
                          help="states per append frame")
    load_cmd.add_argument("--seed", type=int, default=0)
    load_cmd.add_argument("--connections", type=int, default=4)
    load_cmd.add_argument("--plan-cache", default=None, metavar="DIR",
                          help="plan cache for --self-host")

    replay_cmd = commands.add_parser(
        "replay", help="replay the corpus through the wire protocol"
    )
    replay_cmd.add_argument("paths", nargs="*", default=None,
                            help=f"corpus files or directories "
                                 f"(default: {DEFAULT_CORPUS_DIR})")
    replay_cmd.add_argument("--batch", type=int, default=16,
                            help="states per append frame")

    stats_cmd = commands.add_parser(
        "stats", help="sample a live service's aggregated fleet metrics"
    )
    stats_cmd.add_argument("--host", default="127.0.0.1")
    stats_cmd.add_argument("--port", type=int, default=9178)
    stats_cmd.add_argument("--interval", type=float, default=1.0,
                           help="seconds between the two samples the rate "
                                "window spans (0: single sample, no rates)")
    stats_cmd.add_argument("--json", action="store_true",
                           help="print the raw metrics snapshot as JSON")
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import MonitorService

    service = MonitorService(
        shards=args.shards,
        plan_cache_dir=args.plan_cache,
        stat_window=args.stat_window,
    )

    async def _run() -> None:
        if args.metrics_port is not None:
            metrics_host, metrics_port = await service.start_metrics_endpoint(
                args.host, args.metrics_port
            )
            print(f"metrics (Prometheus text) on {metrics_host}:{metrics_port}")
        await service.serve_forever(args.host, args.port)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        service.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .client import run_load
    from .service import MonitorService

    async def _run():
        service = None
        host, port = args.host, args.port
        try:
            if args.self_host:
                service = MonitorService(
                    shards=args.shards, plan_cache_dir=args.plan_cache
                )
                host, port = await service.start(args.host, 0)
                backend = (
                    f"{args.shards} shards" if args.shards > 1
                    else "in-process registry"
                )
                print(f"self-hosting on {host}:{port} ({backend})")
            report = await run_load(
                host,
                port,
                streams=args.streams,
                states_per_second=args.rate,
                fault_rate=args.fault_rate,
                batch=args.batch,
                seed=args.seed,
                connections=args.connections,
            )
        finally:
            if service is not None:
                await service.stop()
                service.close()
        return report

    report = asyncio.run(_run())
    print(report.summary())
    missed = sorted(set(report.expected_failing) - set(report.failing_streams))
    spurious = sorted(set(report.failing_streams) - set(report.expected_failing))
    if missed:
        # Informational: an injected fault is a *chance* to violate the
        # spec; some seeds reorder into an order that happens to be legal.
        print(f"fault injected but not manifested: {', '.join(missed)}")
    if spurious:
        # Hard failure: the correct simulators satisfy their specs by
        # construction, so a failing correct stream is a monitoring bug.
        print(f"SPURIOUS failures on correct streams: {', '.join(spurious)}")
        return 1
    print("no spurious failures; "
          f"{len(report.expected_failing) - len(missed)} manifested fault(s) detected")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .replay import replay_corpus

    report = replay_corpus(paths=args.paths or None, batch=args.batch)
    print(f"serve replay: {report.summary()}")
    for disagreement in report.disagreements:
        print(f"DISAGREEMENT {disagreement.describe()}")
    return 0 if report.ok else 1


def _counter_total(snapshot, name: str) -> float:
    entry = snapshot.get(name)
    if not entry:
        return 0
    return sum(row.get("value", 0) for row in entry.get("series", ()))


def _counter_by_label(snapshot, name: str):
    entry = snapshot.get(name)
    if not entry:
        return {}
    return {
        "/".join(row.get("labels", ())) or "-": row.get("value", 0)
        for row in entry.get("series", ())
    }


def _cmd_stats(args: argparse.Namespace) -> int:
    from ..obs import snapshot_quantile, to_json
    from .client import ServeClient

    async def _sample():
        client = await ServeClient.connect(args.host, args.port)
        try:
            first = await client.metrics()
            if args.interval > 0:
                await asyncio.sleep(args.interval)
                second = await client.metrics()
            else:
                second = first
        finally:
            await client.close()
        return first, second

    try:
        first, snapshot = asyncio.run(_sample())
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(to_json(snapshot, indent=2))
        return 0

    open_entry = snapshot.get("serve_streams_open", {})
    open_streams = sum(
        row.get("value", 0) for row in open_entry.get("series", ())
    )
    states = _counter_total(snapshot, "serve_states_ingested_total")
    alerts = _counter_total(snapshot, "serve_alerts_total")
    errors = _counter_total(snapshot, "serve_errors_total")
    rate = ""
    if args.interval > 0:
        delta = states - _counter_total(first, "serve_states_ingested_total")
        rate = f"  ({delta / args.interval:,.0f} states/s over {args.interval:g}s)"
    print(f"streams open:     {open_streams:,.0f}")
    print(f"states ingested:  {states:,.0f}{rate}")
    print(f"alerts emitted:   {alerts:,.0f}")
    print(f"error frames:     {errors:,.0f}")
    opened = _counter_by_label(snapshot, "serve_streams_opened_total")
    if opened:
        families = ", ".join(f"{k}={v:,.0f}" for k, v in sorted(opened.items()))
        print(f"opened by family: {families}")
    plan = _counter_by_label(snapshot, "repro_plan_requests_total")
    if plan:
        print(f"plan cache:       "
              f"hits={plan.get('hit', 0):,.0f} misses={plan.get('miss', 0):,.0f}")
    interned = _counter_total(snapshot, "repro_plan_interned_total")
    alpha_entry = snapshot.get("repro_plan_alpha_interned", {})
    alpha = sum(row.get("value", 0) for row in alpha_entry.get("series", ()))
    if interned or alpha:
        print(f"interned plans:   served={interned:,.0f} "
              f"alpha-classes collapsed={alpha:,.0f}")
    pool = _counter_by_label(snapshot, "serve_pool_state_total")
    if pool:
        # serve_pool_state_total carries (family, outcome) label pairs;
        # fold them into a per-family hit rate.
        by_family: Dict[str, Dict[str, float]] = {}
        for key, value in pool.items():
            family, _, outcome = key.rpartition("/")
            by_family.setdefault(family or "-", {})[outcome] = value
        parts = []
        for family, outcomes in sorted(by_family.items()):
            hits = outcomes.get("hit", 0)
            total = hits + outcomes.get("miss", 0)
            share = hits / total if total else 0.0
            parts.append(f"{family}={hits:,.0f}/{total:,.0f} ({share:.0%})")
        print(f"pooled states:    {' '.join(parts)}")
    for metric, label in (
        ("serve_step_cost", "step cost"),
        ("serve_batch_states", "batch states"),
        ("serve_snapshot_rebuild_seconds", "rebuild secs"),
    ):
        entry = snapshot.get(metric)
        if entry and any(row.get("count") for row in entry.get("series", ())):
            q50 = snapshot_quantile(entry, 0.5)
            q95 = snapshot_quantile(entry, 0.95)
            q99 = snapshot_quantile(entry, 0.99)
            print(f"{label + ':':<18}p50={q50:g} p95={q95:g} p99={q99:g}")
    framing_poisoned = _counter_total(snapshot, "serve_framing_poisoned_total")
    if framing_poisoned:
        resyncs = _counter_total(snapshot, "serve_framing_resyncs_total")
        print(f"framing:          {framing_poisoned:,.0f} poisoned lines, "
              f"{resyncs:,.0f} resyncs")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "stats":
        return _cmd_stats(args)
    return _cmd_replay(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
