"""The ``python -m repro.serve`` command line.

Three subcommands::

    python -m repro.serve serve [--host H] [--port P] [--shards N]
        [--plan-cache DIR] [--stat-window N]
    python -m repro.serve loadgen [--host H] [--port P | --self-host [--shards N]]
        [--streams N] [--rate STATES_PER_SEC] [--fault-rate F]
        [--batch B] [--seed S] [--connections C] [--plan-cache DIR]
    python -m repro.serve replay [PATH ...] [--batch B]

``serve`` runs the monitoring service until interrupted.  ``loadgen``
drives a seeded fleet of simulated-system streams against a service —
its own ephemeral one under ``--self-host`` — and exits non-zero if any
*correct* stream ends failing or any fault-injected stream goes
undetected.  ``replay`` pushes the regression corpus through the wire
codec and exits non-zero on any divergence from the one-shot engines.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from ..gen.corpus import DEFAULT_CORPUS_DIR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="A sharded monitoring service for concurrent incremental streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="run the monitoring service")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=9178)
    serve_cmd.add_argument("--shards", type=int, default=0,
                           help="shard streams over N worker processes "
                                "(0/1: one in-process registry)")
    serve_cmd.add_argument("--plan-cache", default=None, metavar="DIR",
                           help="persistent digest-addressed plan cache "
                                "(defaults to $REPRO_PLAN_CACHE)")
    serve_cmd.add_argument("--stat-window", type=int, default=256,
                           help="per-stream bounded stats window")

    load_cmd = commands.add_parser("loadgen", help="drive a generated stream fleet")
    load_cmd.add_argument("--host", default="127.0.0.1")
    load_cmd.add_argument("--port", type=int, default=9178)
    load_cmd.add_argument("--self-host", action="store_true",
                          help="spin up an ephemeral service in this process")
    load_cmd.add_argument("--shards", type=int, default=0,
                          help="shards for --self-host")
    load_cmd.add_argument("--streams", type=int, default=100)
    load_cmd.add_argument("--rate", type=float, default=0.0, metavar="STATES_PER_SEC",
                          help="aggregate pacing target (0: unpaced)")
    load_cmd.add_argument("--fault-rate", type=float, default=0.2)
    load_cmd.add_argument("--batch", type=int, default=16,
                          help="states per append frame")
    load_cmd.add_argument("--seed", type=int, default=0)
    load_cmd.add_argument("--connections", type=int, default=4)
    load_cmd.add_argument("--plan-cache", default=None, metavar="DIR",
                          help="plan cache for --self-host")

    replay_cmd = commands.add_parser(
        "replay", help="replay the corpus through the wire protocol"
    )
    replay_cmd.add_argument("paths", nargs="*", default=None,
                            help=f"corpus files or directories "
                                 f"(default: {DEFAULT_CORPUS_DIR})")
    replay_cmd.add_argument("--batch", type=int, default=16,
                            help="states per append frame")
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import MonitorService

    service = MonitorService(
        shards=args.shards,
        plan_cache_dir=args.plan_cache,
        stat_window=args.stat_window,
    )
    try:
        asyncio.run(service.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        service.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .client import run_load
    from .service import MonitorService

    async def _run():
        service = None
        host, port = args.host, args.port
        try:
            if args.self_host:
                service = MonitorService(
                    shards=args.shards, plan_cache_dir=args.plan_cache
                )
                host, port = await service.start(args.host, 0)
                backend = (
                    f"{args.shards} shards" if args.shards > 1
                    else "in-process registry"
                )
                print(f"self-hosting on {host}:{port} ({backend})")
            report = await run_load(
                host,
                port,
                streams=args.streams,
                states_per_second=args.rate,
                fault_rate=args.fault_rate,
                batch=args.batch,
                seed=args.seed,
                connections=args.connections,
            )
        finally:
            if service is not None:
                await service.stop()
                service.close()
        return report

    report = asyncio.run(_run())
    print(report.summary())
    missed = sorted(set(report.expected_failing) - set(report.failing_streams))
    spurious = sorted(set(report.failing_streams) - set(report.expected_failing))
    if missed:
        # Informational: an injected fault is a *chance* to violate the
        # spec; some seeds reorder into an order that happens to be legal.
        print(f"fault injected but not manifested: {', '.join(missed)}")
    if spurious:
        # Hard failure: the correct simulators satisfy their specs by
        # construction, so a failing correct stream is a monitoring bug.
        print(f"SPURIOUS failures on correct streams: {', '.join(spurious)}")
        return 1
    print("no spurious failures; "
          f"{len(report.expected_failing) - len(missed)} manifested fault(s) detected")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .replay import replay_corpus

    report = replay_corpus(paths=args.paths or None, batch=args.batch)
    print(f"serve replay: {report.summary()}")
    for disagreement in report.disagreements:
        print(f"DISAGREEMENT {disagreement.describe()}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    return _cmd_replay(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
