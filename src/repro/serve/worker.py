"""Shard worker processes and the parent-side routing pool.

One :class:`ShardPool` owns ``n`` worker processes, each running
:func:`shard_worker_main`: a plain loop over a ``multiprocessing`` pipe
that applies request frames to a private :class:`~repro.serve.streams.
StreamRegistry` (its own :class:`~repro.api.session.Session`, its own warm
plan cache — give every worker the same persistent ``plan_cache_dir`` and
only the first to see a specification ever compiles it).  The parent
routes each frame by consistent hash on its stream id
(:class:`~repro.serve.shard.HashRing`), ships frames **in batches** per
worker (one pickle round-trip absorbs an arbitrary number of appends, so
the pipe never becomes the bottleneck the per-frame latency would make
it), and re-interleaves nothing: responses come back grouped per worker in
submission order, which is exactly per-stream order — the only order the
protocol promises.

Stream-less frames fan out: a service-wide ``snapshot`` queries every
worker and merges the aggregates, ``metrics`` merges every worker's
:mod:`repro.obs` registry snapshot; ``ping`` answers in the parent.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .shard import DEFAULT_REPLICAS, HashRing

__all__ = ["WorkerConfig", "ShardPool", "shard_worker_main"]


@dataclass
class WorkerConfig:
    """Everything a worker needs to build its registry (must pickle)."""

    worker_id: int
    plan_cache_dir: Optional[str] = None
    stat_window: int = 256
    session_options: Dict[str, Any] = field(default_factory=dict)


def _encode_shipment(frames: Sequence[Dict[str, Any]]) -> bytes:
    """Pickle one worker's ``("frames", [...])`` shipment exactly once.

    ``Connection.send`` re-pickles its argument on every call; routing
    encodes each batch up front instead and ships the bytes with
    ``send_bytes``, so serialization happens outside the pipe locks (and
    outside the window where workers could already be grinding).  The
    worker's plain ``conn.recv()`` unpickles it transparently.
    """
    return pickle.dumps(
        ("frames", list(frames)), protocol=pickle.HIGHEST_PROTOCOL
    )


def shard_worker_main(conn, config: WorkerConfig) -> None:
    """The worker loop: ``("frames", [...])`` in, ``[responses...]`` out."""
    from ..api.session import Session
    from .streams import StreamRegistry

    session = Session(
        plan_cache_dir=config.plan_cache_dir, **config.session_options
    )
    registry = StreamRegistry(
        session=session,
        stat_window=config.stat_window,
        worker_id=config.worker_id,
    )
    while True:
        try:
            kind, payload = conn.recv()
        except EOFError:  # parent died: nothing left to serve
            break
        if kind == "stop":
            conn.send(("stats", registry.service_snapshot()))
            break
        # Batch dispatch: back-to-back appends for one stream inside this
        # shipment coalesce into a single runtime batch in the registry.
        conn.send(("frames", registry.handle_batch(payload)))
    conn.close()


class _Worker:
    """Parent-side handle: process + pipe + a lock serializing round-trips."""

    __slots__ = ("id", "process", "conn", "lock")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        # The asyncio front end may drive round-trips from worker threads
        # (``asyncio.to_thread``); one lock per pipe keeps send/recv paired.
        self.lock = threading.Lock()

    def request(self, frames: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        # Encode before taking the lock: pickling is the expensive half of
        # a pipe send, and nothing about it needs the pipe.
        encoded = _encode_shipment(frames)
        with self.lock:
            self.conn.send_bytes(encoded)
            kind, payload = self.conn.recv()
        return payload

    def stop(self) -> Optional[Dict[str, Any]]:
        stats = None
        try:
            with self.lock:
                self.conn.send(("stop", None))
                kind, payload = self.conn.recv()
            if kind == "stats":
                stats = payload
        except (OSError, EOFError, BrokenPipeError):
            pass
        finally:
            try:
                self.conn.close()
            except OSError:
                pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5)
        return stats


class ShardPool:
    """``n`` shard workers behind one consistent-hash router."""

    def __init__(
        self,
        shards: int,
        plan_cache_dir: Optional[str] = None,
        stat_window: int = 256,
        replicas: int = DEFAULT_REPLICAS,
        context: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        ctx = multiprocessing.get_context(context)
        self.ring = HashRing(range(shards), replicas=replicas)
        # Ring lookups are a SHA-256 + bisect per frame; assignments are a
        # pure function of the (fixed) ring, so memoize per stream id.
        self._route_cache: Dict[str, int] = {}
        self._workers: List[_Worker] = []
        self._closed = False
        for worker_id in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            config = WorkerConfig(
                worker_id=worker_id,
                plan_cache_dir=plan_cache_dir,
                stat_window=stat_window,
            )
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, config),
                daemon=True,
                name=f"repro-serve-shard-{worker_id}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(worker_id, process, parent_conn))

    @property
    def shard_count(self) -> int:
        return len(self._workers)

    def worker_for(self, stream: str) -> int:
        worker_id = self._route_cache.get(stream)
        if worker_id is None:
            worker_id = self.ring.worker_for(stream)
            if len(self._route_cache) < 65536:
                self._route_cache[stream] = worker_id
        return worker_id

    # -- routing ---------------------------------------------------------------

    def handle(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Route one frame; stream-less snapshots aggregate over the pool."""
        return self.handle_batch([frame])

    def handle_batch(self, frames: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Route a frame batch, one pipe round-trip per involved worker.

        Responses are concatenated in worker-id order, per-stream order
        preserved inside each worker (the hash pins a stream to exactly
        one worker, so no cross-worker reordering can touch a stream).
        """
        self._check_open()
        groups: Dict[int, List[Dict[str, Any]]] = {}
        passthrough: List[Dict[str, Any]] = []
        for frame in frames:
            stream = frame.get("stream")
            if isinstance(stream, str):
                groups.setdefault(self.worker_for(stream), []).append(frame)
            elif frame.get("op") == "snapshot":
                passthrough.append(self.aggregate_snapshot())
            elif frame.get("op") == "metrics":
                passthrough.append(self.aggregate_metrics())
            elif frame.get("op") == "ping":
                passthrough.append({"ok": "pong"})
            else:
                # Shape errors for stream-less frames: any worker answers
                # identically; use worker 0 to keep one error discipline.
                groups.setdefault(self.ring.workers[0], []).append(frame)
        responses: List[Dict[str, Any]] = []
        involved = [w for w in self._workers if groups.get(w.id)]
        if len(involved) == 1:
            responses.extend(involved[0].request(groups[involved[0].id]))
        elif involved:
            # Ship every worker its batch *before* collecting any reply —
            # the whole point of sharding is that workers grind
            # concurrently, and a send-recv-send-recv loop would serialize
            # them behind each other.  Batches are encoded up front (one
            # pickle per worker, outside the locks) so the lock-held
            # window is pure pipe writes.  Locks are taken in worker-id
            # order (consistently everywhere) so concurrent batch
            # dispatchers cannot deadlock.
            encoded = {
                worker.id: _encode_shipment(groups[worker.id])
                for worker in involved
            }
            for worker in involved:
                worker.lock.acquire()
            try:
                for worker in involved:
                    worker.conn.send_bytes(encoded[worker.id])
                for worker in involved:
                    _, payload = worker.conn.recv()
                    responses.extend(payload)
            finally:
                for worker in involved:
                    worker.lock.release()
        responses.extend(passthrough)
        return responses

    def aggregate_snapshot(self) -> Dict[str, Any]:
        """Service-wide totals merged over every worker's aggregate."""
        self._check_open()
        merged: Dict[str, Any] = {
            "ok": "snapshot",
            "shards": len(self._workers),
            "streams": 0,
            "opened": 0,
            "closed": 0,
            "states_ingested": 0,
            "alerts": 0,
            "errors": 0,
            "failing_streams": [],
            "workers": [],
        }
        for worker in self._workers:
            (snapshot,) = worker.request([{"op": "snapshot"}])
            for key in ("streams", "opened", "closed", "states_ingested",
                        "alerts", "errors"):
                merged[key] += snapshot.get(key, 0)
            merged["failing_streams"].extend(snapshot.get("failing_streams", []))
            merged["workers"].append(snapshot)
        merged["failing_streams"].sort()
        return merged

    def aggregate_metrics(self) -> Dict[str, Any]:
        """The fleet's :mod:`repro.obs` snapshot: every worker's registry
        queried with a ``metrics`` frame and summed series-by-series
        (counter/histogram addition is associative, so the merge is
        deterministic whatever order workers answer in)."""
        self._check_open()
        from ..obs import merge_snapshots

        snapshots = []
        for worker in self._workers:
            (response,) = worker.request([{"op": "metrics"}])
            if response.get("ok") == "metrics":
                snapshots.append(response.get("metrics", {}))
        return {
            "ok": "metrics",
            "shards": len(self._workers),
            "metrics": merge_snapshots(*snapshots),
        }

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this shard pool is closed")

    def close(self) -> List[Dict[str, Any]]:
        """Stop every worker; returns their final aggregate snapshots."""
        if self._closed:
            return []
        self._closed = True
        stats = []
        for worker in self._workers:
            final = worker.stop()
            if final is not None:
                stats.append(final)
        return stats

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
