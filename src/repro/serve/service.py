"""The asyncio monitoring service: sockets in front, registry or shards behind.

A :class:`MonitorService` multiplexes any number of client connections over
one backend:

* ``shards=0`` (default) — a single in-process
  :class:`~repro.serve.streams.StreamRegistry`.  Frame handling is
  synchronous and cheap (amortized O(changed work) per appended state), so
  the event loop itself is the scheduler: thousands of concurrent client
  connections interleave at frame granularity.
* ``shards=n`` — a :class:`~repro.serve.worker.ShardPool`: streams are
  consistent-hashed across ``n`` worker processes and frame batches are
  shipped over pipes from a thread (``asyncio.to_thread``), so the event
  loop keeps accepting and parsing input while workers grind.

Each connection is its own protocol session: frames answer in order, a
malformed line answers with an ``error`` frame and the connection lives
on, and EOF is a clean goodbye (streams stay open — they belong to the
service, not the connection, so a monitoring fleet can hand a stream from
one connection to another).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from .protocol import FrameDecoder, ProtocolError, decode_frame, encode_frame
from .streams import StreamRegistry
from .worker import ShardPool

__all__ = ["MonitorService"]


class MonitorService:
    """The long-lived monitoring process behind ``python -m repro.serve``."""

    def __init__(
        self,
        shards: int = 0,
        plan_cache_dir: Optional[str] = None,
        stat_window: int = 256,
        session=None,
    ) -> None:
        self._pool: Optional[ShardPool] = None
        self._registry: Optional[StreamRegistry] = None
        if shards and shards > 1:
            self._pool = ShardPool(
                shards, plan_cache_dir=plan_cache_dir, stat_window=stat_window
            )
        else:
            if session is None:
                from ..api.session import Session

                session = Session(plan_cache_dir=plan_cache_dir)
            self._registry = StreamRegistry(
                session=session, stat_window=stat_window
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections_served = 0
        self.frames_served = 0

    @property
    def sharded(self) -> bool:
        return self._pool is not None

    @property
    def registry(self) -> Optional[StreamRegistry]:
        """The in-process registry (``None`` when sharded)."""
        return self._registry

    @property
    def pool(self) -> Optional[ShardPool]:
        return self._pool

    # -- frame handling --------------------------------------------------------

    def handle_frame(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Synchronous dispatch — the replay harness and tests use this."""
        self.frames_served += 1
        if self._pool is not None:
            return self._pool.handle(frame)
        return self._registry.handle(frame)

    def handle_batch(self, frames: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        self.frames_served += len(frames)
        if self._pool is not None:
            return self._pool.handle_batch(frames)
        # Registry-level batch dispatch coalesces back-to-back same-stream
        # appends into single runtime batches.
        return self._registry.handle_batch(frames)

    async def handle_frames_async(
        self, frames: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Batch dispatch off the event loop when a shard pool is behind."""
        if self._pool is not None:
            self.frames_served += len(frames)
            pool = self._pool
            return await asyncio.to_thread(pool.handle_batch, frames)
        return self.handle_batch(frames)

    # -- the socket front end --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                try:
                    lines = decoder.feed(chunk)
                except ProtocolError as exc:
                    writer.write(encode_frame(exc.to_frame()))
                    await writer.drain()
                    continue
                frames: List[Dict[str, Any]] = []
                responses: List[Dict[str, Any]] = []
                for line in lines:
                    try:
                        frames.append(decode_frame(line))
                    except ProtocolError as exc:
                        # Flush what decoded so far, then the error, keeping
                        # response order aligned with request order.
                        if frames:
                            responses.extend(await self.handle_frames_async(frames))
                            frames = []
                        responses.append(exc.to_frame())
                if frames:
                    responses.extend(await self.handle_frames_async(frames))
                if responses:
                    writer.write(b"".join(encode_frame(r) for r in responses))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # Teardown races (client already gone, loop shutting down
                # mid-wait) are all equivalent here: the connection is over.
                pass

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start accepting; returns the listening ``(host, port)``."""
        self._server = await asyncio.start_server(self._on_connection, host, port)
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 9178) -> None:
        bound_host, bound_port = await self.start(host, port)
        backend = (
            f"{self._pool.shard_count} shard workers"
            if self._pool is not None
            else "in-process registry"
        )
        print(f"repro.serve listening on {bound_host}:{bound_port} ({backend})")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        """Release the backend (stops shard workers)."""
        if self._pool is not None:
            self._pool.close()

    def service_snapshot(self) -> Dict[str, Any]:
        if self._pool is not None:
            snapshot = self._pool.aggregate_snapshot()
        else:
            snapshot = self._registry.service_snapshot()
        snapshot["connections_served"] = self.connections_served
        snapshot["frames_served"] = self.frames_served
        return snapshot
