"""The asyncio monitoring service: sockets in front, registry or shards behind.

A :class:`MonitorService` multiplexes any number of client connections over
one backend:

* ``shards=0`` (default) — a single in-process
  :class:`~repro.serve.streams.StreamRegistry`.  Frame handling is
  synchronous and cheap (amortized O(changed work) per appended state), so
  the event loop itself is the scheduler: thousands of concurrent client
  connections interleave at frame granularity.
* ``shards=n`` — a :class:`~repro.serve.worker.ShardPool`: streams are
  consistent-hashed across ``n`` worker processes and frame batches are
  shipped over pipes from a thread (``asyncio.to_thread``), so the event
  loop keeps accepting and parsing input while workers grind.

Each connection is its own protocol session: frames answer in order, a
malformed line answers with an ``error`` frame and the connection lives
on, and EOF is a clean goodbye (streams stay open — they belong to the
service, not the connection, so a monitoring fleet can hand a stream from
one connection to another).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from ..obs import MetricsRegistry, merge_snapshots, to_prometheus_text
from .protocol import FrameDecoder, ProtocolError, decode_frame, encode_frame
from .streams import StreamRegistry
from .worker import ShardPool

__all__ = ["MonitorService"]


class MonitorService:
    """The long-lived monitoring process behind ``python -m repro.serve``."""

    def __init__(
        self,
        shards: int = 0,
        plan_cache_dir: Optional[str] = None,
        stat_window: int = 256,
        session=None,
    ) -> None:
        self._pool: Optional[ShardPool] = None
        self._registry: Optional[StreamRegistry] = None
        if shards and shards > 1:
            self._pool = ShardPool(
                shards, plan_cache_dir=plan_cache_dir, stat_window=stat_window
            )
        else:
            if session is None:
                from ..api.session import Session

                session = Session(plan_cache_dir=plan_cache_dir)
            self._registry = StreamRegistry(
                session=session, stat_window=stat_window
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self.connections_served = 0
        self.frames_served = 0
        #: Front-end framing health (satellite of every backend metric):
        #: lines the per-connection decoders rejected, and their recoveries.
        self.framing_poisoned = 0
        self.framing_resyncs = 0
        # Front-end-only series (framing, connections) live in their own
        # registry so they merge cleanly into any backend's snapshot —
        # including a shard pool's, whose workers know nothing of sockets.
        self._service_metrics = MetricsRegistry()
        self._m_poisoned = self._service_metrics.counter(
            "serve_framing_poisoned_total",
            "Wire lines rejected by the framing guard (oversize before newline).",
        )
        self._m_resyncs = self._service_metrics.counter(
            "serve_framing_resyncs_total",
            "Framing recoveries: decoder resynchronized at a later newline.",
        )

    @property
    def sharded(self) -> bool:
        return self._pool is not None

    @property
    def registry(self) -> Optional[StreamRegistry]:
        """The in-process registry (``None`` when sharded)."""
        return self._registry

    @property
    def pool(self) -> Optional[ShardPool]:
        return self._pool

    # -- frame handling --------------------------------------------------------

    def handle_frame(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Synchronous dispatch — the replay harness and tests use this."""
        self.frames_served += 1
        if self._pool is not None:
            return self._inject_service_series(self._pool.handle(frame))
        return self._inject_service_series(self._registry.handle(frame))

    def handle_batch(self, frames: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        self.frames_served += len(frames)
        if self._pool is not None:
            return self._inject_service_series(self._pool.handle_batch(frames))
        # Registry-level batch dispatch coalesces back-to-back same-stream
        # appends into single runtime batches.
        return self._inject_service_series(self._registry.handle_batch(frames))

    async def handle_frames_async(
        self, frames: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Batch dispatch off the event loop when a shard pool is behind."""
        if self._pool is not None:
            self.frames_served += len(frames)
            pool = self._pool
            responses = await asyncio.to_thread(pool.handle_batch, frames)
            return self._inject_service_series(responses)
        return self.handle_batch(frames)

    def _inject_service_series(
        self, responses: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Fold front-end series (framing, connections) into any ``metrics``
        responses passing through — the backend registries cannot know
        them, and operators asking the wire for metrics want the whole
        picture."""
        for response in responses:
            if isinstance(response, dict) and response.get("ok") == "metrics":
                response["metrics"] = merge_snapshots(
                    response.get("metrics", {}), self._service_metrics_snapshot()
                )
        return responses

    def _service_metrics_snapshot(self) -> Dict[str, Any]:
        metrics = self._service_metrics
        metrics.gauge(
            "serve_connections_served", "Client connections accepted."
        ).child().set(self.connections_served)
        metrics.gauge(
            "serve_frames_served", "Request frames dispatched."
        ).child().set(self.frames_served)
        return metrics.snapshot()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The whole service's :mod:`repro.obs` snapshot: the backend's
        (aggregated over every shard worker) merged with the front end's
        framing/connection series.  ``python -m repro.serve stats`` and
        the ``--metrics-port`` endpoint read this."""
        if self._pool is not None:
            backend = self._pool.aggregate_metrics().get("metrics", {})
        else:
            backend = self._registry.metrics_snapshot()
        return merge_snapshots(backend, self._service_metrics_snapshot())

    # -- the socket front end --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        decoder = FrameDecoder()
        framing_seen = [0, 0]  # [poisoned_lines, resyncs] already folded in
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                try:
                    lines = decoder.feed(chunk)
                except ProtocolError as exc:
                    self._sync_framing(decoder, framing_seen)
                    writer.write(encode_frame(exc.to_frame()))
                    await writer.drain()
                    continue
                self._sync_framing(decoder, framing_seen)
                frames: List[Dict[str, Any]] = []
                responses: List[Dict[str, Any]] = []
                for line in lines:
                    try:
                        frames.append(decode_frame(line))
                    except ProtocolError as exc:
                        # Flush what decoded so far, then the error, keeping
                        # response order aligned with request order.
                        if frames:
                            responses.extend(await self.handle_frames_async(frames))
                            frames = []
                        responses.append(exc.to_frame())
                if frames:
                    responses.extend(await self.handle_frames_async(frames))
                if responses:
                    writer.write(b"".join(encode_frame(r) for r in responses))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # Teardown races (client already gone, loop shutting down
                # mid-wait) are all equivalent here: the connection is over.
                pass
            self._sync_framing(decoder, framing_seen)

    def _sync_framing(self, decoder: FrameDecoder, seen: List[int]) -> None:
        """Fold a connection decoder's new framing counts into the service."""
        poisoned = decoder.poisoned_lines - seen[0]
        resyncs = decoder.resyncs - seen[1]
        if poisoned:
            self.framing_poisoned += poisoned
            self._m_poisoned.child().inc(poisoned)
            seen[0] = decoder.poisoned_lines
        if resyncs:
            self.framing_resyncs += resyncs
            self._m_resyncs.child().inc(resyncs)
            seen[1] = decoder.resyncs

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start accepting; returns the listening ``(host, port)``."""
        self._server = await asyncio.start_server(self._on_connection, host, port)
        return self._server.sockets[0].getsockname()[:2]

    async def start_metrics_endpoint(self, host: str = "127.0.0.1", port: int = 0):
        """A minimal Prometheus scrape endpoint (``--metrics-port``).

        Answers every HTTP request on the port with the text exposition of
        :meth:`metrics_snapshot` — enough for ``curl`` and any Prometheus
        scraper; this is not a general HTTP server.  Returns the bound
        ``(host, port)``.
        """

        async def on_scrape(reader, writer) -> None:
            try:
                # Consume the request head; the reply is the same whatever
                # path was asked for.
                await reader.readline()
                body = to_prometheus_text(
                    await asyncio.to_thread(self.metrics_snapshot)
                ).encode("utf-8")
                writer.write(
                    b"HTTP/1.0 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError,
                        asyncio.CancelledError):
                    pass

        self._metrics_server = await asyncio.start_server(on_scrape, host, port)
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 9178) -> None:
        bound_host, bound_port = await self.start(host, port)
        backend = (
            f"{self._pool.shard_count} shard workers"
            if self._pool is not None
            else "in-process registry"
        )
        print(f"repro.serve listening on {bound_host}:{bound_port} ({backend})")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None

    def close(self) -> None:
        """Release the backend (stops shard workers)."""
        if self._pool is not None:
            self._pool.close()

    def service_snapshot(self) -> Dict[str, Any]:
        if self._pool is not None:
            snapshot = self._pool.aggregate_snapshot()
        else:
            snapshot = self._registry.service_snapshot()
        snapshot["connections_served"] = self.connections_served
        snapshot["frames_served"] = self.frames_served
        snapshot["framing"] = {
            "poisoned_lines": self.framing_poisoned,
            "resyncs": self.framing_resyncs,
        }
        return snapshot
