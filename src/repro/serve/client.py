"""An asyncio client and the load-generator harness.

:class:`ServeClient` speaks the JSONL protocol over one connection:
requests go out framed, responses stream back in order, and unsolicited
``alert`` events are collected onto :attr:`ServeClient.alerts` (and an
optional callback) rather than interleaving with acknowledgements — so
``await client.append(...)`` always returns the ``appended``/``error``
frame it caused.

:func:`run_load` is the ``python -m repro.serve loadgen`` engine: it opens
a fleet of streams from :func:`repro.gen.loadgen.generate_stream_scripts`,
round-robins batched appends across them at a target aggregate rate
(``states_per_second``; unpaced when 0), and reports achieved throughput,
alert counts, and the failing streams against the fleet's fault-injection
ground truth.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .protocol import FrameDecoder, decode_frame, encode_frame

__all__ = ["ServeClient", "LoadReport", "run_load"]


class ServeClient:
    """One protocol session against a running monitoring service."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        on_alert: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._queued: List[Dict[str, Any]] = []
        self._on_alert = on_alert
        #: Every alert event seen on this connection, in arrival order.
        self.alerts: List[Dict[str, Any]] = []

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 9178,
        on_alert: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, on_alert=on_alert)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- the request/response discipline --------------------------------------

    async def _next_frame(self) -> Dict[str, Any]:
        while not self._queued:
            chunk = await self._reader.read(64 * 1024)
            if not chunk:
                raise ConnectionError("service closed the connection")
            for line in self._decoder.feed(chunk):
                self._queued.append(decode_frame(line))
        return self._queued.pop(0)

    async def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame; returns its acknowledgement (or error) frame.

        Alert events arriving first are absorbed onto :attr:`alerts` —
        the protocol emits them ahead of the acknowledgement they precede.
        """
        await self.send(frame)
        return await self.ack()

    async def send(self, frame: Dict[str, Any]) -> None:
        """Fire one frame without waiting (pair with :meth:`ack` later)."""
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def ack(self) -> Dict[str, Any]:
        """The next non-event frame; absorbs alerts on the way."""
        while True:
            frame = await self._next_frame()
            if frame.get("event") == "alert":
                self.alerts.append(frame)
                if self._on_alert is not None:
                    self._on_alert(frame)
                continue
            return frame

    # -- convenience ops -------------------------------------------------------

    async def open(self, stream: str, **fields: Any) -> Dict[str, Any]:
        return await self.request({"op": "open", "stream": stream, **fields})

    async def append(
        self, stream: str, states: Sequence[Dict[str, Any]], ack: bool = True
    ) -> Optional[Dict[str, Any]]:
        frame = {"op": "append", "stream": stream, "states": list(states)}
        if not ack:
            frame["ack"] = False
            await self.send(frame)
            return None
        return await self.request(frame)

    async def snapshot(self, stream: Optional[str] = None) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"op": "snapshot"}
        if stream is not None:
            frame["stream"] = stream
        return await self.request(frame)

    async def close_stream(self, stream: str) -> Dict[str, Any]:
        return await self.request({"op": "close", "stream": stream})

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def metrics(self) -> Dict[str, Any]:
        """The service's :mod:`repro.obs` snapshot (merged across shards
        and front-end framing series) — the ``metrics`` frame's payload."""
        reply = await self.request({"op": "metrics"})
        if "error" in reply:
            raise RuntimeError(f"metrics: {reply}")
        return reply.get("metrics", {})


@dataclass
class LoadReport:
    """What a load-generation run achieved."""

    streams: int
    states: int
    elapsed_s: float
    target_rate: float
    alerts: int
    failing_streams: List[str] = field(default_factory=list)
    expected_failing: List[str] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        return self.states / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary(self) -> str:
        target = f", target {self.target_rate:.0f}/s" if self.target_rate else ""
        return (
            f"{self.states} states over {self.streams} streams in "
            f"{self.elapsed_s:.2f}s = {self.achieved_rate:.0f} states/s"
            f"{target}; {self.alerts} alerts, "
            f"{len(self.failing_streams)} streams failing "
            f"({len(self.expected_failing)} fault-injected)"
        )


async def run_load(
    host: str,
    port: int,
    streams: int = 100,
    states_per_second: float = 0.0,
    fault_rate: float = 0.2,
    batch: int = 16,
    seed: int = 0,
    connections: int = 4,
) -> LoadReport:
    """Drive a generated fleet against a running service.

    The fleet's scripts are dealt round-robin over ``connections``
    parallel protocol sessions (each stream stays on one connection, so
    per-stream frame order is preserved end to end).  Appends are batched
    and paced to the *aggregate* target rate; ``states_per_second=0``
    means as fast as the service absorbs them.
    """
    from ..gen.loadgen import generate_stream_scripts

    scripts = generate_stream_scripts(streams, seed=seed, fault_rate=fault_rate)
    clients = [
        await ServeClient.connect(host, port) for _ in range(max(1, connections))
    ]
    assignments: List[List[Any]] = [[] for _ in clients]
    for index, script in enumerate(scripts):
        assignments[index % len(clients)].append(script)

    total_states = 0
    started = time.perf_counter()

    async def drive(client: ServeClient, mine: List[Any]) -> int:
        sent = 0
        for script in mine:
            reply = await client.open(script.stream, spec=script.spec)
            if "error" in reply:
                raise RuntimeError(f"open {script.stream}: {reply}")
        # Interleave batches across this connection's streams so every
        # stream progresses together — the concurrent-streams shape, not
        # one stream at a time.
        cursors = [(script, script.rows()) for script in mine]
        offset = 0
        while True:
            progressed = False
            for script, rows in cursors:
                chunk = rows[offset : offset + batch]
                if not chunk:
                    continue
                progressed = True
                reply = await client.append(script.stream, chunk)
                if "error" in reply:
                    raise RuntimeError(f"append {script.stream}: {reply}")
                sent += len(chunk)
                if states_per_second > 0:
                    # Pace against the shared aggregate budget.
                    expected = (time.perf_counter() - started) * states_per_second
                    ahead = (total_states + sent) - expected
                    if ahead > batch:
                        await asyncio.sleep(ahead / states_per_second)
            if not progressed:
                break
            offset += batch
        return sent

    results = await asyncio.gather(
        *(drive(client, mine) for client, mine in zip(clients, assignments))
    )
    total_states = sum(results)
    elapsed = time.perf_counter() - started

    failing: List[str] = []
    alerts = 0
    for client, mine in zip(clients, assignments):
        alerts += len(client.alerts)
        for script in mine:
            final = await client.close_stream(script.stream)
            if "error" in final:
                raise RuntimeError(f"close {script.stream}: {final}")
            if any(holds is False for holds in final["verdicts"].values()):
                failing.append(script.stream)
    for client in clients:
        await client.close()

    return LoadReport(
        streams=streams,
        states=total_states,
        elapsed_s=elapsed,
        target_rate=states_per_second,
        alerts=alerts,
        failing_streams=sorted(failing),
        expected_failing=sorted(s.stream for s in scripts if s.faulty),
    )
