"""Consistent hashing: stable stream → worker assignment.

Streams are pinned to shard workers by a classic consistent-hash ring:
every worker owns ``replicas`` pseudo-random points on a 64-bit circle
(SHA-256 of ``"worker:replica"``), and a stream id hashes to the first
worker point at or clockwise-after its own hash.  Two properties matter
here:

* **determinism** — the assignment is a pure function of (worker ids,
  replicas, stream id): the parent router and any client computing
  assignments locally always agree, across processes and runs (no
  dependence on ``PYTHONHASHSEED``);
* **stability** — resizing the pool from *n* to *n+1* workers remaps only
  ~``1/(n+1)`` of the streams, so a scaled service re-homes (and re-warms)
  the minimum, instead of reshuffling every monitor state the way
  ``hash(stream) % n`` would.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_REPLICAS"]


#: Points per worker: enough that the largest/smallest shard load ratio
#: stays small, few enough that ring construction is instant.
DEFAULT_REPLICAS = 64


def _point(key: str) -> int:
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over an ordered set of worker ids."""

    def __init__(self, workers: Sequence[int], replicas: int = DEFAULT_REPLICAS):
        if not workers:
            raise ValueError("a hash ring needs at least one worker")
        if len(set(workers)) != len(workers):
            raise ValueError("worker ids must be unique")
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self.workers: Tuple[int, ...] = tuple(workers)
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for worker in workers:
            for replica in range(replicas):
                points.append((_point(f"{worker}:{replica}"), worker))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [worker for _, worker in points]

    def worker_for(self, stream: str) -> int:
        """The worker owning ``stream`` (wrap-around at the top of the ring)."""
        index = bisect_right(self._hashes, _point(stream))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def assign(self, streams: Sequence[str]) -> Dict[int, List[str]]:
        """Bulk assignment, preserving per-worker stream order."""
        assignment: Dict[int, List[str]] = {worker: [] for worker in self.workers}
        for stream in streams:
            assignment[self.worker_for(stream)].append(stream)
        return assignment

    def __repr__(self) -> str:
        return f"HashRing(workers={list(self.workers)}, replicas={self.replicas})"
