"""Reproduction of "An Interval Logic for Higher-Level Temporal Reasoning".

Schwartz, Melliar-Smith, Vogt, Plaisted — SRI International / NASA CR-172262,
1983 (PODC 1983).

**Front door.**  :mod:`repro.api` is the package's unified checking façade:
a :class:`~repro.api.session.Session` holds traces, domains and shared
caches; :meth:`~repro.api.session.Session.check` answers one
:class:`~repro.api.request.CheckRequest` (formula + mode + options) with a
:class:`~repro.api.result.CheckResult` (verdict, witness/counterexample,
statistics, wall time); :meth:`~repro.api.session.Session.check_many`
batches campaigns and can fan them out over worker processes.  Five
pluggable engines — ``trace``, ``bounded``, ``tableau``, ``lll``,
``monitor`` — wrap the subsystems below, with auto-dispatch on the formula
fragment.  The historical per-subsystem entry points keep working and are
also re-exported (with deprecation warnings) from :mod:`repro.api.legacy`.

The package is organised as:

* :mod:`repro.api` — the unified checking façade (Session / CheckRequest /
  CheckResult, engine registry, batching and parallel fan-out);
* :mod:`repro.syntax` — formulas, interval terms, event terms, parser, printer;
* :mod:`repro.semantics` — states, traces, the construction function ``F`` and
  the Chapter 3 satisfaction relation, Appendix A reductions;
* :mod:`repro.core` — parameterized operations, Init/Axioms specifications,
  the Chapter 4 valid-formula catalogue, bounded validity checking, proof
  support for Chapter 8;
* :mod:`repro.ltl` — the propositional linear-time temporal logic substrate
  with the Appendix B tableau decision procedures (Algorithms A and B);
* :mod:`repro.theories` — the specialized theory solvers combined with LTL;
* :mod:`repro.lll` — the Appendix C low-level language and its graph-based
  decision procedure;
* :mod:`repro.systems` — discrete-event simulators for the paper's case
  studies (queues, self-timed arbiter, Alternating Bit protocol, distributed
  mutual exclusion);
* :mod:`repro.specs` — the paper's specifications written against the API;
* :mod:`repro.checking` — trace monitors and conformance campaigns (the
  conformance runner is a thin wrapper over ``Session.check_many``).
"""

from . import errors
from .api import CheckRequest, CheckResult, Session, check, check_many
from .semantics import (
    BOTTOM,
    Evaluator,
    Interval,
    State,
    Trace,
    boolean_trace,
    make_trace,
    satisfies,
)
from .syntax import parse_formula, parse_term, to_ascii, to_unicode

__version__ = "1.1.0"

__all__ = [
    "errors",
    "Session",
    "CheckRequest",
    "CheckResult",
    "check",
    "check_many",
    "BOTTOM",
    "Evaluator",
    "Interval",
    "State",
    "Trace",
    "boolean_trace",
    "make_trace",
    "satisfies",
    "parse_formula",
    "parse_term",
    "to_ascii",
    "to_unicode",
    "__version__",
]
