"""The tableau deletion iteration ``Iter(G)`` and Algorithm A (Appendix B §3–4).

``Iter(G)`` repeatedly deletes from the tableau graph:

* edges whose conjunction of literals is contradictory (for Algorithm A, the
  contradiction test is delegated to the specialized theory's satisfiability
  oracle, so e.g. ``x > 2 /\\ x < 1`` is pruned);
* edges labeled with an eventuality that cannot be satisfied (no path from
  the edge's terminal node to a node fulfilling it);
* nodes with no outgoing edges, and edges whose terminal node was deleted.

``A`` is valid iff every initial node of ``Graph(~A)`` is deleted in
``Iter(Graph(~A))``; with a theory ``T``, ``A`` is valid in ``TL(T)`` under
the same criterion with the theory-filtered edge deletion (Algorithm A).

The module also extracts explicit lasso models from surviving graphs, which
the test-suite uses to cross-check the procedure against the explicit-model
semantics of :mod:`repro.ltl.semantics`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..semantics.state import State
from ..semantics.trace import Trace
from .syntax import LNot, LProp, LTLFormula, StrongUntil, TheoryAtom
from .tableau import Edge, Node, TableauGraph, build_graph

__all__ = ["DecisionStatistics", "DecisionResult", "TableauDecider",
           "is_satisfiable", "is_valid"]


@dataclass
class DecisionStatistics:
    """Node/edge counts and timing, mirroring the Appendix B §6 table columns."""

    nodes: int = 0
    edges: int = 0
    construction_seconds: float = 0.0
    iteration_seconds: float = 0.0
    surviving_nodes: int = 0
    surviving_edges: int = 0

    def as_row(self) -> Dict[str, float]:
        return {
            "graph_construction_s": self.construction_seconds,
            "iteration_s": self.iteration_seconds,
            "nodes": self.nodes,
            "edges": self.edges,
        }


@dataclass
class DecisionResult:
    """Outcome of a satisfiability / validity query."""

    formula: LTLFormula
    satisfiable: bool
    statistics: DecisionStatistics
    graph: TableauGraph
    alive_nodes: FrozenSet[int]
    alive_edges: Tuple[Edge, ...]
    model: Optional[Trace] = None

    def __bool__(self) -> bool:
        return self.satisfiable


class TableauDecider:
    """Satisfiability and validity of propositional LTL, optionally modulo a theory.

    Without a theory this is the plain tableau method; with one it is
    Algorithm A — the theory's conjunction-of-literals satisfiability oracle
    filters edges before and during the iteration.
    """

    def __init__(self, theory: Optional[object] = None) -> None:
        self._theory = theory

    # -- public entry points ------------------------------------------------------

    def satisfiability(self, formula: LTLFormula, extract_model: bool = False) -> DecisionResult:
        """Is ``formula`` satisfiable (in ``TL`` or ``TL(T)``)?"""
        stats = DecisionStatistics()
        start = time.perf_counter()
        graph = build_graph(formula, negate=False)
        stats.construction_seconds = time.perf_counter() - start
        stats.nodes = graph.node_count
        stats.edges = graph.edge_count

        start = time.perf_counter()
        alive_nodes, alive_edges = self._iterate(graph)
        stats.iteration_seconds = time.perf_counter() - start
        stats.surviving_nodes = len(alive_nodes)
        stats.surviving_edges = len(alive_edges)

        satisfiable = any(n in alive_nodes for n in graph.initial_nodes)
        model = None
        if satisfiable and extract_model:
            model = self._extract_model(graph, alive_nodes, alive_edges)
        return DecisionResult(
            formula=formula,
            satisfiable=satisfiable,
            statistics=stats,
            graph=graph,
            alive_nodes=frozenset(alive_nodes),
            alive_edges=tuple(alive_edges),
            model=model,
        )

    def validity(self, formula: LTLFormula, extract_model: bool = False) -> DecisionResult:
        """Is ``formula`` valid?  (Satisfiability of the negation, inverted.)"""
        result = self.satisfiability(LNot(formula), extract_model=extract_model)
        return DecisionResult(
            formula=formula,
            satisfiable=not result.satisfiable,  # here: "valid"
            statistics=result.statistics,
            graph=result.graph,
            alive_nodes=result.alive_nodes,
            alive_edges=result.alive_edges,
            model=result.model,  # a counterexample to validity, when present
        )

    # -- the deletion iteration ------------------------------------------------------

    def _edge_consistent(self, edge: Edge) -> bool:
        """Propositional consistency was ensured at cover time; ask the theory."""
        if self._theory is None:
            return True
        theory_literals = []
        for literal in edge.literals:
            negated = isinstance(literal, LNot)
            atom = literal.operand if negated else literal
            if isinstance(atom, TheoryAtom):
                theory_literals.append((atom, negated))
        if not theory_literals:
            return True
        return bool(self._theory.is_satisfiable(theory_literals))

    def _iterate(self, graph: TableauGraph) -> Tuple[Set[int], List[Edge]]:
        alive_nodes: Set[int] = set(graph.nodes)
        alive_edges: List[Edge] = [e for e in graph.edges if self._edge_consistent(e)]
        changed = True
        while changed:
            changed = False
            # Drop edges touching dead nodes.
            filtered = [
                e for e in alive_edges
                if e.source in alive_nodes and e.target in alive_nodes
            ]
            if len(filtered) != len(alive_edges):
                changed = True
            alive_edges = filtered
            # Drop edges with unsatisfiable eventualities.  For each pending
            # eventuality the set of alive nodes that can reach a fulfilling
            # node is computed once (backward reachability), so the pass is
            # linear in the number of edges per eventuality.
            eventualities = {ev for edge in alive_edges for ev in edge.eventualities}
            can_satisfy: Dict[LTLFormula, Set[int]] = {
                ev: self._nodes_reaching_goal(graph, ev, alive_nodes, alive_edges)
                for ev in eventualities
            }
            kept: List[Edge] = []
            for edge in alive_edges:
                if all(edge.target in can_satisfy[ev] for ev in edge.eventualities):
                    kept.append(edge)
                else:
                    changed = True
            alive_edges = kept
            # Drop nodes with no outgoing edges.
            with_successor = {e.source for e in alive_edges}
            survivors = {n for n in alive_nodes if n in with_successor}
            if len(survivors) != len(alive_nodes):
                changed = True
            alive_nodes = survivors
        return alive_nodes, alive_edges

    @staticmethod
    def _nodes_reaching_goal(
        graph: TableauGraph,
        eventuality: LTLFormula,
        alive_nodes: Set[int],
        alive_edges: Sequence[Edge],
    ) -> Set[int]:
        """Alive nodes from which a node fulfilling ``eventuality`` is reachable."""
        goal = eventuality.right if isinstance(eventuality, StrongUntil) else eventuality
        fulfilled = {
            n for n in alive_nodes if goal in graph.nodes[n].formulas
        }
        predecessors: Dict[int, List[int]] = {}
        for edge in alive_edges:
            predecessors.setdefault(edge.target, []).append(edge.source)
        reached = set(fulfilled)
        frontier = deque(fulfilled)
        while frontier:
            current = frontier.popleft()
            for previous in predecessors.get(current, []):
                if previous not in reached:
                    reached.add(previous)
                    frontier.append(previous)
        return reached

    @staticmethod
    def _reachable(
        start: int, alive_edges: Sequence[Edge], cache: Dict[int, Set[int]]
    ) -> Set[int]:
        if start in cache:
            return cache[start]
        adjacency: Dict[int, List[int]] = {}
        for edge in alive_edges:
            adjacency.setdefault(edge.source, []).append(edge.target)
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for nxt in adjacency.get(current, []):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        cache[start] = seen
        return seen

    def _eventuality_satisfiable(
        self,
        graph: TableauGraph,
        edge: Edge,
        eventuality: LTLFormula,
        alive_nodes: Set[int],
        alive_edges: Sequence[Edge],
        cache: Dict[int, Set[int]],
    ) -> bool:
        """Is there an alive path from the edge's target to a fulfilling node?"""
        goal = eventuality.right if isinstance(eventuality, StrongUntil) else eventuality
        reachable = self._reachable(edge.target, alive_edges, cache)
        for node_index in reachable:
            if node_index not in alive_nodes:
                continue
            if goal in graph.nodes[node_index].formulas:
                return True
        return False

    # -- model extraction ---------------------------------------------------------------

    @staticmethod
    def _node_state(node: Node) -> State:
        values: Dict[str, bool] = {}
        for literal in node.literals:
            negated = isinstance(literal, LNot)
            atom = literal.operand if negated else literal
            if isinstance(atom, (LProp, TheoryAtom)):
                values[atom.name] = not negated
        return State(values)

    def _extract_model(
        self,
        graph: TableauGraph,
        alive_nodes: Set[int],
        alive_edges: Sequence[Edge],
    ) -> Optional[Trace]:
        """Build an ultimately periodic model from the surviving graph.

        The extraction walks the surviving graph fulfilling pending
        eventualities by shortest alive paths, then closes a loop; the
        candidate is validated against the explicit-model semantics and
        discarded if the heuristic failed, so a returned trace is always a
        genuine model.
        """
        from .semantics import ltl_satisfies  # local import to avoid a cycle

        adjacency: Dict[int, List[Edge]] = {}
        for edge in alive_edges:
            adjacency.setdefault(edge.source, []).append(edge)

        initial = [n for n in graph.initial_nodes if n in alive_nodes]
        if not initial:
            return None

        def shortest_path(start: int, predicate) -> Optional[List[int]]:
            queue = deque([[start]])
            seen = {start}
            while queue:
                path = queue.popleft()
                if predicate(path[-1]):
                    return path
                for edge in adjacency.get(path[-1], []):
                    if edge.target not in seen:
                        seen.add(edge.target)
                        queue.append(path + [edge.target])
            return None

        for start in initial:
            path = [start]
            # Fulfil eventualities greedily for a bounded number of rounds.
            for _ in range(4 * max(1, len(graph.nodes))):
                current = graph.nodes[path[-1]]
                pending = [
                    ev for ev in current.eventualities
                    if isinstance(ev, StrongUntil)
                ]
                target_goal = None
                for ev in pending:
                    goal = ev.right
                    if goal not in current.formulas:
                        target_goal = goal
                        break
                if target_goal is None:
                    break
                extension = shortest_path(
                    path[-1], lambda n: target_goal in graph.nodes[n].formulas
                )
                if extension is None or len(extension) == 1:
                    break
                path.extend(extension[1:])
            # Close a cycle: walk until a node repeats.
            seen_at: Dict[int, int] = {}
            walk = list(path)
            for position, node_index in enumerate(walk):
                seen_at.setdefault(node_index, position)
            guard = 0
            while walk[-1] not in seen_at or seen_at[walk[-1]] == len(walk) - 1:
                successors = adjacency.get(walk[-1], [])
                if not successors:
                    break
                nxt = successors[0].target
                if nxt in seen_at:
                    walk.append(nxt)
                    break
                seen_at[nxt] = len(walk)
                walk.append(nxt)
                guard += 1
                if guard > 4 * max(1, len(graph.nodes)):
                    break
            if len(walk) < 2 or walk[-1] not in seen_at:
                continue
            loop_start = seen_at[walk[-1]] + 1  # 1-based
            states = [self._node_state(graph.nodes[n]) for n in walk[:-1]]
            if not states:
                continue
            loop_start = min(max(1, loop_start), len(states))
            candidate = Trace(states, loop_start=loop_start, mark_start=False)
            if ltl_satisfies(candidate, graph.formula):
                return candidate
        return None


def is_satisfiable(formula: LTLFormula, theory: Optional[object] = None) -> bool:
    """Convenience wrapper around :class:`TableauDecider`."""
    return TableauDecider(theory).satisfiability(formula).satisfiable


def is_valid(formula: LTLFormula, theory: Optional[object] = None) -> bool:
    """Convenience wrapper: validity of ``formula`` (Algorithm A when a theory is given)."""
    return TableauDecider(theory).validity(formula).satisfiable
