"""The tableau graph construction of Appendix B §3.

Given a temporal formula ``A``, validity is decided by negating ``A`` and
constructing a graph ``G = Graph(~A)`` representing the set of models of
``~A``:

* nodes represent states and are labeled with the formulas that must be true
  in the state;
* edges are labeled with conjunctions of literals (the propositional
  commitments of the source state) and possibly with *eventualities* —
  temporal formulas that must eventually be satisfied on any model passing
  through the edge;
* an eventuality on an edge can be satisfied iff there is a path from the
  edge's terminal node to some node having the eventuality's goal among its
  labels.

The construction here is the classical expansion tableau over the
negation-normal-form operators ``{literal, /\\, \\/, X, Us, R}``:

* a *cover* of a set of formulas is computed by decomposing every
  non-elementary formula (``a /\\ b`` into both, ``a \\/ b`` by branching,
  ``Us(p, q)`` into ``q`` or ``p /\\ X Us(p, q)`` — recording the eventuality
  ``q`` in the latter branch — and ``R(q, p)`` into ``p /\\ (q \\/ X R(q, p))``);
* each fully decomposed, propositionally consistent cover becomes a node;
* the successors of a node are the covers of its ``X``-obligations.

``Iter(G)`` — the deletion iteration — lives in :mod:`repro.ltl.decision`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DecisionProcedureError
from .syntax import (
    LAnd,
    LFalse,
    LNot,
    LOr,
    LProp,
    LTrue,
    LTLFormula,
    Next,
    Release,
    StrongUntil,
    TheoryAtom,
    to_nnf,
)

__all__ = ["Literal", "Node", "Edge", "TableauGraph", "build_graph", "cover_sets"]


Literal = LTLFormula  # an LProp / TheoryAtom or its LNot


def _is_literal(formula: LTLFormula) -> bool:
    if isinstance(formula, (LProp, TheoryAtom)):
        return True
    if isinstance(formula, LNot) and isinstance(formula.operand, (LProp, TheoryAtom)):
        return True
    return False


def _complement(literal: Literal) -> Literal:
    if isinstance(literal, LNot):
        return literal.operand
    return LNot(literal)


@dataclass(frozen=True)
class Node:
    """A tableau node: a fully decomposed, consistent set of formulas."""

    index: int
    formulas: FrozenSet[LTLFormula]
    literals: FrozenSet[Literal]
    next_obligations: FrozenSet[LTLFormula]
    eventualities: FrozenSet[LTLFormula]

    def label(self) -> str:
        return "{" + ", ".join(sorted(str(f) for f in self.formulas)) + "}"

    def __str__(self) -> str:
        return f"N{self.index}{self.label()}"


@dataclass(frozen=True)
class Edge:
    """A tableau edge: source commitments, eventualities carried across."""

    source: int
    target: int
    literals: FrozenSet[Literal]
    eventualities: FrozenSet[LTLFormula]

    def __str__(self) -> str:
        lits = ", ".join(sorted(str(l) for l in self.literals)) or "True"
        return f"N{self.source} --[{lits}]--> N{self.target}"


class TableauGraph:
    """The graph ``Graph(~A)`` plus bookkeeping used by the decision procedures."""

    def __init__(self, formula: LTLFormula) -> None:
        self.formula = formula
        self.nodes: Dict[int, Node] = {}
        self.edges: List[Edge] = []
        self.initial_nodes: List[int] = []
        self._cover_index: Dict[FrozenSet[LTLFormula], List[int]] = {}

    # -- structure queries ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def successors(self, node_index: int) -> List[Edge]:
        return [e for e in self.edges if e.source == node_index]

    def predecessors(self, node_index: int) -> List[Edge]:
        return [e for e in self.edges if e.target == node_index]

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def __str__(self) -> str:
        return (
            f"TableauGraph({self.formula}, {self.node_count} nodes, "
            f"{self.edge_count} edges, {len(self.initial_nodes)} initial)"
        )


# ---------------------------------------------------------------------------
# Cover computation
# ---------------------------------------------------------------------------


@dataclass
class _Cover:
    """A partially decomposed set of formulas during expansion."""

    pending: List[LTLFormula]
    done: Set[LTLFormula] = field(default_factory=set)
    literals: Set[Literal] = field(default_factory=set)
    next_obligations: Set[LTLFormula] = field(default_factory=set)
    eventualities: Set[LTLFormula] = field(default_factory=set)

    def clone(self) -> "_Cover":
        return _Cover(
            pending=list(self.pending),
            done=set(self.done),
            literals=set(self.literals),
            next_obligations=set(self.next_obligations),
            eventualities=set(self.eventualities),
        )

    def consistent(self) -> bool:
        for literal in self.literals:
            if _complement(literal) in self.literals:
                return False
        return True


def cover_sets(
    formulas: Iterable[LTLFormula],
) -> List[Tuple[FrozenSet[Literal], FrozenSet[LTLFormula], FrozenSet[LTLFormula], FrozenSet[LTLFormula]]]:
    """Fully decompose ``formulas`` into consistent covers.

    Each returned tuple is ``(literals, next_obligations, eventualities,
    all_formulas)``; inconsistent covers (containing complementary literals
    or ``False``) are dropped.
    """
    results = []
    seen: Set[Tuple[FrozenSet, FrozenSet]] = set()
    stack = [_Cover(pending=list(formulas))]
    while stack:
        cover = stack.pop()
        if not cover.pending:
            if not cover.consistent():
                continue
            key = (frozenset(cover.literals), frozenset(cover.next_obligations))
            full = frozenset(cover.done)
            if (key, full) in seen:
                continue
            seen.add((key, full))
            results.append(
                (
                    frozenset(cover.literals),
                    frozenset(cover.next_obligations),
                    frozenset(cover.eventualities),
                    full,
                )
            )
            continue
        formula = cover.pending.pop()
        if formula in cover.done:
            stack.append(cover)
            continue
        cover.done.add(formula)
        if isinstance(formula, LTrue):
            stack.append(cover)
        elif isinstance(formula, LFalse):
            continue  # inconsistent branch
        elif _is_literal(formula):
            cover.literals.add(formula)
            stack.append(cover)
        elif isinstance(formula, Next):
            cover.next_obligations.add(formula.operand)
            stack.append(cover)
        elif isinstance(formula, LAnd):
            cover.pending.append(formula.left)
            cover.pending.append(formula.right)
            stack.append(cover)
        elif isinstance(formula, LOr):
            left = cover.clone()
            left.pending.append(formula.left)
            stack.append(left)
            right = cover
            right.pending.append(formula.right)
            stack.append(right)
        elif isinstance(formula, StrongUntil):
            # Us(p, q) = q \/ (p /\ X Us(p, q));   eventuality: q.
            fulfil = cover.clone()
            fulfil.pending.append(formula.right)
            stack.append(fulfil)
            defer = cover
            defer.pending.append(formula.left)
            defer.next_obligations.add(formula)
            defer.eventualities.add(formula)
            stack.append(defer)
        elif isinstance(formula, Release):
            # R(q, p) = p /\ (q \/ X R(q, p)).
            release_now = cover.clone()
            release_now.pending.append(formula.right)
            release_now.pending.append(formula.left)
            stack.append(release_now)
            defer = cover
            defer.pending.append(formula.right)
            defer.next_obligations.add(formula)
            stack.append(defer)
        elif isinstance(formula, LNot):
            raise DecisionProcedureError(
                f"tableau input must be in negation normal form, found {formula}"
            )
        else:
            raise DecisionProcedureError(
                f"unsupported formula in tableau construction: {formula}"
            )
    return results


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


def build_graph(formula: LTLFormula, negate: bool = False) -> TableauGraph:
    """Construct ``Graph(formula)`` (or ``Graph(~formula)`` with ``negate``).

    The returned graph's ``initial_nodes`` are the covers of the (possibly
    negated) root formula; every node's outgoing edges carry the node's own
    literal commitments, following Appendix B's convention that the ``i``-th
    edge of a path constrains the ``i``-th state.
    """
    from .syntax import LNot as _LNot  # local alias to avoid confusion

    root = to_nnf(_LNot(formula)) if negate else to_nnf(formula)
    graph = TableauGraph(root)

    node_of_cover: Dict[Tuple[FrozenSet, FrozenSet, FrozenSet, FrozenSet], int] = {}
    expansion_queue: List[int] = []

    def intern_cover(cover) -> int:
        literals, nexts, eventualities, full = cover
        key = (literals, nexts, eventualities, full)
        if key in node_of_cover:
            return node_of_cover[key]
        index = len(graph.nodes)
        node = Node(
            index=index,
            formulas=full,
            literals=literals,
            next_obligations=nexts,
            eventualities=eventualities,
        )
        graph.nodes[index] = node
        node_of_cover[key] = index
        expansion_queue.append(index)
        return index

    for cover in cover_sets([root]):
        graph.initial_nodes.append(intern_cover(cover))

    expanded: Set[int] = set()
    cover_cache: Dict[FrozenSet[LTLFormula], List] = {}
    while expansion_queue:
        index = expansion_queue.pop()
        if index in expanded:
            continue
        expanded.add(index)
        node = graph.nodes[index]
        obligations = frozenset(node.next_obligations)
        if obligations not in cover_cache:
            cover_cache[obligations] = cover_sets(obligations)
        successor_covers = cover_cache[obligations]
        for cover in successor_covers:
            target = intern_cover(cover)
            graph.edges.append(
                Edge(
                    source=index,
                    target=target,
                    literals=node.literals,
                    eventualities=node.eventualities,
                )
            )
    return graph
