"""Explicit-model semantics for propositional LTL over lasso traces.

Used to cross-check the tableau decision procedures: a formula the tableau
declares satisfiable should have a model, and a formula declared valid must
hold on every randomly generated lasso trace.

Interpretations follow Appendix B: an interpretation is an infinite sequence
of states, each assigning Boolean values to the propositional symbols; the
connectives are interpreted as usual, with the paper's ``U`` being weak.  We
represent infinite interpretations with the same lasso traces used by the
interval-logic evaluator (boolean state variables named after the
propositions).  Theory atoms are evaluated like propositions via their
``name`` — callers generating models for combined theories must supply
consistent valuations themselves.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..errors import EvaluationError
from ..semantics.trace import INFINITY, Trace
from .syntax import (
    Henceforth,
    LAnd,
    LFalse,
    LIff,
    LImplies,
    LNot,
    LOr,
    LProp,
    LTrue,
    LTLFormula,
    Next,
    Release,
    Sometime,
    StrongUntil,
    TheoryAtom,
    Until,
)

__all__ = ["ltl_holds", "ltl_satisfies"]


def _rep_positions(trace: Trace, position: int) -> range:
    """Positions whose suffixes are pairwise distinct, from ``position`` on."""
    if position >= trace.loop_start:
        return range(position, position + trace.period)
    return range(position, trace.length + 1)


def ltl_holds(formula: LTLFormula, trace: Trace, position: int = 1,
              _memo: Union[Dict, None] = None) -> bool:
    """Does ``formula`` hold at ``position`` (1-based) of the lasso ``trace``?"""
    if _memo is None:
        _memo = {}
    canonical = position if position <= trace.length else trace.canonical(position)
    key = (formula, canonical)
    if key in _memo:
        return _memo[key]
    # Seed the memo to break cycles through the lasso for the fixpoint
    # operators; the seed values are the correct limits (least fixpoint for
    # Us, greatest for R).
    if isinstance(formula, StrongUntil):
        _memo[key] = False
    elif isinstance(formula, Release):
        _memo[key] = True
    result = _evaluate(formula, trace, canonical, _memo)
    _memo[key] = result
    return result


def _evaluate(formula: LTLFormula, trace: Trace, position: int, memo: Dict) -> bool:
    state = trace.state_at(position)
    if isinstance(formula, LTrue):
        return True
    if isinstance(formula, LFalse):
        return False
    if isinstance(formula, (LProp, TheoryAtom)):
        return bool(state.get(formula.name, False))
    if isinstance(formula, LNot):
        return not ltl_holds(formula.operand, trace, position, memo)
    if isinstance(formula, LAnd):
        return ltl_holds(formula.left, trace, position, memo) and ltl_holds(
            formula.right, trace, position, memo
        )
    if isinstance(formula, LOr):
        return ltl_holds(formula.left, trace, position, memo) or ltl_holds(
            formula.right, trace, position, memo
        )
    if isinstance(formula, LImplies):
        return (not ltl_holds(formula.left, trace, position, memo)) or ltl_holds(
            formula.right, trace, position, memo
        )
    if isinstance(formula, LIff):
        return ltl_holds(formula.left, trace, position, memo) == ltl_holds(
            formula.right, trace, position, memo
        )
    if isinstance(formula, Next):
        return ltl_holds(formula.operand, trace, position + 1, memo)
    if isinstance(formula, Henceforth):
        return all(
            ltl_holds(formula.operand, trace, k, memo)
            for k in _rep_positions(trace, position)
        )
    if isinstance(formula, Sometime):
        return any(
            ltl_holds(formula.operand, trace, k, memo)
            for k in _rep_positions(trace, position)
        )
    if isinstance(formula, Until):
        # Weak until: []p or (q at some u >= t with p at all t <= v < u).
        return _evaluate(Henceforth(formula.left), trace, position, memo) or _evaluate(
            StrongUntil(formula.left, formula.right), trace, position, memo
        )
    if isinstance(formula, StrongUntil):
        # Bounded unrolling over distinct suffixes: q must hold at some
        # representative position with p holding before it; because the
        # suffixes repeat beyond one period, scanning the representatives plus
        # one extra period is exhaustive.
        positions = list(_rep_positions(trace, position))
        extra = range(positions[-1] + 1, positions[-1] + 1 + trace.period)
        for u in list(positions) + list(extra):
            if ltl_holds(formula.right, trace, u, memo):
                if all(ltl_holds(formula.left, trace, v, memo) for v in range(position, u)):
                    return True
        return False
    if isinstance(formula, Release):
        # R(q, p): p holds up to and including the first q (or forever).
        positions = list(_rep_positions(trace, position))
        extra = range(positions[-1] + 1, positions[-1] + 1 + trace.period)
        scanned = list(positions) + list(extra)
        for u in scanned:
            if not ltl_holds(formula.right, trace, u, memo):
                # p fails at u: need some q at v <= u releasing the obligation
                # strictly before the failure... R requires p until (and
                # including) the instant q first holds.
                return any(
                    ltl_holds(formula.left, trace, v, memo) for v in range(position, u)
                )
        return True
    raise EvaluationError(f"unknown LTL formula node: {formula!r}")


def ltl_satisfies(trace: Trace, formula: LTLFormula) -> bool:
    """Does the computation (position 1) satisfy ``formula``?"""
    return ltl_holds(formula, trace, 1)
