"""Translation of the LTL fragment of interval logic into propositional LTL.

The paper notes that interval logic "has a complete axiomatization, through a
reduction to linear-time temporal logic"; the full reduction is not given.
This module translates the *LTL fragment* of the interval language — formulas
built from propositional atoms, the Boolean connectives, ``[]``, ``<>``, and
interval-eventualities ``*e`` over events defined by propositional formulas
(via valid formula V5: ``*a === <>(~a /\\ <>a)``) — so that the Appendix B
tableau can decide them exactly.  Formulas outside the fragment raise
:class:`repro.errors.TranslationError`; they are handled by the bounded
small-scope checker instead (see DESIGN.md).
"""

from __future__ import annotations

from ..errors import TranslationError
from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from ..syntax.intervals import EventTerm
from ..syntax.terms import Prop
from .syntax import (
    Henceforth,
    LAnd,
    LFalse,
    LIff,
    LImplies,
    LNot,
    LOr,
    LProp,
    LTrue,
    LTLFormula,
    Sometime,
)

__all__ = ["interval_to_ltl", "is_in_ltl_fragment"]


def interval_to_ltl(formula: Formula) -> LTLFormula:
    """Translate an interval-logic formula in the LTL fragment to LTL."""
    if isinstance(formula, Atom):
        predicate = formula.predicate
        if isinstance(predicate, Prop):
            return LProp(predicate.name)
        raise TranslationError(
            f"only propositional atoms are in the LTL fragment: {predicate}"
        )
    if isinstance(formula, TrueFormula):
        return LTrue()
    if isinstance(formula, FalseFormula):
        return LFalse()
    if isinstance(formula, Not):
        return LNot(interval_to_ltl(formula.operand))
    if isinstance(formula, And):
        return LAnd(interval_to_ltl(formula.left), interval_to_ltl(formula.right))
    if isinstance(formula, Or):
        return LOr(interval_to_ltl(formula.left), interval_to_ltl(formula.right))
    if isinstance(formula, Implies):
        return LImplies(interval_to_ltl(formula.left), interval_to_ltl(formula.right))
    if isinstance(formula, Iff):
        return LIff(interval_to_ltl(formula.left), interval_to_ltl(formula.right))
    if isinstance(formula, Always):
        return Henceforth(interval_to_ltl(formula.operand))
    if isinstance(formula, Eventually):
        return Sometime(interval_to_ltl(formula.operand))
    if isinstance(formula, Occurs):
        term = formula.term
        if isinstance(term, EventTerm):
            # Valid formula V5: *a  ===  <>(~a /\ <>a).
            body = interval_to_ltl(term.formula)
            return Sometime(LAnd(LNot(body), Sometime(body)))
        raise TranslationError(
            "only event-term occurrences are in the LTL fragment: " f"{formula}"
        )
    raise TranslationError(f"formula outside the LTL fragment: {formula}")


def is_in_ltl_fragment(formula: Formula) -> bool:
    """Can the formula be translated by :func:`interval_to_ltl`?"""
    try:
        interval_to_ltl(formula)
        return True
    except TranslationError:
        return False
