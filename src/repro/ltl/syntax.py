"""Propositional linear-time temporal logic (the Appendix B substrate).

Appendix B works with discrete linear-time propositional temporal logic whose
formulas are built from predicate symbols / atoms, the Boolean connectives,
and the temporal connectives ``[]`` (henceforth), ``<>`` (eventually), ``U``
(until) and ``o`` (next time).  Its ``U`` is the *weak* until: ``U(p, q)`` is
true if ``p`` is henceforth true and ``q`` never becomes true.

Atoms come in two flavours:

* :class:`LProp` — an uninterpreted propositional symbol;
* :class:`TheoryAtom` — an assertion in a specialized theory (e.g.
  ``x > 0``), carrying the constraint payload understood by the theory
  solvers of :mod:`repro.theories` and the variables it mentions, each marked
  *state* (value may change with time) or *extralogical* (rigid).

Negation-normal-form conversion targets the operator set
``{literal, /\\, \\/, X, U_s (strong until), R (release)}`` used by the
tableau construction; the surface operators are translated by::

    <> a      =  U_s(True, a)
    [] a      =  R(False, a)
    U(p, q)   =  R(q, p \\/ q)          (weak until)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterator, Mapping, Optional, Tuple

from ..errors import SyntaxConstructionError

__all__ = [
    "LTLFormula",
    "LTrue",
    "LFalse",
    "LProp",
    "TheoryAtom",
    "LNot",
    "LAnd",
    "LOr",
    "LImplies",
    "LIff",
    "Next",
    "Henceforth",
    "Sometime",
    "Until",
    "StrongUntil",
    "Release",
    "lit_and",
    "lit_or",
    "to_nnf",
    "ltl_size",
    "walk_ltl",
]


class LTLFormula:
    """Base class of LTL formulas."""

    def children(self) -> Iterator["LTLFormula"]:
        return iter(())

    def __and__(self, other: "LTLFormula") -> "LTLFormula":
        return LAnd(self, other)

    def __or__(self, other: "LTLFormula") -> "LTLFormula":
        return LOr(self, other)

    def __invert__(self) -> "LTLFormula":
        return LNot(self)


@dataclass(frozen=True)
class LTrue(LTLFormula):
    def __str__(self) -> str:
        return "True"


@dataclass(frozen=True)
class LFalse(LTLFormula):
    def __str__(self) -> str:
        return "False"


@dataclass(frozen=True)
class LProp(LTLFormula):
    """An uninterpreted propositional symbol."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("proposition name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TheoryAtom(LTLFormula):
    """An atom interpreted by a specialized theory.

    ``constraint`` is an opaque hashable payload the theory solver
    understands (the linear-arithmetic theory uses
    :class:`repro.theories.linear.LinearConstraint`).  ``state_vars`` and
    ``rigid_vars`` list the variables the constraint mentions, split by kind
    (Appendix B §2): state variables may change value from instant to
    instant, extralogical (rigid) variables may not.
    """

    name: str
    constraint: Any = None
    state_vars: Tuple[str, ...] = ()
    rigid_vars: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("theory atom name must be non-empty")
        object.__setattr__(self, "state_vars", tuple(self.state_vars))
        object.__setattr__(self, "rigid_vars", tuple(self.rigid_vars))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LNot(LTLFormula):
    operand: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.operand

    def __str__(self) -> str:
        return f"~{self.operand}"


@dataclass(frozen=True)
class LAnd(LTLFormula):
    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} /\\ {self.right})"


@dataclass(frozen=True)
class LOr(LTLFormula):
    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} \\/ {self.right})"


@dataclass(frozen=True)
class LImplies(LTLFormula):
    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class LIff(LTLFormula):
    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


@dataclass(frozen=True)
class Next(LTLFormula):
    """``o a`` — true now iff ``a`` is true at the next instant."""

    operand: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.operand

    def __str__(self) -> str:
        return f"X{self.operand}"


@dataclass(frozen=True)
class Henceforth(LTLFormula):
    """``[] a``."""

    operand: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.operand

    def __str__(self) -> str:
        return f"[]{self.operand}"


@dataclass(frozen=True)
class Sometime(LTLFormula):
    """``<> a``."""

    operand: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.operand

    def __str__(self) -> str:
        return f"<>{self.operand}"


@dataclass(frozen=True)
class Until(LTLFormula):
    """The paper's weak until: ``U(p, q)`` does not imply ``<> q``."""

    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"U({self.left}, {self.right})"


@dataclass(frozen=True)
class StrongUntil(LTLFormula):
    """Strong until (implies the eventuality of its second argument)."""

    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"Us({self.left}, {self.right})"


@dataclass(frozen=True)
class Release(LTLFormula):
    """Release — the dual of strong until: ``R(q, p) === ~Us(~q, ~p)``."""

    left: LTLFormula
    right: LTLFormula

    def children(self) -> Iterator[LTLFormula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"R({self.left}, {self.right})"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def lit_and(*operands: LTLFormula) -> LTLFormula:
    items = list(operands)
    if not items:
        return LTrue()
    result = items[0]
    for item in items[1:]:
        result = LAnd(result, item)
    return result


def lit_or(*operands: LTLFormula) -> LTLFormula:
    items = list(operands)
    if not items:
        return LFalse()
    result = items[0]
    for item in items[1:]:
        result = LOr(result, item)
    return result


def walk_ltl(formula: LTLFormula) -> Iterator[LTLFormula]:
    yield formula
    for child in formula.children():
        yield from walk_ltl(formula=child)


def ltl_size(formula: LTLFormula) -> int:
    return sum(1 for _ in walk_ltl(formula))


def _negate(formula: LTLFormula) -> LTLFormula:
    """Push one negation through a formula (used by NNF conversion)."""
    if isinstance(formula, LTrue):
        return LFalse()
    if isinstance(formula, LFalse):
        return LTrue()
    if isinstance(formula, (LProp, TheoryAtom)):
        return LNot(formula)
    if isinstance(formula, LNot):
        return to_nnf(formula.operand)
    if isinstance(formula, LAnd):
        return LOr(_negate(formula.left), _negate(formula.right))
    if isinstance(formula, LOr):
        return LAnd(_negate(formula.left), _negate(formula.right))
    if isinstance(formula, LImplies):
        return LAnd(to_nnf(formula.left), _negate(formula.right))
    if isinstance(formula, LIff):
        return to_nnf(LNot(LAnd(LImplies(formula.left, formula.right),
                                LImplies(formula.right, formula.left))))
    if isinstance(formula, Next):
        return Next(_negate(formula.operand))
    if isinstance(formula, Henceforth):
        # ~[]a = <>~a
        return StrongUntil(LTrue(), _negate(formula.operand))
    if isinstance(formula, Sometime):
        # ~<>a = []~a
        return Release(LFalse(), _negate(formula.operand))
    if isinstance(formula, Until):
        # Weak until U(p, q) = R(q, p \/ q); negate the release form.
        return _negate(to_nnf(formula))
    if isinstance(formula, StrongUntil):
        return Release(_negate(formula.left), _negate(formula.right))
    if isinstance(formula, Release):
        return StrongUntil(_negate(formula.left), _negate(formula.right))
    raise SyntaxConstructionError(f"cannot negate LTL formula: {formula!r}")


def to_nnf(formula: LTLFormula) -> LTLFormula:
    """Negation normal form over ``{literal, /\\, \\/, X, Us, R}``."""
    if isinstance(formula, (LTrue, LFalse, LProp, TheoryAtom)):
        return formula
    if isinstance(formula, LNot):
        return _negate(formula.operand)
    if isinstance(formula, LAnd):
        return LAnd(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LOr):
        return LOr(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LImplies):
        return LOr(_negate(formula.left), to_nnf(formula.right))
    if isinstance(formula, LIff):
        return LAnd(
            LOr(_negate(formula.left), to_nnf(formula.right)),
            LOr(_negate(formula.right), to_nnf(formula.left)),
        )
    if isinstance(formula, Next):
        return Next(to_nnf(formula.operand))
    if isinstance(formula, Henceforth):
        return Release(LFalse(), to_nnf(formula.operand))
    if isinstance(formula, Sometime):
        return StrongUntil(LTrue(), to_nnf(formula.operand))
    if isinstance(formula, Until):
        # Weak until: U(p, q) = R(q, p \/ q).
        p = to_nnf(formula.left)
        q = to_nnf(formula.right)
        return Release(q, LOr(p, q))
    if isinstance(formula, StrongUntil):
        return StrongUntil(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, Release):
        return Release(to_nnf(formula.left), to_nnf(formula.right))
    raise SyntaxConstructionError(f"cannot normalize LTL formula: {formula!r}")
