"""Propositional linear-time temporal logic and the Appendix B decision procedures."""

from .syntax import (
    Henceforth,
    LAnd,
    LFalse,
    LIff,
    LImplies,
    LNot,
    LOr,
    LProp,
    LTrue,
    LTLFormula,
    Next,
    Release,
    Sometime,
    StrongUntil,
    TheoryAtom,
    Until,
    lit_and,
    lit_or,
    ltl_size,
    to_nnf,
)
from .semantics import ltl_holds, ltl_satisfies
from .tableau import TableauGraph, build_graph
from .decision import DecisionResult, DecisionStatistics, TableauDecider, is_satisfiable, is_valid
from .algorithm_b import AlgorithmB, AlgorithmBResult, ConditionDisjunct
from .translation import interval_to_ltl, is_in_ltl_fragment

__all__ = [
    "Henceforth", "LAnd", "LFalse", "LIff", "LImplies", "LNot", "LOr", "LProp",
    "LTrue", "LTLFormula", "Next", "Release", "Sometime", "StrongUntil",
    "TheoryAtom", "Until", "lit_and", "lit_or", "ltl_size", "to_nnf",
    "ltl_holds", "ltl_satisfies", "TableauGraph", "build_graph",
    "DecisionResult", "DecisionStatistics", "TableauDecider",
    "is_satisfiable", "is_valid",
    "AlgorithmB", "AlgorithmBResult", "ConditionDisjunct",
    "interval_to_ltl", "is_in_ltl_fragment",
]
