"""Algorithm B of Appendix B §5: theory-free conditions via double fixpoint.

Given a temporal formula ``A``, Algorithm B constructs the tableau graph of
``~A`` and computes a *maximal* condition ``C = \\/_i [] C_i`` — a
disjunction of "henceforth" Boolean combinations of ``A``'s literals — such
that ``TL |= (C -> A)``.  Theorem 1 then reduces validity modulo a theory to
pure theory queries::

    TL(T) |= A    iff    T |= C_i   for some i

with every state variable universally quantified inside its ``C_i`` and the
extralogical (rigid) variables universally quantified outside the whole
disjunction (formula (2) of the paper).  The procedure is modular: the
tableau never consults the theory, and the theory is consulted only on the
final conditions.

The conditions are computed from the per-node quantities ``delete(N)`` ("the
condition under which node N is deleted") and ``fail(A, N)`` ("the condition
under which eventuality A is unreachable from N"), defined by equations (3)
and (4) of the paper and solved by the least/greatest double fixpoint
iteration of §5.3.  Conditions are represented in disjunctive normal form
over *edge-label atoms*: the atom for edge ``e`` stands for
``[] ~prop(e)`` — "the literal conjunction labeling ``e`` can never hold".
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import DecisionProcedureError
from ..theories.base import Literal as TheoryLiteral
from ..theories.base import Theory
from ..theories.linear import LinearConstraint
from .syntax import LNot, LProp, LTLFormula, TheoryAtom
from .tableau import Edge, TableauGraph, build_graph

__all__ = ["Condition", "ConditionDisjunct", "AlgorithmBResult", "AlgorithmB"]


# A DNF condition: a frozenset of conjunctions; each conjunction is a
# frozenset of edge-label atoms; an edge-label atom is the frozenset of
# literals labeling the edge (identical labels share one atom).
Atom = FrozenSet
Conjunction = FrozenSet
Condition = FrozenSet

FALSE: Condition = frozenset()
TRUE: Condition = frozenset({frozenset()})


def _absorb(disjuncts: Set[Conjunction]) -> Condition:
    """Remove conjunctions subsumed by weaker (subset) conjunctions."""
    kept: List[Conjunction] = []
    for conjunction in sorted(disjuncts, key=len):
        if any(other <= conjunction for other in kept):
            continue
        kept.append(conjunction)
    return frozenset(kept)


def cond_or(left: Condition, right: Condition) -> Condition:
    return _absorb(set(left) | set(right))


def cond_and(left: Condition, right: Condition) -> Condition:
    if left == FALSE or right == FALSE:
        return FALSE
    return _absorb({a | b for a in left for b in right})


@dataclass(frozen=True)
class ConditionDisjunct:
    """One ``[] C_i``: the set of edge labels that must never hold."""

    forbidden_labels: Tuple[FrozenSet[LTLFormula], ...]

    def clauses(self) -> List[List[Tuple[LTLFormula, bool]]]:
        """``C_i`` as a CNF: for each forbidden label ``l1 /\\ ... /\\ lk``,
        the clause ``~l1 \\/ ... \\/ ~lk`` (literals as (atom, negated) pairs)."""
        cnf: List[List[Tuple[LTLFormula, bool]]] = []
        for label in self.forbidden_labels:
            clause: List[Tuple[LTLFormula, bool]] = []
            for literal in label:
                negated = isinstance(literal, LNot)
                atom = literal.operand if negated else literal
                clause.append((atom, not negated))
            cnf.append(clause)
        return cnf

    def __str__(self) -> str:
        parts = []
        for label in self.forbidden_labels:
            rendered = " /\\ ".join(sorted(str(l) for l in label)) or "True"
            parts.append(f"[]~({rendered})")
        return " /\\ ".join(parts) if parts else "True"


@dataclass
class AlgorithmBResult:
    """The condition ``C`` plus (optionally) the theory verdict."""

    formula: LTLFormula
    disjuncts: Tuple[ConditionDisjunct, ...]
    valid_in_pure_tl: bool
    valid_modulo_theory: Optional[bool]
    construction_seconds: float
    iteration_seconds: float
    nodes: int
    edges: int

    def __str__(self) -> str:
        rendered = " \\/ ".join(f"({d})" for d in self.disjuncts) or "False"
        return f"C = {rendered}"


class AlgorithmB:
    """Compute the condition ``C`` and decide validity modulo a theory."""

    def __init__(self, theory: Optional[Theory] = None) -> None:
        self._theory = theory

    # -- condition computation --------------------------------------------------------

    def compute_condition(self, formula: LTLFormula) -> AlgorithmBResult:
        start = time.perf_counter()
        graph = build_graph(formula, negate=True)
        construction = time.perf_counter() - start

        start = time.perf_counter()
        condition = self._double_fixpoint(graph)
        iteration = time.perf_counter() - start

        disjuncts = tuple(
            ConditionDisjunct(tuple(sorted(conjunction, key=lambda s: sorted(map(str, s)))))
            for conjunction in condition
        )
        # A is valid in pure TL iff C has a disjunct with no requirements
        # (delete(initial) == True unconditionally).
        valid_pure = any(len(d.forbidden_labels) == 0 for d in disjuncts)
        valid_theory: Optional[bool] = None
        if self._theory is not None:
            valid_theory = self.decide_with_theory(disjuncts)
        return AlgorithmBResult(
            formula=formula,
            disjuncts=disjuncts,
            valid_in_pure_tl=valid_pure,
            valid_modulo_theory=valid_theory,
            construction_seconds=construction,
            iteration_seconds=iteration,
            nodes=graph.node_count,
            edges=graph.edge_count,
        )

    def _double_fixpoint(self, graph: TableauGraph) -> Condition:
        edges_of: Dict[int, List[Edge]] = {}
        for edge in graph.edges:
            edges_of.setdefault(edge.source, []).append(edge)
        eventualities = sorted(
            {ev for edge in graph.edges for ev in edge.eventualities}, key=str
        )
        nodes = list(graph.nodes)

        delete: Dict[int, Condition] = {n: FALSE for n in nodes}
        fail: Dict[Tuple[LTLFormula, int], Condition] = {
            (ev, n): TRUE for ev in eventualities for n in nodes
        }

        def atom_of(edge: Edge) -> Condition:
            """The condition ``[] ~prop(e)`` as a one-atom DNF.

            An edge whose label is the empty conjunction (``True``) can never
            be forbidden, so its condition is ``False``.
            """
            if not edge.literals:
                return FALSE
            return frozenset({frozenset({edge.literals})})

        def delete_step(node: int) -> Condition:
            result = TRUE
            for edge in edges_of.get(node, []):
                term = cond_or(atom_of(edge), delete[edge.target])
                for ev in edge.eventualities:
                    term = cond_or(term, fail[(ev, edge.target)])
                result = cond_and(result, term)
            if not edges_of.get(node):
                # A node with no successors is deleted unconditionally.
                result = TRUE
            return result

        def fail_step(ev: LTLFormula, node: int) -> Condition:
            result = TRUE
            for edge in edges_of.get(node, []):
                term = cond_or(atom_of(edge), delete[edge.target])
                if ev in edge.eventualities:
                    term = cond_or(term, fail[(ev, edge.target)])
                # If the eventuality is fulfilled at this node (not pending on
                # the edge), the only way it still fails via this edge is the
                # edge being impossible or its target deleted.
                result = cond_and(result, term)
            if not edges_of.get(node):
                result = TRUE
            return result

        def fail_fixpoint() -> None:
            """Recompute the fail conditions to their fixpoint (fail reset to True)."""
            for key in fail:
                fail[key] = TRUE
            changed = True
            while changed:
                changed = False
                for ev in eventualities:
                    for node in nodes:
                        updated = fail_step(ev, node)
                        if updated != fail[(ev, node)]:
                            fail[(ev, node)] = updated
                            changed = True

        def delete_fixpoint() -> bool:
            """Iterate the delete conditions to their fixpoint; report change."""
            any_change = False
            changed = True
            while changed:
                changed = False
                for node in nodes:
                    updated = cond_or(delete[node], delete_step(node))
                    if updated != delete[node]:
                        delete[node] = updated
                        changed = True
                        any_change = True
            return any_change

        # The paper's steps 3-6: iterate (fail to fixpoint with fail reset to
        # True, then delete to fixpoint) until delete stabilizes.
        while True:
            fail_fixpoint()
            if not delete_fixpoint():
                break

        # C is the conjunction of delete over the initial covers of ~A.
        condition = TRUE
        for initial in graph.initial_nodes:
            condition = cond_and(condition, delete[initial])
        return condition

    # -- theory queries ----------------------------------------------------------------

    def decide_with_theory(self, disjuncts: Sequence[ConditionDisjunct]) -> bool:
        """Theorem 1 / formula (2): validity of ``A`` in ``TL(T)``."""
        if self._theory is None:
            raise DecisionProcedureError("no theory configured for Algorithm B")
        rigid_vars: Set[str] = set()
        for disjunct in disjuncts:
            for label in disjunct.forbidden_labels:
                for literal in label:
                    atom = literal.operand if isinstance(literal, LNot) else literal
                    if isinstance(atom, TheoryAtom):
                        rigid_vars.update(atom.rigid_vars)
        # Simple case (no extralogical variables): exists i with T |= C_i.
        for disjunct in disjuncts:
            clauses = self._to_theory_clauses(disjunct.clauses())
            if self._theory.is_valid_clauses(clauses):
                return True
        if not rigid_vars:
            return False
        # Extralogical variables: T |= forall rigid . \/_i (forall state . C_i).
        # State variables are renamed apart per disjunct and the disjunction of
        # CNFs is distributed back into one CNF.
        renamed: List[List[List[TheoryLiteral]]] = []
        for index, disjunct in enumerate(disjuncts):
            clauses = self._to_theory_clauses(disjunct.clauses(), suffix=f"__d{index}",
                                              rigid=rigid_vars)
            renamed.append(clauses)
        if not renamed:
            return False
        distributed: List[List[TheoryLiteral]] = []
        for selection in itertools.product(*renamed):
            merged: List[TheoryLiteral] = []
            for clause in selection:
                merged.extend(clause)
            distributed.append(merged)
        return self._theory.is_valid_clauses(distributed)

    @staticmethod
    def _rename_atom(atom: TheoryAtom, suffix: str, rigid: Set[str]) -> TheoryAtom:
        """Rename the state variables of an atom (linear payloads and names)."""
        mapping = {v: v + suffix for v in atom.state_vars if v not in rigid}
        constraint = atom.constraint
        if isinstance(constraint, LinearConstraint):
            coefficients = {
                mapping.get(name, name): value for name, value in constraint.coefficients
            }
            constraint = LinearConstraint.make(coefficients, constraint.op, constraint.constant)
        new_state = tuple(mapping.get(v, v) for v in atom.state_vars)
        name = atom.name + suffix if mapping else atom.name
        return TheoryAtom(name=name, constraint=constraint,
                          state_vars=new_state, rigid_vars=atom.rigid_vars)

    def _to_theory_clauses(
        self,
        clauses: List[List[Tuple[LTLFormula, bool]]],
        suffix: str = "",
        rigid: Optional[Set[str]] = None,
    ) -> List[List[TheoryLiteral]]:
        """Convert edge-label clauses to theory literals, wrapping plain
        propositions as uninterpreted theory atoms."""
        rigid = rigid or set()
        converted: List[List[TheoryLiteral]] = []
        for clause in clauses:
            theory_clause: List[TheoryLiteral] = []
            for atom, negated in clause:
                if isinstance(atom, TheoryAtom):
                    renamed = self._rename_atom(atom, suffix, rigid) if suffix else atom
                    theory_clause.append((renamed, negated))
                elif isinstance(atom, LProp):
                    name = atom.name + suffix if suffix else atom.name
                    theory_clause.append((TheoryAtom(name=name), negated))
                else:
                    raise DecisionProcedureError(
                        f"unexpected literal atom in condition: {atom!r}"
                    )
            converted.append(theory_clause)
        return converted
