"""A fluent construction DSL for interval-logic formulas.

Writing the paper's specifications directly with the AST constructors is
verbose; this module provides short helpers so a specification reads close to
the paper's notation.  Example — valid formula V9,
``[ alpha => begin(not alpha) ] [] alpha``::

    from repro.syntax.builder import prop, event, begin, forward, interval, always

    a = prop("a")
    f = interval(forward(event(a), begin(event(~a))), always(a))

The helpers never hide structure: each returns exactly one AST node (or the
obvious composition for ``forward``/``backward`` with event coercion).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from ..errors import SyntaxConstructionError
from .formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
    conjoin,
    disjoin,
)
from .intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from .terms import (
    Apply,
    BinOp,
    Cmp,
    Const,
    Expr,
    FalsePredicate,
    LogicalVar,
    OpAfter,
    OpAt,
    OpIn,
    Predicate,
    Prop,
    StartPredicate,
    TruePredicate,
    Var,
)

__all__ = [
    "prop",
    "atom",
    "true",
    "false",
    "start",
    "var",
    "lvar",
    "const",
    "add",
    "sub",
    "apply_fn",
    "cmp",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "land",
    "lor",
    "lnot",
    "implies",
    "iff",
    "always",
    "eventually",
    "interval",
    "occurs",
    "forall",
    "bind_next",
    "event",
    "begin",
    "end",
    "forward",
    "backward",
    "star",
    "at_op",
    "in_op",
    "after_op",
    "whole_context",
    "to_formula",
    "to_term",
    "to_expr",
]


FormulaLike = Union[Formula, Predicate, bool]
TermLike = Union[IntervalTerm, Formula, Predicate, bool]
ExprLike = Union[Expr, int, float, str]


def to_expr(value: ExprLike) -> Expr:
    """Coerce a Python value into a state expression.

    Strings become state variables, numbers become constants, and existing
    expressions pass through unchanged.  Use :func:`lvar` / :func:`const`
    explicitly when a string should be a rigid variable or a literal string.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool):
        raise SyntaxConstructionError(
            "booleans are formulas, not state expressions; use true()/false()"
        )
    if isinstance(value, (int, float)):
        return Const(value)
    return Const(value)


def to_formula(value: FormulaLike) -> Formula:
    """Coerce predicates and booleans into formulas."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, Predicate):
        return Atom(value)
    if value is True:
        return TrueFormula()
    if value is False:
        return FalseFormula()
    raise SyntaxConstructionError(f"cannot interpret {value!r} as a formula")


def to_term(value: TermLike) -> IntervalTerm:
    """Coerce formulas/predicates into event terms; pass interval terms through."""
    if isinstance(value, IntervalTerm):
        return value
    return EventTerm(to_formula(value))


# -- atoms and expressions ---------------------------------------------------


def prop(name: str) -> Formula:
    """A boolean state variable used as an atomic formula."""
    return Atom(Prop(name))


def atom(predicate: Predicate) -> Formula:
    """Wrap an arbitrary predicate as an atomic formula."""
    return Atom(predicate)


def true() -> Formula:
    return TrueFormula()


def false() -> Formula:
    return FalseFormula()


def start() -> Formula:
    """The distinguished ``start`` predicate used for Init clauses."""
    return Atom(StartPredicate())


def var(name: str) -> Expr:
    """A state variable as an expression."""
    return Var(name)


def lvar(name: str) -> Expr:
    """A logical (rigid) variable as an expression."""
    return LogicalVar(name)


def const(value: Any) -> Expr:
    """A literal constant as an expression."""
    return Const(value)


def add(left: ExprLike, right: ExprLike) -> Expr:
    return BinOp("+", to_expr(left), to_expr(right))


def sub(left: ExprLike, right: ExprLike) -> Expr:
    return BinOp("-", to_expr(left), to_expr(right))


def apply_fn(name: str, *args: ExprLike) -> Expr:
    """Apply a registered named function, e.g. ``apply_fn("flip", var("exp"))``."""
    return Apply(name, tuple(to_expr(a) for a in args))


def cmp(left: ExprLike, op: str, right: ExprLike) -> Formula:
    """A comparison predicate as an atomic formula."""
    return Atom(Cmp(to_expr(left), op, to_expr(right)))


def eq(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, "==", right)


def ne(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, "!=", right)


def lt(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, "<", right)


def le(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, "<=", right)


def gt(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, ">", right)


def ge(left: ExprLike, right: ExprLike) -> Formula:
    return cmp(left, ">=", right)


# -- propositional and temporal connectives ---------------------------------


def land(*operands: FormulaLike) -> Formula:
    """N-ary conjunction."""
    return conjoin(tuple(to_formula(op) for op in operands))


def lor(*operands: FormulaLike) -> Formula:
    """N-ary disjunction."""
    return disjoin(tuple(to_formula(op) for op in operands))


def lnot(operand: FormulaLike) -> Formula:
    return Not(to_formula(operand))


def implies(left: FormulaLike, right: FormulaLike) -> Formula:
    return Implies(to_formula(left), to_formula(right))


def iff(left: FormulaLike, right: FormulaLike) -> Formula:
    return Iff(to_formula(left), to_formula(right))


def always(operand: FormulaLike) -> Formula:
    """``[] alpha``."""
    return Always(to_formula(operand))


def eventually(operand: FormulaLike) -> Formula:
    """``<> alpha``."""
    return Eventually(to_formula(operand))


def interval(term: TermLike, body: FormulaLike) -> Formula:
    """``[ I ] alpha``."""
    return IntervalFormula(to_term(term), to_formula(body))


def occurs(term: TermLike) -> Formula:
    """``*I`` — the interval can be constructed."""
    return Occurs(to_term(term))


def forall(variables: Union[str, Sequence[str]], body: FormulaLike) -> Formula:
    """Universal quantification over rigid variables."""
    if isinstance(variables, str):
        variables = (variables,)
    return Forall(tuple(variables), to_formula(body))


def bind_next(
    operation: str, variables: Union[str, Sequence[str]], body: FormulaLike
) -> Formula:
    """The ``atO↑(a)`` next-call parameter-binding convention of Chapter 2.2."""
    if isinstance(variables, str):
        variables = (variables,)
    return NextBinding(operation, tuple(variables), to_formula(body))


# -- interval terms ----------------------------------------------------------


def event(formula: FormulaLike) -> IntervalTerm:
    """The event defined by a formula becoming true."""
    return EventTerm(to_formula(formula))


def begin(term: TermLike) -> IntervalTerm:
    return Begin(to_term(term))


def end(term: TermLike) -> IntervalTerm:
    return End(to_term(term))


def forward(
    left: Optional[TermLike] = None, right: Optional[TermLike] = None
) -> IntervalTerm:
    """``I => J`` with either argument omissible."""
    return Forward(
        to_term(left) if left is not None else None,
        to_term(right) if right is not None else None,
    )


def backward(
    left: Optional[TermLike] = None, right: Optional[TermLike] = None
) -> IntervalTerm:
    """``I <= J`` with either argument omissible."""
    return Backward(
        to_term(left) if left is not None else None,
        to_term(right) if right is not None else None,
    )


def star(term: TermLike) -> IntervalTerm:
    """The ``*`` interval-term modifier (the interval must be found)."""
    return Star(to_term(term))


def whole_context() -> IntervalTerm:
    """``=>`` with no arguments — the entire outer context (formula V7)."""
    return Forward(None, None)


# -- operation predicates ----------------------------------------------------


def at_op(operation: str, *args: ExprLike) -> Formula:
    """``atO(args...)`` as an atomic formula."""
    return Atom(OpAt(operation, tuple(to_expr(a) for a in args)))


def in_op(operation: str, *args: ExprLike) -> Formula:
    """``inO(args...)`` as an atomic formula."""
    return Atom(OpIn(operation, tuple(to_expr(a) for a in args)))


def after_op(operation: str, *args: ExprLike) -> Formula:
    """``afterO(args...)`` as an atomic formula."""
    return Atom(OpAfter(operation, tuple(to_expr(a) for a in args)))
