"""Interval-logic formulas (Chapter 2 / Chapter 3 syntax).

The grammar of interval formulas from Chapter 3 is::

    <interval formula> alpha ::= P | not beta | beta <connective> gamma
                               | <> beta | [] beta | *I | [ I ] beta

where ``P`` ranges over atomic state predicates and ``I`` over interval
terms.  The propositional connectives provided are conjunction, disjunction,
implication and equivalence; ``[] / <>`` are the familiar *henceforth* /
*eventually* operators re-interpreted over the current interval; ``*I`` is
the interval-eventuality ("the interval I can be constructed"); and
``[ I ] alpha`` is the interval formula proper: the next time interval ``I``
can be constructed in the current context, ``alpha`` holds for it (vacuously
true if ``I`` cannot be found).

Additionally this module provides:

* :class:`Forall` — outermost universal quantification over logical (rigid)
  variables, used by the queue / protocol specifications (``∀ a, b . ...``);
* :class:`NextBinding` — the ``atO↑(a)`` parameter-binding convention of
  Chapter 2.2, reduced away by :mod:`repro.semantics.reduction`.

All nodes are immutable, hashable, comparable structurally, and expose
``free_logical_vars`` / ``state_vars`` / ``atoms`` for use by the bounded
checker and the decision procedures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterator, Mapping, Tuple

from ..errors import SyntaxConstructionError
from .intervals import EventTerm, IntervalTerm, walk_term
from .terms import Predicate

__all__ = [
    "Formula",
    "Atom",
    "TrueFormula",
    "FalseFormula",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Always",
    "Eventually",
    "IntervalFormula",
    "Occurs",
    "Forall",
    "NextBinding",
    "walk_formula",
    "formula_size",
    "conjoin",
    "disjoin",
]


class Formula:
    """Base class of interval-logic formulas."""

    def free_logical_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """The formula's free logical variables, memoized per node.

        Identical to :meth:`free_logical_vars` but cached on the instance, so
        hot paths (the evaluator's memo keys) avoid re-walking the subtree.
        Nodes are immutable, which makes the cache safe.
        """
        try:
            return self._free_variables_cache  # type: ignore[attr-defined]
        except AttributeError:
            computed = self.free_logical_vars()
            # Nodes are frozen dataclasses; bypass their __setattr__ guard.
            object.__setattr__(self, "_free_variables_cache", computed)
            return computed

    def state_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def atoms(self) -> FrozenSet[Predicate]:
        """The set of atomic state predicates occurring in the formula."""
        raise NotImplementedError

    def children(self) -> Iterator["Formula"]:
        """Direct sub-formulas (interval-term event formulas included)."""
        return iter(())

    def interval_terms(self) -> Iterator[IntervalTerm]:
        """Interval terms attached directly to this node."""
        return iter(())

    # -- convenient operator overloading for building specifications -------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``f >> g`` builds the implication ``f ⊃ g``."""
        return Implies(self, other)


def _term_formulas(term: IntervalTerm) -> Iterator["Formula"]:
    """Yield the event formulas embedded in an interval term."""
    for sub in walk_term(term):
        if isinstance(sub, EventTerm):
            yield sub.formula


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic state predicate used as a formula.

    For a simple state predicate ``P``, the interval formula ``[ I ] P``
    requires ``P`` to be true in the *first* state of the interval
    (Chapter 2), which is exactly the satisfaction clause for atoms in the
    Chapter 3 model.
    """

    predicate: Predicate

    def __post_init__(self) -> None:
        if not isinstance(self.predicate, Predicate):
            raise SyntaxConstructionError(
                f"Atom requires a Predicate, got {type(self.predicate).__name__}"
            )

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.predicate.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.predicate.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return frozenset({self.predicate})

    def __str__(self) -> str:
        return str(self.predicate)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant formula ``True``."""

    def free_logical_vars(self) -> FrozenSet[str]:
        return frozenset()

    def state_vars(self) -> FrozenSet[str]:
        return frozenset()

    def atoms(self) -> FrozenSet[Predicate]:
        return frozenset()

    def __str__(self) -> str:
        return "True"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant formula ``False``."""

    def free_logical_vars(self) -> FrozenSet[str]:
        return frozenset()

    def state_vars(self) -> FrozenSet[str]:
        return frozenset()

    def atoms(self) -> FrozenSet[Predicate]:
        return frozenset()

    def __str__(self) -> str:
        return "False"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.operand.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.operand.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.operand.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.operand

    def __str__(self) -> str:
        return f"~{self.operand}"


class _Binary(Formula):
    """Shared implementation of binary propositional connectives."""

    left: Formula
    right: Formula
    SYMBOL = "?"

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.left.free_logical_vars() | self.right.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.left.state_vars() | self.right.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.left.atoms() | self.right.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.SYMBOL} {self.right})"


@dataclass(frozen=True)
class And(_Binary):
    """Conjunction."""

    left: Formula
    right: Formula
    SYMBOL = "/\\"


@dataclass(frozen=True)
class Or(_Binary):
    """Disjunction."""

    left: Formula
    right: Formula
    SYMBOL = "\\/"


@dataclass(frozen=True)
class Implies(_Binary):
    """Implication (the paper's ``⊃``)."""

    left: Formula
    right: Formula
    SYMBOL = "->"


@dataclass(frozen=True)
class Iff(_Binary):
    """Equivalence (the paper's ``≡``)."""

    left: Formula
    right: Formula
    SYMBOL = "<->"


@dataclass(frozen=True)
class Always(Formula):
    """``[] alpha`` — alpha holds at every suffix of the current interval."""

    operand: Formula

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.operand.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.operand.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.operand.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.operand

    def __str__(self) -> str:
        return f"[]{self.operand}"


@dataclass(frozen=True)
class Eventually(Formula):
    """``<> alpha`` — alpha holds at some suffix of the current interval."""

    operand: Formula

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.operand.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.operand.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.operand.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.operand

    def __str__(self) -> str:
        return f"<>{self.operand}"


def _term_logical_vars(term: IntervalTerm) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for f in _term_formulas(term):
        out |= f.free_logical_vars()
    return out


def _term_state_vars(term: IntervalTerm) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for f in _term_formulas(term):
        out |= f.state_vars()
    return out


def _term_atoms(term: IntervalTerm) -> FrozenSet[Predicate]:
    out: FrozenSet[Predicate] = frozenset()
    for f in _term_formulas(term):
        out |= f.atoms()
    return out


@dataclass(frozen=True)
class IntervalFormula(Formula):
    """``[ I ] alpha`` — the heart of the interval logic.

    The next time the interval ``I`` can be constructed in the current
    context, ``alpha`` holds for that interval; vacuously satisfied when
    ``I`` cannot be found (partial-correctness semantics, Chapter 3).
    """

    term: IntervalTerm
    body: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.term, IntervalTerm):
            raise SyntaxConstructionError(
                f"IntervalFormula requires an IntervalTerm, got "
                f"{type(self.term).__name__}"
            )

    def free_logical_vars(self) -> FrozenSet[str]:
        return _term_logical_vars(self.term) | self.body.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return _term_state_vars(self.term) | self.body.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return _term_atoms(self.term) | self.body.atoms()

    def children(self) -> Iterator[Formula]:
        yield from _term_formulas(self.term)
        yield self.body

    def interval_terms(self) -> Iterator[IntervalTerm]:
        yield self.term

    def __str__(self) -> str:
        return f"[{self.term}] {self.body}"


@dataclass(frozen=True)
class Occurs(Formula):
    """``*I`` — the interval ``I`` can be constructed in the current context.

    Defined in Chapter 2 as ``¬[I] False`` (valid formula V4); the evaluator
    treats it primitively and tests agreement with the definition.
    """

    term: IntervalTerm

    def __post_init__(self) -> None:
        if not isinstance(self.term, IntervalTerm):
            raise SyntaxConstructionError(
                f"Occurs requires an IntervalTerm, got {type(self.term).__name__}"
            )

    def free_logical_vars(self) -> FrozenSet[str]:
        return _term_logical_vars(self.term)

    def state_vars(self) -> FrozenSet[str]:
        return _term_state_vars(self.term)

    def atoms(self) -> FrozenSet[Predicate]:
        return _term_atoms(self.term)

    def children(self) -> Iterator[Formula]:
        yield from _term_formulas(self.term)

    def interval_terms(self) -> Iterator[IntervalTerm]:
        yield self.term

    def __str__(self) -> str:
        return f"*({self.term})"


@dataclass(frozen=True)
class Forall(Formula):
    """Outermost universal quantification over logical (rigid) variables.

    Chapter 2.2: "Since a and b are free variables, for all a and b such that
    we can find an interval ... ".  Quantification ranges over a value domain
    supplied at evaluation time (for trace conformance the domain defaults to
    the values observed in the trace).
    """

    variables: Tuple[str, ...]
    body: Formula

    def __post_init__(self) -> None:
        if not self.variables:
            raise SyntaxConstructionError("Forall requires at least one variable")
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.body.free_logical_vars() - frozenset(self.variables)

    def state_vars(self) -> FrozenSet[str]:
        return self.body.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.body.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.body

    def __str__(self) -> str:
        return f"forall {', '.join(self.variables)} . {self.body}"


@dataclass(frozen=True)
class NextBinding(Formula):
    """The parameter-binding convention ``[ atO(a) => atO↑(b) ] body``.

    ``NextBinding(op_event, variables, term, body)`` is not part of the core
    grammar; Chapter 2.2 sketches a general reduction for the ``atO↑(b)``
    event that binds ``b`` to the parameter of the *next* call.  We represent
    the binding explicitly: ``variables`` are bound, within ``body``, to the
    arguments of the next occurrence of operation ``operation`` found while
    constructing the designated interval.  The reduction module rewrites it
    into a quantified plain formula; the evaluator also supports it directly.
    """

    operation: str
    variables: Tuple[str, ...]
    body: Formula

    def __post_init__(self) -> None:
        if not self.operation:
            raise SyntaxConstructionError("NextBinding requires an operation name")
        if not self.variables:
            raise SyntaxConstructionError("NextBinding requires at least one variable")
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.body.free_logical_vars() - frozenset(self.variables)

    def state_vars(self) -> FrozenSet[str]:
        return self.body.state_vars()

    def atoms(self) -> FrozenSet[Predicate]:
        return self.body.atoms()

    def children(self) -> Iterator[Formula]:
        yield self.body

    def __str__(self) -> str:
        vars_ = ", ".join(self.variables)
        return f"bind-next {self.operation}({vars_}) . {self.body}"


# ---------------------------------------------------------------------------
# Generic helpers
# ---------------------------------------------------------------------------


def walk_formula(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and all sub-formulas in pre-order.

    Event formulas buried inside interval terms are included, since they are
    formulas of the language in their own right.
    """
    yield formula
    for child in formula.children():
        yield from walk_formula(child)


def formula_size(formula: Formula) -> int:
    """Number of formula nodes — used by the scaling benchmarks."""
    return sum(1 for _ in walk_formula(formula))


def conjoin(formulas: "Tuple[Formula, ...]") -> Formula:
    """Fold a sequence of formulas into a conjunction (True when empty)."""
    items = list(formulas)
    if not items:
        return TrueFormula()
    result = items[0]
    for item in items[1:]:
        result = And(result, item)
    return result


def disjoin(formulas: "Tuple[Formula, ...]") -> Formula:
    """Fold a sequence of formulas into a disjunction (False when empty)."""
    items = list(formulas)
    if not items:
        return FalseFormula()
    result = items[0]
    for item in items[1:]:
        result = Or(result, item)
    return result
