"""State expressions and atomic state predicates.

The interval logic of the paper is built over *state predicates*: boolean
observations of a single state of the computation.  Chapter 2 uses predicates
such as ``x >= 5``, ``x = y``, ``at Dq`` and parameterized operation
predicates ``atO(v1, ..., vn)``.  This module provides the expression and
predicate ASTs used for all of them.

Two kinds of variables appear in expressions, mirroring Appendix B's
distinction:

* **state variables** (:class:`Var`) — their value is read from the state and
  may change from state to state;
* **logical variables** (:class:`LogicalVar`) — rigid variables bound by an
  outer quantifier or by the ``atO↑(a)`` parameter-binding convention; their
  value comes from the evaluation environment and never changes with time.

All AST nodes are immutable and hashable so formulas can be used as dictionary
keys by the decision procedures.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..errors import (
    EvaluationError,
    SyntaxConstructionError,
    UnboundVariableError,
    UnknownOperationError,
    UnknownStateVariableError,
)

__all__ = [
    "Expr",
    "Const",
    "Var",
    "LogicalVar",
    "BinOp",
    "Apply",
    "FUNCTION_REGISTRY",
    "register_function",
    "Predicate",
    "Prop",
    "Cmp",
    "TruePredicate",
    "FalsePredicate",
    "OpPhase",
    "OpAt",
    "OpIn",
    "OpAfter",
    "StartPredicate",
    "flip",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of state expressions (terms denoting values, not booleans)."""

    def evaluate(self, state: "Mapping[str, Any]", env: Mapping[str, Any]) -> Any:
        """Return the value of the expression in ``state`` under ``env``."""
        raise NotImplementedError

    def free_logical_vars(self) -> FrozenSet[str]:
        """Names of logical (rigid) variables occurring in the expression."""
        return frozenset()

    def state_vars(self) -> FrozenSet[str]:
        """Names of state variables occurring in the expression."""
        return frozenset()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant value (number, string, tuple, ...)."""

    value: Any

    def evaluate(self, state: Mapping[str, Any], env: Mapping[str, Any]) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A state variable; its value is looked up in the current state."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("state variable name must be non-empty")

    def evaluate(self, state: Mapping[str, Any], env: Mapping[str, Any]) -> Any:
        try:
            return state[self.name]
        except KeyError as exc:
            raise UnknownStateVariableError(self.name) from exc

    def state_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LogicalVar(Expr):
    """A rigid (extralogical) variable; its value is read from the environment."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("logical variable name must be non-empty")

    def evaluate(self, state: Mapping[str, Any], env: Mapping[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError as exc:
            raise UnboundVariableError(self.name) from exc

    def free_logical_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"?{self.name}"


_BIN_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "%": operator.mod,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """An arithmetic combination of two expressions (``+ - * // %``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise SyntaxConstructionError(f"unknown arithmetic operator: {self.op!r}")

    def evaluate(self, state: Mapping[str, Any], env: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(state, env)
        rhs = self.right.evaluate(state, env)
        try:
            return _BIN_OPS[self.op](lhs, rhs)
        except (TypeError, ZeroDivisionError) as exc:
            raise EvaluationError(
                f"cannot evaluate {lhs!r} {self.op} {rhs!r}: {exc}"
            ) from exc

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.left.free_logical_vars() | self.right.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.left.state_vars() | self.right.state_vars()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def flip(value: Any) -> Any:
    """The sequence-number complement written ``v̄`` in Chapter 7 (mod-2 flip)."""
    return 1 - int(value)


FUNCTION_REGISTRY: Dict[str, Callable[..., Any]] = {
    "flip": flip,
    "abs": abs,
    "min": min,
    "max": max,
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register ``fn`` so :class:`Apply` expressions may call it by ``name``."""
    if not callable(fn):
        raise SyntaxConstructionError("registered function must be callable")
    FUNCTION_REGISTRY[name] = fn


@dataclass(frozen=True)
class Apply(Expr):
    """Application of a registered named function to argument expressions."""

    function: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.function not in FUNCTION_REGISTRY:
            raise SyntaxConstructionError(
                f"function {self.function!r} is not registered; "
                "use register_function() first"
            )
        object.__setattr__(self, "args", tuple(self.args))

    def evaluate(self, state: Mapping[str, Any], env: Mapping[str, Any]) -> Any:
        values = [arg.evaluate(state, env) for arg in self.args]
        return FUNCTION_REGISTRY[self.function](*values)

    def free_logical_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.free_logical_vars()
        return out

    def state_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.state_vars()
        return out

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class of atomic state predicates.

    A predicate is evaluated against a single state (a mapping of state
    variables plus, for operation predicates, an operation record) and an
    environment binding logical variables.
    """

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def free_logical_vars(self) -> FrozenSet[str]:
        return frozenset()

    def state_vars(self) -> FrozenSet[str]:
        return frozenset()

    def atom_key(self) -> Any:
        """A hashable key identifying this predicate as a propositional atom."""
        return self


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The constant predicate ``True``."""

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """The constant predicate ``False``."""

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Prop(Predicate):
    """A boolean state variable used directly as a proposition."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxConstructionError("proposition name must be non-empty")

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        try:
            return bool(state[self.name])
        except KeyError as exc:
            raise UnknownStateVariableError(self.name) from exc

    def state_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


_CMP_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Cmp(Predicate):
    """A comparison between two state expressions, e.g. ``x >= 5`` or ``x == y``."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise SyntaxConstructionError(f"unknown comparison operator: {self.op!r}")

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        lhs = self.left.evaluate(state, env)
        rhs = self.right.evaluate(state, env)
        try:
            return bool(_CMP_OPS[self.op](lhs, rhs))
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}: {exc}"
            ) from exc

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.left.free_logical_vars() | self.right.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.left.state_vars() | self.right.state_vars()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


# ---------------------------------------------------------------------------
# Operation predicates (Chapter 2.2)
# ---------------------------------------------------------------------------


class OpPhase:
    """Phase names of an abstract operation's lifecycle within a state."""

    IDLE = "idle"
    AT = "at"
    IN = "in"
    AFTER = "after"

    ALL = (IDLE, AT, IN, AFTER)


_NO_OPERATIONS = object()


def _operation_record(state: Any, op_name: str) -> Any:
    """Return the operation record for ``op_name`` from a state.

    The state protocol: a state exposes ``operations`` (a mapping from
    operation name to a record mapping with keys ``phase`` and ``args``), or
    it stores the phase under the plain key ``<phase>_<op>`` for boolean-only
    encodings.  :mod:`repro.semantics.state` provides the canonical state
    class implementing the former.  An operation absent from a state that
    *does* carry an ``operations`` mapping is idle (``None`` is returned);
    :data:`_NO_OPERATIONS` signals that the state uses the boolean encoding.
    """
    operations = getattr(state, "operations", None)
    if operations is None:
        return _NO_OPERATIONS
    return operations.get(op_name)


def _args_match(
    expected: Sequence[Expr],
    actual: Sequence[Any],
    state: Any,
    env: Mapping[str, Any],
) -> bool:
    if len(expected) != len(actual):
        return False
    for expr, value in zip(expected, actual):
        if expr.evaluate(state, env) != value:
            return False
    return True


@dataclass(frozen=True)
class _OpPredicateBase(Predicate):
    """Common implementation for ``atO``, ``inO`` and ``afterO`` predicates.

    With no argument expressions the predicate only constrains the phase; with
    arguments it additionally requires the operation's recorded argument tuple
    to equal the evaluated argument expressions (the overloading described in
    Chapter 2.2).
    """

    operation: str
    args: Tuple[Expr, ...] = field(default_factory=tuple)

    PHASE = ""
    #: Phases the predicate accepts; ``inO`` holds from ``atO`` up to (not
    #: including) ``afterO``, so it accepts both the ``at`` and ``in`` phases.
    PHASES: ClassVar[Tuple[str, ...]] = ()

    def __post_init__(self) -> None:
        if not self.operation:
            raise SyntaxConstructionError("operation name must be non-empty")
        object.__setattr__(self, "args", tuple(self.args))

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        record = _operation_record(state, self.operation)
        if record is None:
            # The state tracks operations but this one is idle.
            return False
        if record is _NO_OPERATIONS:
            # Fall back to a boolean encoding "<phase>_<op>" for simple states.
            phase_ok = False
            for phase in self.PHASES:
                key = f"{phase}_{self.operation}"
                try:
                    phase_ok = phase_ok or bool(state[key])
                except (KeyError, TypeError) as exc:
                    raise UnknownOperationError(self.operation) from exc
            if not phase_ok:
                return False
            if not self.args:
                return True
            try:
                actual = state[f"args_{self.operation}"]
            except (KeyError, TypeError):
                return False
            return _args_match(self.args, actual, state, env)
        if record.get("phase") not in self.PHASES:
            return False
        if not self.args:
            return True
        return _args_match(self.args, record.get("args", ()), state, env)

    def free_logical_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.free_logical_vars()
        return out

    def state_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out |= arg.state_vars()
        return out

    def __str__(self) -> str:
        if self.args:
            return f"{self.PHASE} {self.operation}({', '.join(map(str, self.args))})"
        return f"{self.PHASE} {self.operation}"


@dataclass(frozen=True)
class OpAt(_OpPredicateBase):
    """``atO(args...)`` — control is at the entry point of operation ``O``."""

    PHASE = OpPhase.AT
    PHASES = (OpPhase.AT,)


@dataclass(frozen=True)
class OpIn(_OpPredicateBase):
    """``inO(args...)`` — control is within operation ``O``.

    Chapter 2.2: axioms 1 and 2 define ``inO`` to be true exactly from
    ``atO`` to the state immediately preceding ``afterO``, so the predicate
    holds in both the ``at`` and ``in`` lifecycle phases.
    """

    PHASE = OpPhase.IN
    PHASES = (OpPhase.AT, OpPhase.IN)


@dataclass(frozen=True)
class OpAfter(_OpPredicateBase):
    """``afterO(args...)`` — control is immediately after operation ``O``."""

    PHASE = OpPhase.AFTER
    PHASES = (OpPhase.AFTER,)


@dataclass(frozen=True)
class StartPredicate(Predicate):
    """The distinguished ``start`` predicate used to interpret Init clauses.

    Chapter 3: every formula in an ``Init`` clause is interpreted as an axiom
    ``start ⊃ α`` where ``start`` holds exactly in the first state of the
    computation.  Trace evaluation marks the first state with the boolean
    state variable ``__start__``; traces built by :class:`repro.semantics.trace.Trace`
    do this automatically.
    """

    def holds(self, state: Any, env: Mapping[str, Any]) -> bool:
        try:
            return bool(state["__start__"])
        except (KeyError, TypeError):
            return False

    def __str__(self) -> str:
        return "start"
