"""Interval terms of the interval logic (Chapter 2 / Chapter 3 syntax).

The grammar of interval terms from Chapter 3 is::

    <interval term> I ::= A | begin J | end J
                        | J => K        (either argument may be omitted)
                        | J <= K        (either argument may be omitted)
    <event term>    A ::= alpha         (an interval formula used as an event)

plus the ``*`` interval-term modifier of Chapter 2.1, which is syntactic
sugar eliminated by :mod:`repro.semantics.reduction` (Appendix A).

An *event* defined by a formula ``beta`` occurs when ``beta`` changes from
False to True; the event denotes the two-state interval of change containing
the ``not beta`` and ``beta`` states.  ``begin I`` / ``end I`` extract the
unit intervals at the first / last state of ``I``.  ``I => J`` locates the
first ``I`` interval in context, then searches forward from its end for
``J``; ``I <= J`` locates the first ``J`` and then searches backward for the
most recent ``I`` (Chapter 2.1).

Event terms hold an arbitrary interval *formula*; to avoid a circular import
with :mod:`repro.syntax.formulas` the formula is stored untyped and accessed
through the shared ``free_logical_vars`` / ``state_vars`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterator, Optional

from ..errors import SyntaxConstructionError

__all__ = [
    "IntervalTerm",
    "EventTerm",
    "Begin",
    "End",
    "Forward",
    "Backward",
    "Star",
    "walk_term",
]


class IntervalTerm:
    """Base class for interval terms."""

    def free_logical_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def state_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def has_star(self) -> bool:
        """True if a ``*`` modifier occurs anywhere inside the term."""
        return any(isinstance(t, Star) for t in walk_term(self))

    def children(self) -> Iterator["IntervalTerm"]:
        """Direct interval-term children (used by generic traversals)."""
        return iter(())


@dataclass(frozen=True)
class EventTerm(IntervalTerm):
    """An event defined by an interval formula (the change False -> True)."""

    formula: Any

    def __post_init__(self) -> None:
        if self.formula is None:
            raise SyntaxConstructionError("event term requires a formula")

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.formula.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.formula.state_vars()

    def __str__(self) -> str:
        return str(self.formula)


@dataclass(frozen=True)
class Begin(IntervalTerm):
    """``begin I`` — the unit interval containing the first state of ``I``."""

    term: IntervalTerm

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.term.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.term.state_vars()

    def children(self) -> Iterator[IntervalTerm]:
        yield self.term

    def __str__(self) -> str:
        return f"begin({self.term})"


@dataclass(frozen=True)
class End(IntervalTerm):
    """``end I`` — the unit interval containing the last state of ``I``.

    Undefined (returns the null interval) when ``I`` is infinite, per the
    Chapter 3 definition of ``last(<i, oo>)``.
    """

    term: IntervalTerm

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.term.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.term.state_vars()

    def children(self) -> Iterator[IntervalTerm]:
        yield self.term

    def __str__(self) -> str:
        return f"end({self.term})"


@dataclass(frozen=True)
class Forward(IntervalTerm):
    """The right-arrow operator ``I => J`` with optional arguments.

    * ``I =>``   (``right is None``): from the end of the first ``I`` interval
      to the end of the outer context.
    * ``=> J``   (``left is None``): from the start of the outer context to
      the end of the first ``J`` interval.
    * ``I => J``: the composition — from the end of the first ``I`` to the end
      of the first ``J`` located within ``I =>``.
    * ``=>``     (both ``None``): the entire outer context.
    """

    left: Optional[IntervalTerm] = None
    right: Optional[IntervalTerm] = None

    def free_logical_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        if self.left is not None:
            out |= self.left.free_logical_vars()
        if self.right is not None:
            out |= self.right.free_logical_vars()
        return out

    def state_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        if self.left is not None:
            out |= self.left.state_vars()
        if self.right is not None:
            out |= self.right.state_vars()
        return out

    def children(self) -> Iterator[IntervalTerm]:
        if self.left is not None:
            yield self.left
        if self.right is not None:
            yield self.right

    def __str__(self) -> str:
        left = str(self.left) if self.left is not None else ""
        right = str(self.right) if self.right is not None else ""
        return f"({left} => {right})".replace("(  =>  )", "(=>)")


@dataclass(frozen=True)
class Backward(IntervalTerm):
    """The left-arrow operator ``I <= J`` with optional arguments.

    ``I <= J`` first locates the first ``J`` interval in context and then
    searches *backward* from its end for the most recent ``I`` interval; the
    derived interval runs from ``end I`` to ``end J``.  ``I <=`` starts at the
    end of the *last* ``I`` interval and extends for the remainder of the
    context (vacuous when ``I`` occurs infinitely often).  ``<= J`` and
    ``<=`` are equivalent to ``=> J`` and ``=>`` respectively (Chapter 2.1).
    """

    left: Optional[IntervalTerm] = None
    right: Optional[IntervalTerm] = None

    def free_logical_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        if self.left is not None:
            out |= self.left.free_logical_vars()
        if self.right is not None:
            out |= self.right.free_logical_vars()
        return out

    def state_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        if self.left is not None:
            out |= self.left.state_vars()
        if self.right is not None:
            out |= self.right.state_vars()
        return out

    def children(self) -> Iterator[IntervalTerm]:
        if self.left is not None:
            yield self.left
        if self.right is not None:
            yield self.right

    def __str__(self) -> str:
        left = str(self.left) if self.left is not None else ""
        right = str(self.right) if self.right is not None else ""
        return f"({left} <= {right})"


@dataclass(frozen=True)
class Star(IntervalTerm):
    """The ``*`` interval-term modifier — the interval *must* be found.

    ``*I`` adds the requirement that ``I`` occurs in the designated context;
    it contributes only linguistic expressive power and is eliminated by the
    Appendix A reduction rules (see :mod:`repro.semantics.reduction`).
    """

    term: IntervalTerm

    def free_logical_vars(self) -> FrozenSet[str]:
        return self.term.free_logical_vars()

    def state_vars(self) -> FrozenSet[str]:
        return self.term.state_vars()

    def children(self) -> Iterator[IntervalTerm]:
        yield self.term

    def __str__(self) -> str:
        return f"*{self.term}"


def walk_term(term: IntervalTerm) -> Iterator[IntervalTerm]:
    """Yield ``term`` and every interval term nested inside it (pre-order).

    Event terms are leaves from the point of view of this traversal even
    though their defining formulas may contain further interval formulas.
    """
    yield term
    for child in term.children():
        yield from walk_term(child)
