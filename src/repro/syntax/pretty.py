"""Pretty-printing of interval-logic formulas.

Two renderings are provided:

* :func:`to_ascii` — the plain notation used by ``str()`` on AST nodes
  (``[]``, ``<>``, ``=>``, ``<=``, ``/\\``, ``\\/``, ``->``);
* :func:`to_unicode` — the paper's notation with ``□``, ``◇``, ``⇒``, ``⇐``,
  ``∧``, ``∨``, ``⊃``, ``≡``, ``¬`` and ``∀``.

:func:`render_tree` produces an indented structural dump that is useful when
debugging why a formula does not hold on a trace.
"""

from __future__ import annotations

from typing import List

from .formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from .intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from .terms import Cmp

__all__ = ["to_ascii", "to_unicode", "render_tree"]


_UNICODE = {
    "always": "□",
    "eventually": "◇",
    "not": "¬",
    "and": " ∧ ",
    "or": " ∨ ",
    "implies": " ⊃ ",
    "iff": " ≡ ",
    "forward": " ⇒ ",
    "backward": " ⇐ ",
    "forall": "∀",
    # Comparison operators with a distinct mathematical glyph.  Printing
    # "<=" as "≤" keeps comparisons distinguishable from the backward
    # arrow "⇐", so the unicode rendering always re-parses to the same
    # formula.
    "cmp": {"<=": "≤", ">=": "≥", "!=": "≠"},
}

_ASCII = {
    "always": "[]",
    "eventually": "<>",
    "not": "~",
    "and": " /\\ ",
    "or": " \\/ ",
    "implies": " -> ",
    "iff": " <-> ",
    "forward": " => ",
    "backward": " <= ",
    "forall": "forall ",
    "cmp": {},
}


def _render_term(term: IntervalTerm, symbols: dict) -> str:
    if isinstance(term, EventTerm):
        return _render(term.formula, symbols)
    if isinstance(term, Begin):
        return f"begin({_render_term(term.term, symbols)})"
    if isinstance(term, End):
        return f"end({_render_term(term.term, symbols)})"
    if isinstance(term, Star):
        return f"*{_render_term(term.term, symbols)}"
    if isinstance(term, Forward):
        left = _render_term(term.left, symbols) if term.left is not None else ""
        right = _render_term(term.right, symbols) if term.right is not None else ""
        return f"({left}{symbols['forward']}{right})"
    if isinstance(term, Backward):
        left = _render_term(term.left, symbols) if term.left is not None else ""
        right = _render_term(term.right, symbols) if term.right is not None else ""
        return f"({left}{symbols['backward']}{right})"
    return str(term)


def _render(formula: Formula, symbols: dict) -> str:
    if isinstance(formula, Atom):
        predicate = formula.predicate
        if isinstance(predicate, Cmp) and predicate.op in symbols["cmp"]:
            return f"{predicate.left} {symbols['cmp'][predicate.op]} {predicate.right}"
        return str(predicate)
    if isinstance(formula, TrueFormula):
        return "True"
    if isinstance(formula, FalseFormula):
        return "False"
    if isinstance(formula, Not):
        return f"{symbols['not']}{_render(formula.operand, symbols)}"
    if isinstance(formula, And):
        return f"({_render(formula.left, symbols)}{symbols['and']}{_render(formula.right, symbols)})"
    if isinstance(formula, Or):
        return f"({_render(formula.left, symbols)}{symbols['or']}{_render(formula.right, symbols)})"
    if isinstance(formula, Implies):
        return f"({_render(formula.left, symbols)}{symbols['implies']}{_render(formula.right, symbols)})"
    if isinstance(formula, Iff):
        return f"({_render(formula.left, symbols)}{symbols['iff']}{_render(formula.right, symbols)})"
    if isinstance(formula, Always):
        return f"{symbols['always']}{_render(formula.operand, symbols)}"
    if isinstance(formula, Eventually):
        return f"{symbols['eventually']}{_render(formula.operand, symbols)}"
    if isinstance(formula, IntervalFormula):
        return f"[{_render_term(formula.term, symbols)}] {_render(formula.body, symbols)}"
    if isinstance(formula, Occurs):
        return f"*({_render_term(formula.term, symbols)})"
    if isinstance(formula, Forall):
        # Parenthesized because the quantifier body extends as far right as
        # possible when re-parsed: ``forall a . X \/ Y`` reads as
        # ``forall a . (X \/ Y)``, so an un-parenthesized rendering of
        # ``Or(Forall(..., X), Y)`` would not round-trip.
        vars_ = ", ".join(formula.variables)
        return f"({symbols['forall']}{vars_} . {_render(formula.body, symbols)})"
    if isinstance(formula, NextBinding):
        vars_ = ", ".join(formula.variables)
        return f"bind-next {formula.operation}({vars_}) . {_render(formula.body, symbols)}"
    return str(formula)


def to_ascii(formula: Formula) -> str:
    """Render a formula in plain ASCII notation."""
    return _render(formula, _ASCII)


def to_unicode(formula: Formula) -> str:
    """Render a formula in the paper's mathematical notation."""
    return _render(formula, _UNICODE)


def _tree_lines(node, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(node, Atom):
        lines.append(f"{pad}Atom {node.predicate}")
        return
    if isinstance(node, (TrueFormula, FalseFormula)):
        lines.append(f"{pad}{type(node).__name__}")
        return
    if isinstance(node, IntervalFormula):
        lines.append(f"{pad}IntervalFormula")
        _term_tree_lines(node.term, indent + 1, lines)
        _tree_lines(node.body, indent + 1, lines)
        return
    if isinstance(node, Occurs):
        lines.append(f"{pad}Occurs")
        _term_tree_lines(node.term, indent + 1, lines)
        return
    if isinstance(node, Forall):
        lines.append(f"{pad}Forall {', '.join(node.variables)}")
        _tree_lines(node.body, indent + 1, lines)
        return
    if isinstance(node, NextBinding):
        lines.append(f"{pad}NextBinding {node.operation}({', '.join(node.variables)})")
        _tree_lines(node.body, indent + 1, lines)
        return
    lines.append(f"{pad}{type(node).__name__}")
    for child in node.children():
        _tree_lines(child, indent + 1, lines)


def _term_tree_lines(term: IntervalTerm, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(term, EventTerm):
        lines.append(f"{pad}EventTerm")
        _tree_lines(term.formula, indent + 1, lines)
        return
    lines.append(f"{pad}{type(term).__name__}")
    for child in term.children():
        _term_tree_lines(child, indent + 1, lines)


def render_tree(formula: Formula) -> str:
    """Render the structural tree of a formula, one node per line."""
    lines: List[str] = []
    _tree_lines(formula, 0, lines)
    return "\n".join(lines)
