"""A concrete-syntax parser for interval-logic formulas.

The accepted notation is the ASCII rendering produced by
:func:`repro.syntax.pretty.to_ascii`; the unicode symbols produced by
:func:`repro.syntax.pretty.to_unicode` (``□ ◇ ¬ ∧ ∨ ⊃ ≡ ⇒ ⇐ ∀ ≠ ≤ ≥``) are
accepted as exact synonyms of their ASCII spellings.  One ambiguity is
resolved in the paper's favour: inside an interval term, ``name <= name``
denotes the backward-arrow term (the paper writes ``⇐`` there), matching how
``to_ascii`` prints ``Backward``.  A less-or-equal *comparison* between two
state variables used as an event formula must therefore be written ``≤``
(which is how ``to_unicode`` prints it, making the unicode rendering fully
round-trippable); comparisons against any other expression shape
(``p <= 5``) are unambiguous and parse as comparisons everywhere.  The one
known one-way case is ``to_ascii`` of a variable-vs-variable ``<=``
comparison event inside an interval term, which re-parses as the arrow::

    formula  := "forall" names "." formula
              | iff
    iff      := impl ("<->" impl)*
    impl     := or ("->" impl)?                     (right associative)
    or       := and ("\\/" and)*
    and      := unary ("/\\" unary)*
    unary    := "~" unary | "[]" unary | "<>" unary
              | "forall" names "." formula
              | "[" term "]" unary
              | "*" "(" term ")"
              | primary
    primary  := "true" | "false" | "start" | "(" formula ")"
              | ("at" | "in" | "after") NAME ["(" exprs ")"]
              | expr CMP expr
              | NAME                                (boolean state variable)

    term     := [simple] ("=>" | "<=") [simple]     (arrow, args omissible)
              | simple
    simple   := "*" simple
              | "begin" "(" term ")" | "end" "(" term ")"
              | "(" term ")"
              | unary                               (an event formula)

    expr     := atomexpr (("+" | "-") atomexpr)*
    atomexpr := NUMBER | "?" NAME | NAME ["(" exprs ")"] | "(" expr ")"

``?name`` denotes a logical (rigid) variable; a bare ``NAME`` in expression
position denotes a state variable and in formula position a boolean state
variable.  ``NAME(args)`` in expression position applies a registered
function (e.g. ``flip(exp)``).

The parser exists for tests, examples and interactive exploration; programs
normally build formulas with :mod:`repro.syntax.builder`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ParseError
from .formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from .intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from .terms import (
    Apply,
    BinOp,
    Cmp,
    Const,
    Expr,
    LogicalVar,
    OpAfter,
    OpAt,
    OpIn,
    Prop,
    StartPredicate,
    Var,
)

__all__ = ["parse_formula", "parse_term", "tokenize"]


_TOKEN_SPEC = [
    ("NUMBER", r"\d+(\.\d+)?"),
    ("ARROW_F", r"=>|⇒"),
    ("ARROW_B", r"<=|⇐"),
    ("IFF", r"<->|≡"),
    ("IMPLIES", r"->|⊃"),
    ("ALWAYS", r"\[\]|□"),
    ("EVENTUALLY", r"<>|◇"),
    ("AND", r"/\\|∧"),
    ("OR", r"\\/|∨"),
    ("CMP", r"==|!=|≠|>=|≥|≤|>|<"),
    ("EQ_SINGLE", r"="),
    ("FORALL", r"∀"),
    ("LBRACK", r"\["),
    ("RBRACK", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("TILDE", r"~|¬"),
    ("STAR", r"\*"),
    ("QMARK", r"\?"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("WS", r"\s+"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {"forall", "begin", "end", "true", "false", "start", "at", "in", "after"}

# The pretty-printer renders the formula constants capitalized; accept both.
_CONSTANT_KEYWORDS = {"True": "TRUE", "False": "FALSE"}

# Unicode comparison operators normalized to the ASCII spelling Cmp stores.
_CMP_NORMALIZE = {"≠": "!=", "≥": ">=", "≤": "<="}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                text=text,
                position=position,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            if kind == "NAME" and value in _KEYWORDS:
                kind = value.upper()
            elif kind == "NAME" and value in _CONSTANT_KEYWORDS:
                kind = _CONSTANT_KEYWORDS[value]
            tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        # Depth of event-formula parsing inside an interval term.  Within a
        # term, ``p <= q`` denotes the backward-arrow term, not the ``<=``
        # comparison; the depth disambiguates the shared ASCII spelling.
        self._event_depth = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} ({token.value!r}) "
                f"at offset {token.position}",
                text=self.text,
                position=token.position,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} at offset {token.position} (found {token.value!r})",
            text=self.text,
            position=token.position,
        )

    # -- formulas ------------------------------------------------------------

    def parse_formula(self) -> Formula:
        if self.peek().kind == "FORALL":
            return self.parse_quantifier()
        return self.parse_iff()

    def parse_quantifier(self) -> Formula:
        self.expect("FORALL")
        names = [self.expect("NAME").value]
        while self.accept("COMMA"):
            names.append(self.expect("NAME").value)
        self.expect("DOT")
        return Forall(tuple(names), self.parse_formula())

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.accept("IFF"):
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("IMPLIES"):
            return Implies(left, self.parse_implies())
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.accept("OR"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_unary()
        while self.accept("AND"):
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token.kind == "FORALL":
            # A nested quantifier, e.g. ``[] forall v . ...``; the body
            # extends as far right as possible.
            return self.parse_quantifier()
        if token.kind == "TILDE":
            self.advance()
            return Not(self.parse_unary())
        if token.kind == "ALWAYS":
            self.advance()
            return Always(self.parse_unary())
        if token.kind == "EVENTUALLY":
            self.advance()
            return Eventually(self.parse_unary())
        if token.kind == "LBRACK":
            self.advance()
            term = self.parse_term()
            self.expect("RBRACK")
            return IntervalFormula(term, self.parse_unary())
        if token.kind == "STAR":
            self.advance()
            self.expect("LPAREN")
            term = self.parse_term()
            self.expect("RPAREN")
            return Occurs(term)
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        token = self.peek()
        if token.kind == "TRUE":
            self.advance()
            return TrueFormula()
        if token.kind == "FALSE":
            self.advance()
            return FalseFormula()
        if token.kind == "START":
            self.advance()
            return Atom(StartPredicate())
        if token.kind in ("AT", "IN", "AFTER"):
            return self.parse_operation_predicate()
        if token.kind == "LPAREN":
            saved = self.index
            saved_depth = self._event_depth
            self.advance()
            # Parentheses re-open plain formula context: inside them ``<=``
            # is a comparison again even below an interval term.
            self._event_depth = 0
            try:
                inner = self.parse_formula()
                self.expect("RPAREN")
            except ParseError as formula_error:
                self.index = saved
                self._event_depth = saved_depth
                # Not a parenthesized formula: try a parenthesized
                # *expression* opening a comparison, e.g. ``(x - y) == 1``.
                # When that fails too, the original error — pointing inside
                # the parentheses — is the real one.
                try:
                    return self.parse_comparison_or_prop()
                except ParseError:
                    raise formula_error from None
            self._event_depth = saved_depth
            if self.peek().kind in self._comparison_kinds():
                # A parenthesized formula directly followed by a comparison
                # operator, e.g. ``(x) == 1`` — re-parse as a comparison.
                after_formula = self.index
                self.index = saved
                try:
                    return self.parse_comparison_or_prop()
                except ParseError:
                    # Not an expression either: keep the formula and let the
                    # caller report the trailing operator.
                    self.index = after_formula
            return inner
        # A comparison or a bare boolean state variable.
        return self.parse_comparison_or_prop()

    def parse_operation_predicate(self) -> Formula:
        phase = self.advance().kind  # AT / IN / AFTER
        name = self.expect("NAME").value
        args: Tuple[Expr, ...] = ()
        if self.accept("LPAREN"):
            arg_list = [self.parse_expr()]
            while self.accept("COMMA"):
                arg_list.append(self.parse_expr())
            self.expect("RPAREN")
            args = tuple(arg_list)
        cls = {"AT": OpAt, "IN": OpIn, "AFTER": OpAfter}[phase]
        return Atom(cls(name, args))

    _CMP_KINDS = ("CMP", "EQ_SINGLE", "ARROW_B")

    def _comparison_kinds(self) -> Tuple[str, ...]:
        if self._event_depth:
            # Inside an interval term ``<=`` is the backward arrow, so it
            # must not be consumed as a comparison.
            return tuple(k for k in self._CMP_KINDS if k != "ARROW_B")
        return self._CMP_KINDS

    def parse_comparison_or_prop(self) -> Formula:
        # Try a comparison first; fall back to a boolean proposition.
        saved = self.index
        try:
            left = self.parse_expr()
        except ParseError:
            self.index = saved
            raise self.error("expected a formula")
        token = self.peek()
        if token.kind in self._comparison_kinds():
            self.advance()
            if token.kind == "CMP":
                op = _CMP_NORMALIZE.get(token.value, token.value)
            else:
                op = "<=" if token.kind == "ARROW_B" else "=="
            right = self.parse_expr()
            return Atom(Cmp(left, op, right))
        if isinstance(left, Var):
            return Atom(Prop(left.name))
        self.index = saved
        raise self.error("expression used where a formula was expected")

    # -- interval terms ------------------------------------------------------

    _ARROW_KINDS = ("ARROW_F", "ARROW_B")

    def parse_term(self) -> IntervalTerm:
        token = self.peek()
        left: Optional[IntervalTerm] = None
        if token.kind not in self._ARROW_KINDS:
            left = self.parse_simple_term()
        token = self.peek()
        if token.kind in self._ARROW_KINDS:
            self.advance()
            right: Optional[IntervalTerm] = None
            if self.peek().kind not in ("RBRACK", "RPAREN", "EOF"):
                right = self.parse_simple_term()
                follow = self.peek()
                if follow.kind in self._ARROW_KINDS:
                    # Right-nested arrows:  A => B => C parses as A => (B => C).
                    self.advance()
                    inner_right = None
                    if self.peek().kind not in ("RBRACK", "RPAREN", "EOF"):
                        inner_right = self.parse_simple_term()
                    inner_cls = Forward if follow.kind == "ARROW_F" else Backward
                    right = inner_cls(right, inner_right)
            cls = Forward if token.kind == "ARROW_F" else Backward
            return cls(left, right)
        if left is None:
            raise self.error("expected an interval term")
        return left

    def parse_simple_term(self) -> IntervalTerm:
        token = self.peek()
        if token.kind == "STAR":
            self.advance()
            return Star(self.parse_simple_term())
        if token.kind == "BEGIN":
            self.advance()
            self.expect("LPAREN")
            inner = self.parse_term()
            self.expect("RPAREN")
            return Begin(inner)
        if token.kind == "END":
            self.advance()
            self.expect("LPAREN")
            inner = self.parse_term()
            self.expect("RPAREN")
            return End(inner)
        if token.kind == "LPAREN":
            # A parenthesized interval term (which may itself be an event
            # formula in parentheses; EventTerm of that formula is equivalent).
            saved = self.index
            self.advance()
            try:
                inner = self.parse_term()
                self.expect("RPAREN")
                return inner
            except ParseError:
                self.index = saved
        # Otherwise: an event defined by a unary formula.
        self._event_depth += 1
        try:
            return EventTerm(self.parse_unary())
        finally:
            self._event_depth -= 1

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self.parse_atom_expr()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = "+" if self.advance().kind == "PLUS" else "-"
            right = self.parse_atom_expr()
            left = BinOp(op, left, right)
        return left

    def parse_atom_expr(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            return Const(float(text) if "." in text else int(text))
        if token.kind == "QMARK":
            self.advance()
            name = self.expect("NAME").value
            return LogicalVar(name)
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "NAME":
            self.advance()
            name = token.value
            if self.peek().kind == "LPAREN":
                self.advance()
                args = [self.parse_expr()]
                while self.accept("COMMA"):
                    args.append(self.parse_expr())
                self.expect("RPAREN")
                return Apply(name, tuple(args))
            return Var(name)
        raise self.error("expected an expression")


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into an interval-logic formula."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    token = parser.peek()
    if token.kind != "EOF":
        raise ParseError(
            f"trailing input at offset {token.position}: {token.value!r}",
            text=text,
            position=token.position,
        )
    return formula


def parse_term(text: str) -> IntervalTerm:
    """Parse ``text`` into an interval term."""
    parser = _Parser(text)
    term = parser.parse_term()
    token = parser.peek()
    if token.kind != "EOF":
        raise ParseError(
            f"trailing input at offset {token.position}: {token.value!r}",
            text=text,
            position=token.position,
        )
    return term
