"""Linear rational arithmetic via Fourier–Motzkin elimination.

Appendix B motivates theory combination with examples such as
"Henceforth ``a >= 1`` implies eventually ``a > 0``" and the §5.1 example
``[](x > 0) \\/ [](x < 1)``.  This module provides the arithmetic oracle:
satisfiability of conjunctions of linear constraints over the rationals
(adequate for the paper's integer examples, which never rely on integrality
cuts), decided by Fourier–Motzkin variable elimination with case-splitting
over disequalities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import TheoryError
from ..ltl.syntax import TheoryAtom
from .base import Literal, Theory

__all__ = ["LinearConstraint", "linear_atom", "LinearArithmeticTheory"]


_NEGATION = {"<=": ">", "<": ">=", ">=": "<", ">": "<=", "==": "!=", "!=": "=="}
_OPS = tuple(_NEGATION)


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(coeffs[v] * v) OP constant`` with rational coefficients."""

    coefficients: Tuple[Tuple[str, Fraction], ...]
    op: str
    constant: Fraction

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TheoryError(f"unknown linear operator {self.op!r}")

    @staticmethod
    def make(coefficients: Mapping[str, object], op: str, constant: object) -> "LinearConstraint":
        coeffs = tuple(
            sorted((name, Fraction(value)) for name, value in coefficients.items() if Fraction(value) != 0)
        )
        return LinearConstraint(coeffs, op, Fraction(constant))

    def negated(self) -> "LinearConstraint":
        return LinearConstraint(self.coefficients, _NEGATION[self.op], self.constant)

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coefficients)

    def __str__(self) -> str:
        if not self.coefficients:
            lhs = "0"
        else:
            parts = []
            for name, coefficient in self.coefficients:
                if coefficient == 1:
                    parts.append(name)
                elif coefficient == -1:
                    parts.append(f"-{name}")
                else:
                    parts.append(f"{coefficient}*{name}")
            lhs = " + ".join(parts)
        return f"{lhs} {self.op} {self.constant}"


def linear_atom(
    name: str,
    coefficients: Mapping[str, object],
    op: str,
    constant: object,
    state_vars: Sequence[str] = (),
    rigid_vars: Sequence[str] = (),
) -> TheoryAtom:
    """Build a :class:`TheoryAtom` carrying a linear constraint.

    When neither variable list is given, every variable defaults to being a
    state variable (the paper's default interpretation).
    """
    constraint = LinearConstraint.make(coefficients, op, constant)
    if not state_vars and not rigid_vars:
        state_vars = constraint.variables()
    return TheoryAtom(
        name=name,
        constraint=constraint,
        state_vars=tuple(state_vars),
        rigid_vars=tuple(rigid_vars),
    )


# ---------------------------------------------------------------------------
# Fourier–Motzkin
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Row:
    """A normalized constraint ``sum(coeffs) <= constant`` (or ``<``)."""

    coefficients: Tuple[Tuple[str, Fraction], ...]
    constant: Fraction
    strict: bool

    def coefficient(self, name: str) -> Fraction:
        for var, value in self.coefficients:
            if var == name:
                return value
        return Fraction(0)

    def without(self, name: str) -> Tuple[Tuple[str, Fraction], ...]:
        return tuple((var, value) for var, value in self.coefficients if var != name)


def _normalize(constraint: LinearConstraint) -> List[_Row]:
    """Convert to rows of the form ``lhs <= c`` / ``lhs < c``."""
    coeffs = constraint.coefficients
    constant = constraint.constant
    negated = tuple((name, -value) for name, value in coeffs)
    if constraint.op == "<=":
        return [_Row(coeffs, constant, False)]
    if constraint.op == "<":
        return [_Row(coeffs, constant, True)]
    if constraint.op == ">=":
        return [_Row(negated, -constant, False)]
    if constraint.op == ">":
        return [_Row(negated, -constant, True)]
    if constraint.op == "==":
        return [_Row(coeffs, constant, False), _Row(negated, -constant, False)]
    raise TheoryError(f"disequalities must be split before normalization: {constraint}")


def _eliminate(rows: List[_Row], name: str) -> Optional[List[_Row]]:
    """Eliminate ``name``; return None if a contradiction is already present."""
    uppers: List[_Row] = []   # positive coefficient: x <= ...
    lowers: List[_Row] = []   # negative coefficient: x >= ...
    others: List[_Row] = []
    for row in rows:
        coefficient = row.coefficient(name)
        if coefficient > 0:
            uppers.append(row)
        elif coefficient < 0:
            lowers.append(row)
        else:
            others.append(row)
    for upper, lower in itertools.product(uppers, lowers):
        cu = upper.coefficient(name)
        cl = -lower.coefficient(name)
        combined: Dict[str, Fraction] = {}
        for var, value in upper.without(name):
            combined[var] = combined.get(var, Fraction(0)) + value / cu
        for var, value in lower.without(name):
            combined[var] = combined.get(var, Fraction(0)) + value / cl
        constant = upper.constant / cu + lower.constant / cl
        strict = upper.strict or lower.strict
        coefficients = tuple(sorted((v, c) for v, c in combined.items() if c != 0))
        others.append(_Row(coefficients, constant, strict))
    return others


def _rows_satisfiable(rows: List[_Row]) -> bool:
    rows = list(rows)
    while True:
        # Ground contradictions.
        remaining: List[_Row] = []
        for row in rows:
            if not row.coefficients:
                if row.constant < 0 or (row.strict and row.constant == 0):
                    return False
            else:
                remaining.append(row)
        rows = remaining
        if not rows:
            return True
        name = rows[0].coefficients[0][0]
        rows = _eliminate(rows, name)


class LinearArithmeticTheory(Theory):
    """Conjunctions of linear constraints over the rationals."""

    name = "linear-arithmetic"

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        constraints: List[LinearConstraint] = []
        for atom, negated in literals:
            self.validate_atom(atom)
            constraint = atom.constraint
            if not isinstance(constraint, LinearConstraint):
                raise TheoryError(
                    f"atom {atom.name!r} does not carry a LinearConstraint"
                )
            constraints.append(constraint.negated() if negated else constraint)
        # Case-split disequalities into strict inequalities.
        disequalities = [c for c in constraints if c.op == "!="]
        rest = [c for c in constraints if c.op != "!="]
        branches: Iterable[Tuple[str, ...]] = itertools.product(
            ("<", ">"), repeat=len(disequalities)
        )
        for branch in branches:
            rows: List[_Row] = []
            for constraint in rest:
                rows.extend(_normalize(constraint))
            for constraint, op in zip(disequalities, branch):
                rows.extend(
                    _normalize(
                        LinearConstraint(constraint.coefficients, op, constraint.constant)
                    )
                )
            if _rows_satisfiable(rows):
                return True
        return False
