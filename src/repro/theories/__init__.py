"""Specialized theory solvers combined with temporal logic (Appendix B)."""

from .base import Literal, Theory
from .combination import CombinedTheory, default_combination
from .difference import (
    ZERO_VARIABLE,
    DifferenceConstraint,
    DifferenceTheory,
    difference_atom,
)
from .equality import (
    EqualityAtomPayload,
    EqualityTheory,
    FunctionTerm,
    equality_atom,
)
from .linear import LinearArithmeticTheory, LinearConstraint, linear_atom
from .propositional import PropositionalTheory

__all__ = [
    "Literal",
    "Theory",
    "CombinedTheory",
    "default_combination",
    "ZERO_VARIABLE",
    "DifferenceConstraint",
    "DifferenceTheory",
    "difference_atom",
    "EqualityAtomPayload",
    "EqualityTheory",
    "FunctionTerm",
    "equality_atom",
    "LinearArithmeticTheory",
    "LinearConstraint",
    "linear_atom",
    "PropositionalTheory",
]
