"""The trivial propositional theory: atoms are uninterpreted.

A conjunction of literals is satisfiable unless it contains an atom and its
negation.  This is the theory implicitly used by the plain tableau method;
it exists so Algorithm A / Algorithm B can be exercised uniformly and so the
combination framework has a default member.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..ltl.syntax import TheoryAtom
from .base import Literal, Theory

__all__ = ["PropositionalTheory"]


class PropositionalTheory(Theory):
    """Uninterpreted propositional atoms."""

    name = "propositional"

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        polarity: Dict[str, bool] = {}
        for atom, negated in literals:
            self.validate_atom(atom)
            value = not negated
            if atom.name in polarity and polarity[atom.name] != value:
                return False
            polarity[atom.name] = value
        return True
