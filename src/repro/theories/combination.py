"""Combination of specialized theories (Nelson–Oppen style cooperation).

Appendix B points at the cooperating decision procedures of Nelson/Oppen and
Shostak as the intended source of specialized theories.  This module combines
several :class:`repro.theories.base.Theory` instances:

* literals are routed to member theories by the type of their constraint
  payload;
* the members then cooperate by exchanging entailed equalities between the
  variables they share — each round, every theory is asked (via entailment
  checks built from its own satisfiability oracle) which shared-variable
  equalities follow from its slice plus the equalities learned so far, and
  those are propagated to all members;
* the conjunction is satisfiable when every member remains satisfiable at the
  fixpoint.

The propagation is the deterministic core of Nelson–Oppen; the case-splitting
needed for non-convex theories (e.g. integer arithmetic) is not implemented
and the limitation is documented here — none of the paper's examples require
it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ..errors import TheoryError
from ..ltl.syntax import TheoryAtom
from .base import Literal, Theory
from .equality import EqualityAtomPayload, EqualityTheory, equality_atom
from .linear import LinearArithmeticTheory, LinearConstraint, linear_atom
from .difference import DifferenceConstraint, DifferenceTheory, difference_atom
from .propositional import PropositionalTheory

__all__ = ["CombinedTheory", "default_combination"]


class CombinedTheory(Theory):
    """Routes literals to member theories and propagates shared equalities."""

    name = "combined"

    def __init__(self, members: Sequence[Theory]) -> None:
        if not members:
            raise TheoryError("a combined theory needs at least one member")
        self._members = list(members)

    # -- routing -------------------------------------------------------------------

    @staticmethod
    def _payload_kind(atom: TheoryAtom) -> str:
        payload = atom.constraint
        if isinstance(payload, LinearConstraint):
            return "linear"
        if isinstance(payload, DifferenceConstraint):
            return "difference"
        if isinstance(payload, EqualityAtomPayload):
            return "equality"
        return "propositional"

    def _member_for(self, kind: str) -> Optional[Theory]:
        for member in self._members:
            if kind == "linear" and isinstance(member, LinearArithmeticTheory):
                return member
            if kind == "difference" and isinstance(member, DifferenceTheory):
                return member
            if kind == "equality" and isinstance(member, EqualityTheory):
                return member
            if kind == "propositional" and isinstance(member, PropositionalTheory):
                return member
        return None

    @staticmethod
    def _atom_variables(atom: TheoryAtom) -> Tuple[str, ...]:
        return tuple(atom.state_vars) + tuple(atom.rigid_vars)

    @staticmethod
    def _variable_equality(kind: str, left: str, right: str) -> Optional[Literal]:
        """Express ``left == right`` in the vocabulary of a member theory."""
        name = f"__eq_{left}_{right}"
        if kind == "linear":
            return (linear_atom(name, {left: 1, right: -1}, "==", 0), False)
        if kind == "difference":
            # left - right <= 0  /\  right - left <= 0 cannot be a single
            # literal; exchange only the upper half — sound but weaker.
            return (
                difference_atom(name, DifferenceConstraint.make(left, right, 0)),
                False,
            )
        if kind == "equality":
            return (equality_atom(name, left, right), False)
        return None

    # -- satisfiability ----------------------------------------------------------------

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        slices: Dict[str, List[Literal]] = {}
        variables_by_kind: Dict[str, Set[str]] = {}
        for atom, negated in literals:
            kind = self._payload_kind(atom)
            slices.setdefault(kind, []).append((atom, negated))
            variables_by_kind.setdefault(kind, set()).update(self._atom_variables(atom))

        # Shared variables appear in at least two slices.
        shared: Set[str] = set()
        kinds = list(variables_by_kind)
        for first, second in itertools.combinations(kinds, 2):
            shared |= variables_by_kind[first] & variables_by_kind[second]

        learned: Set[Tuple[str, str]] = set()
        for _ in range(max(1, len(shared) * len(shared))):
            # Check every slice with the learned equalities added.
            progress = False
            for kind, slice_literals in slices.items():
                member = self._member_for(kind)
                if member is None:
                    raise TheoryError(f"no member theory handles {kind!r} atoms")
                augmented = list(slice_literals)
                for left, right in learned:
                    equality = self._variable_equality(kind, left, right)
                    if equality is not None:
                        augmented.append(equality)
                if not member.is_satisfiable(augmented):
                    return False
                # Entailment of new shared equalities from this slice.
                for left, right in itertools.combinations(sorted(shared), 2):
                    if (left, right) in learned:
                        continue
                    equality = self._variable_equality(kind, left, right)
                    if equality is None:
                        continue
                    negated_equality = (equality[0], True)
                    if not member.is_satisfiable(augmented + [negated_equality]):
                        learned.add((left, right))
                        progress = True
            if not progress:
                break
        return True


def default_combination() -> CombinedTheory:
    """The stock combination: propositional + linear + difference + equality."""
    return CombinedTheory(
        [
            PropositionalTheory(),
            LinearArithmeticTheory(),
            DifferenceTheory(),
            EqualityTheory(),
        ]
    )
