"""Equality with uninterpreted functions, decided by congruence closure.

The paper cites the Nelson–Oppen / Shostak decision procedures as the
specialized theories one wants to combine with temporal reasoning; equality
over uninterpreted function symbols is the canonical such theory.  A
conjunction of equalities and disequalities between ground terms is decided
by computing the congruence closure of the equalities and then checking that
no disequality joins two congruent terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import TheoryError
from ..ltl.syntax import TheoryAtom
from .base import Literal, Theory

__all__ = ["Term", "FunctionTerm", "EqualityAtomPayload", "equality_atom", "EqualityTheory"]


Term = Union[str, "FunctionTerm"]


@dataclass(frozen=True)
class FunctionTerm:
    """An application ``f(t1, ..., tn)`` of an uninterpreted function symbol."""

    function: str
    arguments: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arguments", tuple(self.arguments))

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.arguments)})"


@dataclass(frozen=True)
class EqualityAtomPayload:
    """``left == right`` between ground terms (negation gives disequality)."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} == {self.right}"


def _term_variables(term: Term) -> Tuple[str, ...]:
    if isinstance(term, str):
        return (term,)
    names: List[str] = []
    for argument in term.arguments:
        names.extend(_term_variables(argument))
    return tuple(names)


def equality_atom(
    name: str,
    left: Term,
    right: Term,
    state_vars: Sequence[str] = (),
    rigid_vars: Sequence[str] = (),
) -> TheoryAtom:
    """Wrap an equality between ground terms as a :class:`TheoryAtom`."""
    payload = EqualityAtomPayload(left, right)
    if not state_vars and not rigid_vars:
        state_vars = tuple(dict.fromkeys(_term_variables(left) + _term_variables(right)))
    return TheoryAtom(name=name, constraint=payload,
                      state_vars=tuple(state_vars), rigid_vars=tuple(rigid_vars))


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        self.parent.setdefault(term, term)
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[term] != root:
            self.parent[term], term = root, self.parent[term]
        return root

    def union(self, a: Term, b: Term) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def _subterms(term: Term, accumulator: List[Term]) -> None:
    if term not in accumulator:
        accumulator.append(term)
    if isinstance(term, FunctionTerm):
        for argument in term.arguments:
            _subterms(argument, accumulator)


class EqualityTheory(Theory):
    """Ground equality with uninterpreted functions (congruence closure)."""

    name = "equality-uninterpreted-functions"

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        equalities: List[Tuple[Term, Term]] = []
        disequalities: List[Tuple[Term, Term]] = []
        terms: List[Term] = []
        for atom, negated in literals:
            self.validate_atom(atom)
            payload = atom.constraint
            if not isinstance(payload, EqualityAtomPayload):
                raise TheoryError(
                    f"atom {atom.name!r} does not carry an EqualityAtomPayload"
                )
            pair = (payload.left, payload.right)
            (disequalities if negated else equalities).append(pair)
            _subterms(payload.left, terms)
            _subterms(payload.right, terms)

        uf = _UnionFind()
        for left, right in equalities:
            uf.union(left, right)
        # Congruence: repeat until no function applications get merged.
        changed = True
        applications = [t for t in terms if isinstance(t, FunctionTerm)]
        while changed:
            changed = False
            for i, first in enumerate(applications):
                for second in applications[i + 1:]:
                    if first.function != second.function:
                        continue
                    if len(first.arguments) != len(second.arguments):
                        continue
                    if uf.find(first) == uf.find(second):
                        continue
                    if all(
                        uf.find(a) == uf.find(b)
                        for a, b in zip(first.arguments, second.arguments)
                    ):
                        uf.union(first, second)
                        changed = True
        for left, right in disequalities:
            if uf.find(left) == uf.find(right):
                return False
        return True
