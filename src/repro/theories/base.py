"""The specialized-theory oracle interface used by Algorithms A and B.

Appendix B treats the specialized theory ``T`` as a decision procedure for
conjunctions of literals (Algorithm A filters tableau edges through it) and,
for Algorithm B, as a validity oracle for quantified Boolean combinations of
atoms.  A theory here implements:

* :meth:`Theory.is_satisfiable` — satisfiability of a conjunction of
  (possibly negated) :class:`repro.ltl.syntax.TheoryAtom` literals;
* :meth:`Theory.is_valid_clauses` — validity of a conjunction of clauses
  (a CNF) of such literals, with every variable implicitly universally
  quantified; the default implementation reduces to
  :meth:`is_satisfiable` by negating clause selections, which is adequate
  for the small conditions Algorithm B produces.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

from ..errors import TheoryError
from ..ltl.syntax import TheoryAtom

__all__ = ["Literal", "Theory"]


#: A theory literal: the atom and whether it is negated.
Literal = Tuple[TheoryAtom, bool]


class Theory:
    """Base class of specialized theories."""

    name = "abstract"

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        """Is the conjunction of ``literals`` satisfiable in the theory?"""
        raise NotImplementedError

    def is_valid_literal(self, literal: Literal) -> bool:
        """Is a single literal valid (true under every interpretation)?"""
        atom, negated = literal
        return not self.is_satisfiable([(atom, not negated)])

    def is_valid_clauses(self, clauses: Sequence[Sequence[Literal]]) -> bool:
        """Is the conjunction of disjunctive ``clauses`` valid in the theory?

        A conjunction is valid iff every conjunct is, and a clause
        ``\\/_k l_k`` is valid iff the conjunction of the negated literals
        ``/\\_k ~l_k`` is unsatisfiable — so validity reduces to one
        satisfiability query per clause.
        """
        if not clauses:
            return True
        for clause in clauses:
            if not clause:
                return False
            negated = [(atom, not neg) for atom, neg in clause]
            if self.is_satisfiable(negated):
                return False
        return True

    def validate_atom(self, atom: TheoryAtom) -> None:
        """Hook: raise :class:`TheoryError` when an atom is not interpretable."""
        if not isinstance(atom, TheoryAtom):
            raise TheoryError(f"not a theory atom: {atom!r}")

    def __str__(self) -> str:
        return f"Theory({self.name})"
