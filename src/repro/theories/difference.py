"""Difference-bound arithmetic decided by negative-cycle detection.

Constraints of the forms ``x - y <= c``, ``x - y < c``, ``x <= c`` and
``x >= c`` (a special variable ``ZERO`` encodes the unary bounds) form the
classical difference-bound fragment; a conjunction is satisfiable iff the
constraint graph has no negative cycle (Bellman–Ford).  Strictness is carried
symbolically so the procedure is exact over the rationals.

The fragment covers a large share of the timing-style constraints appearing
in self-timed circuit reasoning and is considerably faster than general
Fourier–Motzkin, which is why it exists alongside
:class:`repro.theories.linear.LinearArithmeticTheory` and is exercised by the
scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TheoryError
from ..ltl.syntax import TheoryAtom
from .base import Literal, Theory

__all__ = ["DifferenceConstraint", "difference_atom", "DifferenceTheory", "ZERO_VARIABLE"]


#: Name of the implicit zero variable used to encode unary bounds.
ZERO_VARIABLE = "__zero__"


@dataclass(frozen=True)
class DifferenceConstraint:
    """``left - right <= bound`` (or ``<`` when strict)."""

    left: str
    right: str
    bound: Fraction
    strict: bool = False

    @staticmethod
    def make(left: str, right: str, bound: object, strict: bool = False) -> "DifferenceConstraint":
        return DifferenceConstraint(left, right, Fraction(bound), strict)

    @staticmethod
    def upper(variable: str, bound: object, strict: bool = False) -> "DifferenceConstraint":
        """``variable <= bound``."""
        return DifferenceConstraint.make(variable, ZERO_VARIABLE, bound, strict)

    @staticmethod
    def lower(variable: str, bound: object, strict: bool = False) -> "DifferenceConstraint":
        """``variable >= bound``  (encoded as ``0 - variable <= -bound``)."""
        return DifferenceConstraint.make(ZERO_VARIABLE, variable, -Fraction(bound), strict)

    def negated(self) -> "DifferenceConstraint":
        """``not (l - r <= c)``  is  ``r - l < -c`` (and dually for strict)."""
        return DifferenceConstraint(self.right, self.left, -self.bound, not self.strict)

    def __str__(self) -> str:
        op = "<" if self.strict else "<="
        return f"{self.left} - {self.right} {op} {self.bound}"


def difference_atom(
    name: str,
    constraint: DifferenceConstraint,
    state_vars: Sequence[str] = (),
    rigid_vars: Sequence[str] = (),
) -> TheoryAtom:
    """Wrap a difference constraint as a :class:`TheoryAtom`."""
    if not state_vars and not rigid_vars:
        state_vars = tuple(
            v for v in (constraint.left, constraint.right) if v != ZERO_VARIABLE
        )
    return TheoryAtom(name=name, constraint=constraint,
                      state_vars=tuple(state_vars), rigid_vars=tuple(rigid_vars))


class DifferenceTheory(Theory):
    """Satisfiability of difference-bound conjunctions via Bellman–Ford."""

    name = "difference-bounds"

    def is_satisfiable(self, literals: Sequence[Literal]) -> bool:
        constraints: List[DifferenceConstraint] = []
        for atom, negated in literals:
            self.validate_atom(atom)
            constraint = atom.constraint
            if not isinstance(constraint, DifferenceConstraint):
                raise TheoryError(
                    f"atom {atom.name!r} does not carry a DifferenceConstraint"
                )
            constraints.append(constraint.negated() if negated else constraint)
        return not self._has_negative_cycle(constraints)

    @staticmethod
    def _has_negative_cycle(constraints: Sequence[DifferenceConstraint]) -> bool:
        # Edge right -> left with weight (bound, strict): left - right <= bound.
        vertices = {ZERO_VARIABLE}
        for c in constraints:
            vertices.add(c.left)
            vertices.add(c.right)
        order = sorted(vertices)
        # Distances are (value, strictness-count) pairs; a cycle is negative
        # when its total weight is < 0, or == 0 with at least one strict edge.
        distance: Dict[str, Tuple[Fraction, int]] = {v: (Fraction(0), 0) for v in order}
        edges = [(c.right, c.left, c.bound, 1 if c.strict else 0) for c in constraints]

        def better(a: Tuple[Fraction, int], b: Tuple[Fraction, int]) -> bool:
            """Is candidate ``a`` a strictly shorter distance than ``b``?"""
            if a[0] != b[0]:
                return a[0] < b[0]
            return a[1] > b[1]

        for _ in range(len(order)):
            changed = False
            for source, target, weight, strict in edges:
                candidate = (distance[source][0] + weight, distance[source][1] + strict)
                if better(candidate, distance[target]):
                    distance[target] = candidate
                    changed = True
            if not changed:
                return False
        # One more relaxation round: any improvement means a negative cycle.
        for source, target, weight, strict in edges:
            candidate = (distance[source][0] + weight, distance[source][1] + strict)
            if better(candidate, distance[target]):
                return True
        return False
