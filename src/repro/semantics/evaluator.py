r"""The satisfaction relation of Chapter 3.

The model defines, for a state sequence ``s``, a context ``<i, j>`` and an
interval formula ``alpha``, the relation ``<i, j> |= alpha``::

    <i, j> |= P          iff  P is true of the first state of the context
    <i, j> |= ~alpha     iff  not <i, j> |= alpha
    <i, j> |= a /\ b     iff  both hold
    <i, j> |= [] a       iff  for every k in <i, j>,  <k, j> |= a
    <i, j> |= <> a       iff  for some  k in <i, j>,  <k, j> |= a
    <i, j> |= [ I ] a    iff  F(I, <i, j>, Forward) |= a

with every formula satisfied on the null interval ``⊥`` (the partial
correctness device of the paper).  A sequence satisfies a formula when
``<1, ∞> |= alpha``.

Beyond the core relation, the evaluator supports:

* ``*I`` (interval eventuality) — directly, agreeing with its definition
  ``~[I] False`` (valid formula V4);
* the ``*`` interval-term modifier — by applying the Appendix A reduction on
  the fly;
* ``Forall`` over logical variables — quantification ranges over an explicit
  domain or, by default, over the values observed in the trace;
* the ``atO↑`` parameter-binding convention (:class:`NextBinding`).

Evaluation is memoized per ``(formula, context, environment)``; contexts in
the repeating cycle of a lasso trace are normalized so memoization also
captures the periodic structure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from ..errors import EvaluationError
from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from ..syntax.terms import OpAt
from .construction import BOTTOM, Direction, Interval, IntervalConstructor
from .reduction import eliminate_stars, has_star
from .trace import INFINITY, Trace

__all__ = ["Evaluator", "satisfies", "holds_on_context"]


Position = Union[int, float]


class Evaluator:
    """Evaluates interval-logic formulas over one trace.

    Parameters
    ----------
    trace:
        The computation.
    domain:
        Optional mapping from logical-variable name to the iterable of values
        it quantifies over.  Variables not mentioned default to the trace's
        observed value universe.
    """

    def __init__(
        self,
        trace: Trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> None:
        self._trace = trace
        self._domain = {k: tuple(v) for k, v in (domain or {}).items()}
        self._default_domain: Optional[Tuple[Any, ...]] = None
        self._constructor = IntervalConstructor(trace, self._holds_callback)
        self._memo: Dict[Any, bool] = {}

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def memo_size(self) -> int:
        """Number of memoized ``(formula, context, env)`` verdicts."""
        return len(self._memo)

    def clear_memo(self) -> None:
        """Drop every memoized verdict (the trace and domains are kept)."""
        self._memo.clear()

    # -- public API ---------------------------------------------------------------

    def satisfies(self, formula: Formula, env: Optional[Mapping[str, Any]] = None) -> bool:
        """``s |= formula`` — evaluation over the whole computation ``<1, ∞>``."""
        return self.holds(formula, 1, INFINITY, env or {})

    def holds(
        self,
        formula: Formula,
        lo: Position,
        hi: Position,
        env: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """``<lo, hi> |= formula`` under the environment ``env``."""
        return self._holds(formula, int(lo), hi, dict(env or {}))

    def construct_interval(
        self,
        term,
        lo: Position = 1,
        hi: Position = INFINITY,
        env: Optional[Mapping[str, Any]] = None,
        direction: str = Direction.FORWARD,
    ) -> Optional[Interval]:
        """Expose the construction function ``F`` for inspection and testing."""
        context = Interval(int(lo), hi)
        return self._constructor.construct(term, context, direction, dict(env or {}))

    # -- internals -------------------------------------------------------------------

    def _holds_callback(
        self, formula: Formula, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        return self._holds(formula, lo, hi, env)

    def _normalize(self, lo: int, hi: Position) -> Tuple[int, Position]:
        """Shift a context lying entirely in the repeating cycle back one period.

        Positions at or beyond ``loop_start + period`` see exactly the same
        states as one period earlier, so contexts can be canonicalized for
        memoization without changing their meaning.
        """
        period = self._trace.period
        loop_start = self._trace.loop_start
        while lo - period >= loop_start:
            lo -= period
            if hi != INFINITY:
                hi -= period
        return lo, hi

    def _memo_key(
        self, formula: Formula, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> Optional[Tuple[Any, ...]]:
        """Key the memo on the *free* variables of the formula only.

        A verdict depends on the environment solely through the formula's
        free logical variables, so closed subformulas share one memo entry
        across every ``Forall`` branch instead of one per binding.
        """
        try:
            free = formula.free_variables()
            if free:
                env_key = tuple(
                    sorted((name, env[name]) for name in free if name in env)
                )
            else:
                env_key = ()
            return (formula, lo, hi, env_key)
        except TypeError:
            return None

    def _holds(
        self, formula: Formula, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        lo, hi = self._normalize(lo, hi)
        key = self._memo_key(formula, lo, hi, env)
        if key is not None and key in self._memo:
            return self._memo[key]
        result = self._dispatch(formula, lo, hi, env)
        if key is not None:
            self._memo[key] = result
        return result

    def _dispatch(
        self, formula: Formula, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        if isinstance(formula, Atom):
            return formula.predicate.holds(self._trace.state_at(lo), env)
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, Not):
            return not self._holds(formula.operand, lo, hi, env)
        if isinstance(formula, And):
            return self._holds(formula.left, lo, hi, env) and self._holds(
                formula.right, lo, hi, env
            )
        if isinstance(formula, Or):
            return self._holds(formula.left, lo, hi, env) or self._holds(
                formula.right, lo, hi, env
            )
        if isinstance(formula, Implies):
            return (not self._holds(formula.left, lo, hi, env)) or self._holds(
                formula.right, lo, hi, env
            )
        if isinstance(formula, Iff):
            return self._holds(formula.left, lo, hi, env) == self._holds(
                formula.right, lo, hi, env
            )
        if isinstance(formula, Always):
            return all(
                self._holds(formula.operand, k, hi, env)
                for k in self._trace.suffix_representatives(lo, hi)
            )
        if isinstance(formula, Eventually):
            return any(
                self._holds(formula.operand, k, hi, env)
                for k in self._trace.suffix_representatives(lo, hi)
            )
        if isinstance(formula, IntervalFormula):
            return self._holds_interval_formula(formula, lo, hi, env)
        if isinstance(formula, Occurs):
            return self._holds_occurs(formula, lo, hi, env)
        if isinstance(formula, Forall):
            return self._holds_forall(formula, lo, hi, env)
        if isinstance(formula, NextBinding):
            return self._holds_next_binding(formula, lo, hi, env)
        raise EvaluationError(f"unknown formula node: {formula!r}")

    def _holds_interval_formula(
        self, formula: IntervalFormula, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        if has_star(formula.term):
            reduced = eliminate_stars(formula)
            return self._holds(reduced, lo, hi, env)
        context = Interval(lo, hi)
        found = self._constructor.construct(
            formula.term, context, Direction.FORWARD, env
        )
        if found is BOTTOM:
            return True
        return self._holds(formula.body, found.lo, found.hi, env)

    def _holds_occurs(
        self, formula: Occurs, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        if has_star(formula.term):
            reduced = eliminate_stars(formula)
            return self._holds(reduced, lo, hi, env)
        context = Interval(lo, hi)
        found = self._constructor.construct(
            formula.term, context, Direction.FORWARD, env
        )
        return found is not BOTTOM

    def _domain_for(self, name: str) -> Tuple[Any, ...]:
        if name in self._domain:
            return self._domain[name]
        if self._default_domain is None:
            self._default_domain = self._trace.value_universe()
        return self._default_domain

    def _holds_forall(
        self, formula: Forall, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        def recurse(remaining: Tuple[str, ...], current: Dict[str, Any]) -> bool:
            if not remaining:
                return self._holds(formula.body, lo, hi, current)
            name, rest = remaining[0], remaining[1:]
            for value in self._domain_for(name):
                extended = dict(current)
                extended[name] = value
                if not recurse(rest, extended):
                    return False
            return True

        return recurse(tuple(formula.variables), dict(env))

    def _holds_next_binding(
        self, formula: NextBinding, lo: int, hi: Position, env: Mapping[str, Any]
    ) -> bool:
        at_event = Atom(OpAt(formula.operation))
        context = Interval(lo, hi)
        found = self._constructor.find_event(at_event, context, Direction.FORWARD, env)
        if found is BOTTOM:
            return True
        call_state = self._trace.state_at(found.hi)
        record = call_state.operation(formula.operation)
        args = record.args
        if len(args) < len(formula.variables):
            raise EvaluationError(
                f"bind-next over operation {formula.operation!r} binds "
                f"{len(formula.variables)} variable(s) "
                f"({', '.join(formula.variables)}) but the call at position "
                f"{found.hi} supplies only {len(args)} argument(s)"
            )
        extended = dict(env)
        for index, name in enumerate(formula.variables):
            extended[name] = args[index]
        return self._holds(formula.body, lo, hi, extended)


def satisfies(
    trace: Trace,
    formula: Formula,
    domain: Optional[Mapping[str, Iterable[Any]]] = None,
    env: Optional[Mapping[str, Any]] = None,
) -> bool:
    """Convenience wrapper: does the whole computation satisfy ``formula``?"""
    return Evaluator(trace, domain).satisfies(formula, env)


def holds_on_context(
    trace: Trace,
    formula: Formula,
    lo: Position,
    hi: Position,
    domain: Optional[Mapping[str, Iterable[Any]]] = None,
    env: Optional[Mapping[str, Any]] = None,
) -> bool:
    """Convenience wrapper: ``<lo, hi> |= formula`` on ``trace``."""
    return Evaluator(trace, domain).holds(formula, lo, hi, env)
