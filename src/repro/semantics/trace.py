"""Computation traces: finite or infinite state sequences.

Chapter 3 defines satisfaction over a finite or infinite computation state
sequence ``s``, with the convention "for a finite computation, we extend the
last state to form an infinite sequence".  We represent every trace as a
*lasso*: a finite list of states ``s_1 ... s_n`` together with a loop-back
index ``loop_start``; positions at or beyond ``n`` repeat the cyclic segment
``s_{loop_start} ... s_n`` forever.  The paper's finite-computation
convention is the special case ``loop_start = n`` (the last state repeats),
which is the default.  Genuinely infinite periodic behaviours use an earlier
``loop_start``.

Positions are 1-based virtual indices as in the paper (``s<1,∞>`` is the
whole computation); the trace maps any virtual position to a concrete state
and provides the position arithmetic the evaluator needs (canonical
positions, suffix representatives, scan bounds).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import TraceError
from .columns import ColumnStore
from .state import State

__all__ = ["INFINITY", "Trace", "make_trace", "boolean_trace"]


INFINITY = math.inf


class Trace:
    """A lasso-shaped computation trace.

    Parameters
    ----------
    states:
        The concrete states ``s_1 ... s_n`` (at least one required).
    loop_start:
        1-based index of the first state of the repeating cycle.  Defaults to
        ``n`` — i.e. the paper's "extend the last state" convention for
        finite computations.
    mark_start:
        When true (the default), the first state is augmented with the
        boolean state variable ``__start__`` so that the distinguished
        ``start`` predicate of the Init-clause interpretation holds exactly
        there.

    The native representation is **column-major**: a
    :class:`~repro.semantics.columns.ColumnStore` with one dictionary-
    encoded column per state variable (and per operation name), built in a
    single pass, with the ``__start__`` marking done columnwise.  The
    row-major ``State`` API — :meth:`states`, :meth:`state_at`, iteration —
    is a lazy view: source states are handed back untouched where possible
    and materialized (with ``__start__`` injected) only on first access, so
    constructing a trace no longer copies every state, and a compiled check
    that answers through column bitsets never touches most rows at all.
    Pickling ships the columns, not the per-state dicts — the compact
    worker handoff ``check_many`` fan-out relies on.
    """

    __slots__ = ("_source", "_store", "_materialized", "_mark_start", "_loop_start", "_length")

    def __init__(
        self,
        states: Sequence[State],
        loop_start: Optional[int] = None,
        mark_start: bool = True,
    ) -> None:
        state_list = list(states)
        if not state_list:
            raise TraceError("a trace requires at least one state")
        for index, state in enumerate(state_list):
            if not isinstance(state, State):
                raise TraceError(
                    f"trace element {index} is not a State: {type(state).__name__}"
                )
        n = len(state_list)
        if loop_start is None:
            loop_start = n
        if not 1 <= loop_start <= n:
            raise TraceError(
                f"loop_start must be between 1 and {n}, got {loop_start}"
            )
        self._source: Optional[List[State]] = state_list
        self._store: Optional[ColumnStore] = None
        self._materialized: List[Optional[State]] = [None] * n
        self._mark_start = mark_start
        self._loop_start = loop_start
        self._length = n

    # -- the column-major representation --------------------------------------

    @property
    def columns(self) -> ColumnStore:
        """The trace's :class:`~repro.semantics.columns.ColumnStore` (lazy,
        built once)."""
        if self._store is None:
            self._store = ColumnStore(self._source or [], self._mark_start)
        return self._store

    def _materialize(self, index: int) -> State:
        """The row view of concrete state ``index`` (0-based), cached."""
        source = self._source
        if source is not None:
            state = source[index]
            if self._mark_start:
                if index == 0:
                    if state.raw_values.get("__start__") is not True:
                        values = dict(state.raw_values)
                        values["__start__"] = True
                        state = State(values, state.raw_operations)
                elif "__start__" not in state.raw_values:
                    values = dict(state.raw_values)
                    values["__start__"] = False
                    state = State(values, state.raw_operations)
        else:
            store = self.columns
            state = State(store.state_values(index), store.state_operations(index))
        self._materialized[index] = state
        return state

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Columns are the wire format: one codes array + interned value list
        # per variable instead of n per-state dicts.  The receiving side
        # rebuilds State rows lazily from the columns.
        return {
            "store": self.columns,
            "loop_start": self._loop_start,
            "length": self._length,
        }

    def __setstate__(self, payload: dict) -> None:
        self._source = None
        self._store = payload["store"]
        self._length = payload["length"]
        self._materialized = [None] * self._length
        self._mark_start = False  # marking already lives in the columns
        self._loop_start = payload["loop_start"]

    # -- basic structure ------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of concrete states (the lasso's stem plus one cycle)."""
        return self._length

    @property
    def loop_start(self) -> int:
        """1-based index of the first state of the repeating cycle."""
        return self._loop_start

    @property
    def period(self) -> int:
        """Length of the repeating cycle."""
        return self._length - self._loop_start + 1

    @property
    def is_stutter_extended(self) -> bool:
        """True for the paper's finite-computation convention (period 1 on the last state)."""
        return self._loop_start == self._length

    def states(self) -> Tuple[State, ...]:
        """The concrete states ``s_1 ... s_n`` (materializing the lazy view)."""
        materialized = self._materialized
        return tuple(
            state if state is not None else self._materialize(index)
            for index, state in enumerate(materialized)
        )

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[State]:
        return iter(self.states())

    def __repr__(self) -> str:
        kind = "stutter" if self.is_stutter_extended else f"loop@{self._loop_start}"
        return f"Trace(length={self._length}, {kind})"

    # -- position arithmetic ---------------------------------------------------

    def canonical(self, position: Union[int, float]) -> int:
        """Map a virtual 1-based position to the concrete index that realizes it."""
        if position == INFINITY:
            raise TraceError("cannot canonicalize the infinite position")
        pos = int(position)
        if pos < 1:
            raise TraceError(f"positions are 1-based, got {pos}")
        if pos <= self._length:
            return pos
        offset = (pos - self._loop_start) % self.period
        return self._loop_start + offset

    def state_at(self, position: Union[int, float]) -> State:
        """The state at a virtual 1-based position (wrapping into the cycle)."""
        index = self.canonical(position) - 1
        state = self._materialized[index]
        if state is None:
            state = self._materialize(index)
        return state

    def positions(self) -> Iterable[int]:
        """The concrete 1-based positions ``1 .. n``."""
        return range(1, self._length + 1)

    def suffix_representatives(
        self, start: Union[int, float], end: Union[int, float]
    ) -> List[int]:
        """Positions sufficient to decide ``[]``/``<>`` over the context ``<start, end>``.

        For a finite context these are simply ``start .. end``.  For an
        infinite context the suffix structure is eventually periodic: suffixes
        anchored at positions that share a canonical cycle position are
        isomorphic, so one full cycle of representatives suffices.
        """
        if start == INFINITY:
            raise TraceError("context cannot start at infinity")
        lo = int(start)
        if end != INFINITY:
            return list(range(lo, int(end) + 1))
        if lo >= self._loop_start:
            return list(range(lo, lo + self.period))
        return list(range(lo, self._length + 1))

    def scan_bound(self, start: Union[int, float], end: Union[int, float]) -> int:
        """Largest virtual position worth scanning in the context ``<start, end>``.

        Event detection looks at pairs of adjacent positions; in an infinite
        context everything from ``loop_start`` on repeats with the cycle
        period, so scanning one extra cycle beyond both the concrete states
        and the context start covers every distinct adjacent pair (including
        the wrap-around pair).
        """
        if end != INFINITY:
            return int(end)
        return max(int(start), self._length) + self.period

    def repeats_forever(self, position: Union[int, float]) -> bool:
        """True if the virtual ``position`` lies in the repeating cycle region.

        An event whose change-pair lies entirely in this region recurs
        infinitely often in an infinite context.
        """
        if position == INFINITY:
            return True
        return int(position) > self._length or int(position) >= self._loop_start

    # -- endpoint-index hooks ----------------------------------------------------

    def change_positions(self, truth: Sequence[Any]) -> Tuple[List[int], List[int]]:
        """Change positions (False→True) of a per-state truth profile.

        ``truth[c]`` gives a predicate's value in concrete state ``c + 1``.
        Returns ``(stem, cycle)``: ``stem`` holds the virtual positions
        ``k`` in ``[2, length]`` whose adjacent pair ``<k-1, k>`` is a
        change; ``cycle`` the change positions in
        ``[length+1, length+period]`` — the first virtual copy of the
        repeating cycle — so that every change position beyond the concrete
        states is ``cycle[i] + t * period`` for some ``t >= 0``.  This is
        the hook behind the compiled engine's interval-endpoint index
        (:class:`repro.compile.runtime.EventIndex`), which bisects these
        lists instead of re-scanning the trace per event search.
        """
        if len(truth) != self._length:
            raise TraceError(
                f"profile has {len(truth)} entries but the trace has "
                f"{self._length} states"
            )
        values = [bool(v) for v in truth]
        stem = [
            k for k in range(2, self._length + 1)
            if values[k - 1] and not values[k - 2]
        ]
        cycle = [
            k
            for k in range(self._length + 1, self._length + self.period + 1)
            if values[self.canonical(k) - 1] and not values[self.canonical(k - 1) - 1]
        ]
        return stem, cycle

    # -- value universe ---------------------------------------------------------

    def value_universe(self) -> Tuple[Any, ...]:
        """Distinct non-boolean values observed anywhere in the trace.

        Used as the default quantification domain for ``Forall`` formulas when
        checking specification conformance of a trace (the values a queue was
        asked to carry, the sequence numbers a protocol used, ...).  The
        deduplication runs through the column store's set-backed pass
        (first-observation order preserved) instead of the quadratic
        ``value not in seen`` list scan this method started as.
        """
        return self.columns.value_universe()


def make_trace(
    assignments: Sequence[Mapping[str, Any]],
    loop_start: Optional[int] = None,
    operations: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Trace:
    """Build a trace from plain dictionaries of state-variable values.

    ``operations``, when given, is a parallel sequence of mappings from
    operation name to ``(phase, args, results)`` tuples or dicts.
    """
    states: List[State] = []
    for index, values in enumerate(assignments):
        op_records = None
        if operations is not None:
            raw = operations[index]
            op_records = {}
            for name, spec in raw.items():
                if isinstance(spec, dict):
                    op_records[name] = spec
                else:
                    phase, args, results = (tuple(spec) + ("", (), ()))[:3]
                    op_records[name] = {
                        "phase": phase,
                        "args": tuple(args),
                        "results": tuple(results),
                    }
        states.append(State(dict(values), op_records))
    return Trace(states, loop_start=loop_start)


def boolean_trace(
    variables: Sequence[str],
    rows: Sequence[Sequence[int]],
    loop_start: Optional[int] = None,
) -> Trace:
    """Build a trace of boolean states from a truth table.

    ``rows[k][i]`` gives the value of ``variables[i]`` in state ``k+1``.  This
    is the most convenient constructor for unit tests mirroring the paper's
    timing diagrams.
    """
    if not rows:
        raise TraceError("boolean_trace requires at least one row")
    states = []
    for row in rows:
        if len(row) != len(variables):
            raise TraceError(
                f"row {row!r} does not match variables {list(variables)!r}"
            )
        states.append(State({name: bool(v) for name, v in zip(variables, row)}))
    return Trace(states, loop_start=loop_start)
