r"""Reduction of formulas containing the ``*`` interval-term modifier (Appendix A).

The ``*`` modifier on an interval term adds the requirement that the marked
sub-interval *must be found* whenever its surrounding context is established;
it contributes only linguistic expressive power.  Appendix A reduces any
formula containing the modifier to an equivalent modifier-free formula, based
on the equivalence::

    [ I ] alpha  ===  [ I' ] alpha  /\  [ I ] true

where ``I'`` omits the ``*`` modifiers, together with rules that push the
remaining ``[ I ] true`` obligation down to interval-eventuality formulas
``*J`` (the :class:`repro.syntax.formulas.Occurs` connective, which is core
language: ``*J === ~[J] False``).

Chapter 2.1 records the worked instance that anchors our reconstruction of
the (partly garbled in the source scan) composite rules::

    [ *(A => B) => C ] <>D   ===   [ (A => B) => C ] <>D  /\  *(A => B)
    *(A => B)                ===   *A  /\  [ A => ] *B

Concretely the obligation of a term is computed recursively:

* events contribute nothing (stars inside an event's *formula* are handled by
  the ordinary formula rewrite);
* ``begin I`` / ``end I`` contribute the obligation of ``I``;
* ``*I`` contributes ``Occurs(strip(I))`` conjoined with the obligation of
  ``I`` itself;
* ``I => J`` contributes the obligation of ``I`` in the current context and
  the obligation of ``J`` relocated into the context ``[ strip(I) => ]``;
* ``I <= J`` contributes the obligation of ``J`` in the current context and
  the obligation of ``I`` relocated into the context ``[ => strip(J) ]``.

The evaluator applies this reduction on the fly whenever it meets a starred
term, so the reduction *is* the semantics of ``*``; the test-suite checks the
documented equivalences hold semantically on exhaustive small traces.
"""

from __future__ import annotations

from typing import List, Optional

from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
    conjoin,
)
from ..syntax.intervals import (
    Backward,
    Begin,
    End,
    EventTerm,
    Forward,
    IntervalTerm,
    Star,
)

__all__ = [
    "strip_stars",
    "term_obligation",
    "eliminate_stars",
    "has_star",
    "occurs_requirement",
]


def has_star(term: IntervalTerm) -> bool:
    """True when the term contains a ``*`` modifier anywhere."""
    return term.has_star()


def strip_stars(term: IntervalTerm) -> IntervalTerm:
    """The term ``I'`` obtained by omitting every ``*`` modifier in ``I``."""
    if isinstance(term, Star):
        return strip_stars(term.term)
    if isinstance(term, EventTerm):
        return EventTerm(eliminate_stars(term.formula))
    if isinstance(term, Begin):
        return Begin(strip_stars(term.term))
    if isinstance(term, End):
        return End(strip_stars(term.term))
    if isinstance(term, Forward):
        return Forward(
            strip_stars(term.left) if term.left is not None else None,
            strip_stars(term.right) if term.right is not None else None,
        )
    if isinstance(term, Backward):
        return Backward(
            strip_stars(term.left) if term.left is not None else None,
            strip_stars(term.right) if term.right is not None else None,
        )
    return term


def _is_trivially_true(formula: Formula) -> bool:
    return isinstance(formula, TrueFormula)


def term_obligation(term: IntervalTerm) -> Formula:
    """The ``[ I ] true`` obligation of a (possibly starred) interval term.

    The result is a modifier-free formula that is valid (``True``) when the
    term carries no ``*`` modifier.
    """
    if isinstance(term, EventTerm):
        return TrueFormula()
    if isinstance(term, Star):
        inner = term_obligation(term.term)
        must_occur = Occurs(strip_stars(term.term))
        if _is_trivially_true(inner):
            return must_occur
        return And(must_occur, inner)
    if isinstance(term, (Begin, End)):
        return term_obligation(term.term)
    if isinstance(term, Forward):
        parts: List[Formula] = []
        if term.left is not None:
            left_req = term_obligation(term.left)
            if not _is_trivially_true(left_req):
                parts.append(left_req)
        if term.right is not None:
            right_req = term_obligation(term.right)
            if not _is_trivially_true(right_req):
                if term.left is not None:
                    parts.append(
                        IntervalFormula(Forward(strip_stars(term.left), None), right_req)
                    )
                else:
                    parts.append(right_req)
        return conjoin(tuple(parts)) if parts else TrueFormula()
    if isinstance(term, Backward):
        parts = []
        if term.right is not None:
            right_req = term_obligation(term.right)
            if not _is_trivially_true(right_req):
                parts.append(right_req)
        if term.left is not None:
            left_req = term_obligation(term.left)
            if not _is_trivially_true(left_req):
                if term.right is not None:
                    parts.append(
                        IntervalFormula(Forward(None, strip_stars(term.right)), left_req)
                    )
                else:
                    parts.append(left_req)
        return conjoin(tuple(parts)) if parts else TrueFormula()
    return TrueFormula()


def occurs_requirement(term: IntervalTerm) -> Formula:
    """The modifier-free formula equivalent to ``*I`` for a starred term ``I``."""
    stripped = Occurs(strip_stars(term))
    obligation = term_obligation(term)
    if _is_trivially_true(obligation):
        return stripped
    return And(stripped, obligation)


def eliminate_stars(formula: Formula) -> Formula:
    """Rewrite ``formula`` into an equivalent formula without ``*`` modifiers.

    Interval formulas over starred terms become the conjunction of the
    stripped interval formula and the term's obligation; ``Occurs`` over a
    starred term becomes the stripped occurrence conjoined with the
    obligation; all other connectives are rewritten structurally.
    """
    if isinstance(formula, (Atom, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_stars(formula.operand))
    if isinstance(formula, And):
        return And(eliminate_stars(formula.left), eliminate_stars(formula.right))
    if isinstance(formula, Or):
        return Or(eliminate_stars(formula.left), eliminate_stars(formula.right))
    if isinstance(formula, Implies):
        return Implies(eliminate_stars(formula.left), eliminate_stars(formula.right))
    if isinstance(formula, Iff):
        return Iff(eliminate_stars(formula.left), eliminate_stars(formula.right))
    if isinstance(formula, Always):
        return Always(eliminate_stars(formula.operand))
    if isinstance(formula, Eventually):
        return Eventually(eliminate_stars(formula.operand))
    if isinstance(formula, Forall):
        return Forall(formula.variables, eliminate_stars(formula.body))
    if isinstance(formula, NextBinding):
        return NextBinding(
            formula.operation, formula.variables, eliminate_stars(formula.body)
        )
    if isinstance(formula, Occurs):
        if has_star(formula.term):
            return occurs_requirement(formula.term)
        return Occurs(strip_stars(formula.term))
    if isinstance(formula, IntervalFormula):
        body = eliminate_stars(formula.body)
        if has_star(formula.term):
            stripped = IntervalFormula(strip_stars(formula.term), body)
            obligation = term_obligation(formula.term)
            if _is_trivially_true(obligation):
                return stripped
            return And(stripped, obligation)
        return IntervalFormula(strip_stars(formula.term), body)
    return formula
