"""Model-theoretic semantics of the interval logic (Chapter 3).

States, traces, the interval construction function ``F``, the satisfaction
relation, and the Appendix A reduction of the ``*`` interval-term modifier.
"""

from .columns import Column, ColumnStore, OperationColumn
from .construction import BOTTOM, Direction, Interval, IntervalConstructor
from .evaluator import Evaluator, holds_on_context, satisfies
from .reduction import (
    eliminate_stars,
    has_star,
    occurs_requirement,
    strip_stars,
    term_obligation,
)
from .state import OperationRecord, State
from .trace import INFINITY, Trace, boolean_trace, make_trace

__all__ = [
    "Column",
    "ColumnStore",
    "OperationColumn",
    "BOTTOM",
    "Direction",
    "Interval",
    "IntervalConstructor",
    "Evaluator",
    "holds_on_context",
    "satisfies",
    "eliminate_stars",
    "has_star",
    "occurs_requirement",
    "strip_stars",
    "term_obligation",
    "OperationRecord",
    "State",
    "INFINITY",
    "Trace",
    "boolean_trace",
    "make_trace",
]
