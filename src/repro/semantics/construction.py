"""The interval construction function ``F`` of Chapter 3.

Given an interval term, a context interval ``<i, j>`` and a direction of
search (forward ``F`` or backward ``B``), the function returns the interval
the term denotes within the context, or the null interval ``⊥`` when the
interval cannot be constructed.  All functions on intervals are strict on
``⊥``; the satisfaction relation makes any formula vacuously true on ``⊥``
(partial-correctness semantics).

The defining clauses implemented verbatim from the paper:

* an event term ``a`` denotes the interval of change ``<k-1, k>`` in which
  ``a`` changes from false to true; forward search takes the minimum of the
  changeset, backward search the maximum (``⊥`` for an infinite changeset);
* ``begin I`` / ``end I`` are the unit intervals at the first / last state of
  ``I`` (``end`` is ``⊥`` for an infinite ``I``);
* ``I =>`` is ``<last(F(I, ctx, d)), j>``; ``=> J`` is
  ``<i, last(F(J, ctx, F))>``; ``=>`` alone is the whole context;
  ``I => J`` composes the two;
* ``I <=`` is ``<last(F(I, ctx, B)), j>`` (most recent ``I``); ``<= J`` is
  ``<i, last(F(J, ctx, d))>``; ``I <= J`` composes them, locating ``J``
  first and then searching backward for ``I``.

Event formulas may be arbitrary interval formulas, so the constructor needs
to evaluate formulas on suffix contexts; it receives that capability as a
callback (``holds(formula, lo, hi, env)``) to avoid a circular dependency
with the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Union

from ..errors import EvaluationError
from ..syntax.intervals import (
    Backward,
    Begin,
    End,
    EventTerm,
    Forward,
    IntervalTerm,
    Star,
)
from .trace import INFINITY, Trace

__all__ = ["Interval", "BOTTOM", "Direction", "IntervalConstructor"]


@dataclass(frozen=True)
class Interval:
    """A non-null interval ``<lo, hi>`` of 1-based positions (``hi`` may be ∞)."""

    lo: int
    hi: Union[int, float]

    def __post_init__(self) -> None:
        if self.hi != INFINITY and self.lo > self.hi:
            raise EvaluationError(f"malformed interval <{self.lo}, {self.hi}>")

    @property
    def is_infinite(self) -> bool:
        return self.hi == INFINITY

    @property
    def first(self) -> int:
        """``first(<i, j>) = i``."""
        return self.lo

    @property
    def last(self) -> Union[int, float]:
        """``last(<i, j>) = j`` (∞ for an infinite interval)."""
        return self.hi

    def __str__(self) -> str:
        hi = "oo" if self.is_infinite else str(self.hi)
        return f"<{self.lo}, {hi}>"


#: The null interval ``⊥`` returned when an interval cannot be constructed.
BOTTOM: Optional[Interval] = None


class Direction:
    """Direction-of-search constants for the construction function."""

    FORWARD = "F"
    BACKWARD = "B"


HoldsCallback = Callable[[Any, int, Union[int, float], Mapping[str, Any]], bool]


class IntervalConstructor:
    """Computes ``F(I, <i, j>, d)`` over a fixed trace.

    Parameters
    ----------
    trace:
        The computation the intervals are located in.
    holds:
        Callback evaluating an interval formula on a context of the trace;
        supplied by :class:`repro.semantics.evaluator.Evaluator`.
    """

    def __init__(self, trace: Trace, holds: HoldsCallback) -> None:
        self._trace = trace
        self._holds = holds

    # -- events -----------------------------------------------------------------

    def find_event(
        self,
        formula: Any,
        context: Optional[Interval],
        direction: str,
        env: Mapping[str, Any],
    ) -> Optional[Interval]:
        """Locate the first/last event of ``formula`` within ``context``.

        The changeset of Chapter 3: positions ``k`` in ``<i+1, j>`` with
        ``<k-1, j> |= not formula`` and ``<k, j> |= formula``; each event is
        the change interval ``<k-1, k>``.  Backward search returns ``⊥`` when
        the changeset is infinite (an event recurring in the cycle of an
        infinite context).
        """
        if context is BOTTOM:
            return BOTTOM
        i, j = context.lo, context.hi
        bound = self._trace.scan_bound(i, j)
        found = []
        for k in range(i + 1, bound + 1):
            before = self._holds(formula, k - 1, j, env)
            if before:
                continue
            if self._holds(formula, k, j, env):
                if direction == Direction.FORWARD:
                    return Interval(k - 1, k)
                found.append(k)
        if direction == Direction.FORWARD:
            return BOTTOM
        if not found:
            return BOTTOM
        if j == INFINITY:
            # Events whose change pair lies in the repeating cycle recur
            # infinitely often; the changeset is then infinite and max is ⊥.
            for k in found:
                if self._trace.repeats_forever(k - 1):
                    return BOTTOM
        k = max(found)
        return Interval(k - 1, k)

    # -- the construction function ----------------------------------------------

    def construct(
        self,
        term: IntervalTerm,
        context: Optional[Interval],
        direction: str,
        env: Mapping[str, Any],
    ) -> Optional[Interval]:
        """``F(term, context, direction)`` — strict on ``⊥``."""
        if context is BOTTOM:
            return BOTTOM
        if isinstance(term, Star):
            # The * modifier does not change which interval is constructed;
            # its "must be found" requirement is a formula-level obligation
            # extracted by the Appendix A reduction.
            return self.construct(term.term, context, direction, env)
        if isinstance(term, EventTerm):
            return self.find_event(term.formula, context, direction, env)
        if isinstance(term, Begin):
            inner = self.construct(term.term, context, direction, env)
            if inner is BOTTOM:
                return BOTTOM
            return Interval(inner.first, inner.first)
        if isinstance(term, End):
            inner = self.construct(term.term, context, direction, env)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(int(inner.last), int(inner.last))
        if isinstance(term, Forward):
            return self._construct_forward(term, context, direction, env)
        if isinstance(term, Backward):
            return self._construct_backward(term, context, direction, env)
        raise EvaluationError(f"unknown interval term: {term!r}")

    def _construct_forward(
        self,
        term: Forward,
        context: Interval,
        direction: str,
        env: Mapping[str, Any],
    ) -> Optional[Interval]:
        left, right = term.left, term.right
        if left is None and right is None:
            return context
        if left is not None and right is None:
            # I =>  : from the end of the next I to the end of the context.
            inner = self.construct(left, context, direction, env)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(int(inner.last), context.hi)
        if left is None and right is not None:
            # => J : from the start of the context to the end of the first J.
            inner = self.construct(right, context, Direction.FORWARD, env)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(context.lo, int(inner.last))
        # I => J : compose the two.
        prefix = self._construct_forward(Forward(left, None), context, direction, env)
        return self._construct_forward(
            Forward(None, right), prefix, Direction.FORWARD, env
        ) if prefix is not BOTTOM else BOTTOM

    def _construct_backward(
        self,
        term: Backward,
        context: Interval,
        direction: str,
        env: Mapping[str, Any],
    ) -> Optional[Interval]:
        left, right = term.left, term.right
        if left is None and right is None:
            # <=  with no arguments is equivalent to => (the whole context).
            return context
        if left is not None and right is None:
            # I <= : from the end of the most recent I to the end of the context.
            inner = self.construct(left, context, Direction.BACKWARD, env)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(int(inner.last), context.hi)
        if left is None and right is not None:
            # <= J : equivalent to => J except the inner direction follows d.
            inner = self.construct(right, context, direction, env)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(context.lo, int(inner.last))
        # I <= J : locate J first, then search backward for the most recent I.
        suffix = self._construct_backward(Backward(None, right), context, direction, env)
        if suffix is BOTTOM:
            return BOTTOM
        return self._construct_backward(
            Backward(left, None), suffix, Direction.FORWARD, env
        )
