"""States of a computation.

The model of Chapter 3 interprets formulas over sequences of *states*.  A
state assigns values to state variables and, for the parameterized abstract
operations of Chapter 2.2, records each operation's lifecycle phase
(``at`` / ``in`` / ``after`` / ``idle``) together with its argument and
result values.

States are immutable; simulators build successive states with
:meth:`State.with_values` / :meth:`State.with_operation` so that a trace can
safely share structure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..errors import TraceError
from ..syntax.terms import OpPhase

__all__ = ["OperationRecord", "State"]


class OperationRecord(Mapping[str, Any]):
    """The lifecycle record of one abstract operation within one state.

    Keys: ``phase`` (one of :class:`repro.syntax.terms.OpPhase`), ``args``
    (tuple of entry-parameter values) and ``results`` (tuple of result
    values, meaningful in the ``after`` phase).
    """

    __slots__ = ("_phase", "_args", "_results")

    def __init__(
        self,
        phase: str = OpPhase.IDLE,
        args: Sequence[Any] = (),
        results: Sequence[Any] = (),
    ) -> None:
        if phase not in OpPhase.ALL:
            raise TraceError(f"unknown operation phase: {phase!r}")
        self._phase = phase
        self._args = tuple(args)
        self._results = tuple(results)

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def args(self) -> Tuple[Any, ...]:
        return self._args

    @property
    def results(self) -> Tuple[Any, ...]:
        return self._results

    # Mapping interface so OpAt/OpIn/OpAfter can use record["phase"] etc.
    def __getitem__(self, key: str) -> Any:
        if key == "phase":
            return self._phase
        if key == "args":
            return self._args
        if key == "results":
            return self._results
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(("phase", "args", "results"))

    def __len__(self) -> int:
        return 3

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperationRecord):
            return NotImplemented
        return (
            self._phase == other._phase
            and self._args == other._args
            and self._results == other._results
        )

    def __hash__(self) -> int:
        return hash((self._phase, self._args, self._results))

    def __repr__(self) -> str:
        return (
            f"OperationRecord(phase={self._phase!r}, args={self._args!r}, "
            f"results={self._results!r})"
        )


_IDLE_RECORD = OperationRecord()


class State(Mapping[str, Any]):
    """One state of a computation: variable values plus operation records.

    ``state[name]`` reads a state variable; missing variables raise
    ``KeyError`` (which predicates convert into
    :class:`repro.errors.UnknownStateVariableError`).  The special variable
    ``__start__`` is injected by :class:`repro.semantics.trace.Trace` on the
    first state, supporting the distinguished ``start`` predicate of the
    Init-clause interpretation.
    """

    __slots__ = ("_values", "_operations", "_hash")

    def __init__(
        self,
        values: Optional[Mapping[str, Any]] = None,
        operations: Optional[Mapping[str, OperationRecord]] = None,
    ) -> None:
        self._values: Dict[str, Any] = dict(values or {})
        ops: Dict[str, OperationRecord] = {}
        for name, record in (operations or {}).items():
            if not isinstance(record, OperationRecord):
                record = OperationRecord(**dict(record))
            ops[name] = record
        self._operations = ops
        self._hash: Optional[int] = None

    # -- mapping interface over state variables -----------------------------

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    @property
    def values_map(self) -> Mapping[str, Any]:
        """The raw state-variable mapping."""
        return dict(self._values)

    @property
    def operations(self) -> Mapping[str, OperationRecord]:
        """Operation records keyed by operation name."""
        return dict(self._operations)

    @property
    def raw_values(self) -> Mapping[str, Any]:
        """The internal value mapping, uncopied — treat as read-only.

        The columnar trace build (:mod:`repro.semantics.columns`) walks
        every state once; the defensive copies of :attr:`values_map` /
        :attr:`operations` would double that pass's allocation for nothing.
        """
        return self._values

    @property
    def raw_operations(self) -> Mapping[str, OperationRecord]:
        """The internal operation-record mapping, uncopied — read-only."""
        return self._operations

    def operation(self, name: str) -> OperationRecord:
        """The record for operation ``name`` (idle if never mentioned)."""
        return self._operations.get(name, _IDLE_RECORD)

    # -- functional updates --------------------------------------------------

    def with_values(self, **updates: Any) -> "State":
        """A copy of this state with some state variables replaced."""
        new_values = dict(self._values)
        new_values.update(updates)
        return State(new_values, self._operations)

    def with_operation(
        self,
        name: str,
        phase: str,
        args: Sequence[Any] = (),
        results: Sequence[Any] = (),
    ) -> "State":
        """A copy of this state with one operation record replaced."""
        new_ops = dict(self._operations)
        new_ops[name] = OperationRecord(phase, args, results)
        return State(self._values, new_ops)

    def without_operation(self, name: str) -> "State":
        """A copy with operation ``name`` reset to idle (record removed)."""
        new_ops = dict(self._operations)
        new_ops.pop(name, None)
        return State(self._values, new_ops)

    # -- equality / hashing ---------------------------------------------------

    def _key(self) -> Tuple[Tuple[Tuple[str, Any], ...], Tuple[Tuple[str, OperationRecord], ...]]:
        return (
            tuple(sorted(self._values.items(), key=lambda kv: kv[0])),
            tuple(sorted(self._operations.items(), key=lambda kv: kv[0])),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            try:
                self._hash = hash(self._key())
            except TypeError:
                # Unhashable values (e.g. lists) — fall back to a coarse hash.
                self._hash = hash(tuple(sorted(self._values.keys())))
        return self._hash

    def __repr__(self) -> str:
        parts = [f"{k}={v!r}" for k, v in sorted(self._values.items())]
        for name, record in sorted(self._operations.items()):
            if record.phase != OpPhase.IDLE:
                parts.append(f"{record.phase} {name}{record.args!r}")
        return f"State({', '.join(parts)})"

    def observed_values(self) -> Tuple[Any, ...]:
        """All values mentioned by this state (used to build quantifier domains)."""
        seen = []
        for value in self._values.values():
            if not isinstance(value, bool):
                seen.append(value)
        for record in self._operations.values():
            seen.extend(record.args)
            seen.extend(record.results)
        return tuple(seen)
