"""Column-major trace storage: dictionary-encoded per-variable columns.

The paper's satisfaction relation sweeps a state sequence, and almost every
question the compiled runtime asks of that sequence is *per variable*, not
per state: "where does ``x == c`` hold", "where is operation ``O`` at its
entry point", "which non-boolean values were ever observed".  Storing the
trace row-major — one dict-backed :class:`~repro.semantics.state.State` per
position — makes each of those questions an O(n) Python-object walk.

A :class:`ColumnStore` turns the same data column-major, built in **one**
pass over the source states:

* one :class:`Column` per state variable — a stdlib ``array`` of small
  integer codes into a per-column interned value list (dictionary
  encoding), so booleans, enums and repeated non-scalar values all store as
  machine integers;
* one :class:`OperationColumn` per operation name, dictionary-encoding the
  (phase, args, results) records the same way;
* the ``__start__`` marking of the Init-clause ``start`` predicate done
  columnwise (one code write) instead of rebuilding the first state;
* the trace's observed value universe, deduplicated through a set during
  the same pass (replacing the quadratic ``value not in seen`` list scan).

Columns expose packed-int **bitsets** (bit ``c`` = concrete position
``c + 1``): per-code membership, truthiness, comparisons against a
constant, and operation phase/argument matches all answer as one big
integer, which is what :mod:`repro.compile.vector` evaluates whole state
formulas on.  Bitset construction goes through per-code ``bytearray``
buffers so cost stays O(n + codes·n/8) rather than O(n²/wordsize) of
repeated big-int shifting.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .state import OperationRecord, State

__all__ = [
    "ABSENT",
    "Column",
    "OperationColumn",
    "ColumnStore",
    "IncrementalColumnStore",
]


#: Code marking "this state does not bind the column's variable / operation".
ABSENT = -1

#: Columns with more distinct values than this skip per-code bitsets: the
#: memory (codes · n/8 bytes) stops paying for itself, and a comparison
#: against a high-cardinality column is better served by the per-position
#: endpoint indexes.  Kernels treat a ``None`` bitset table as "fall back".
_MAX_BITSET_CODES = 1024
_MAX_BITSET_BYTES = 8_000_000


def _intern(
    value: Any,
    values: List[Any],
    code_of: Dict[Any, int],
    unhashable: List[int],
) -> int:
    """The dictionary-encoding intern: one code per distinct value.

    Distinctness follows ``dict`` key semantics (``1``, ``1.0`` and ``True``
    share a code — consistent with ``==`` everywhere the codes are compared);
    unhashable values fall back to a linear scan over their own codes, the
    same convention :class:`repro.compile.runtime.GrowingPrefix` uses for
    its value universe.
    """
    try:
        code = code_of.get(value)
    except TypeError:
        for known in unhashable:
            if values[known] == value:
                return known
        code = len(values)
        values.append(value)
        unhashable.append(code)
        return code
    if code is None:
        code = len(values)
        values.append(value)
        code_of[value] = code
    return code


def _codes_to_bitsets(codes: "array", count: int) -> Optional[List[int]]:
    """One bitset per code: bit ``i`` set in ``out[c]`` iff ``codes[i] == c``."""
    n = len(codes)
    nbytes = (n + 7) >> 3
    if count > _MAX_BITSET_CODES or count * nbytes > _MAX_BITSET_BYTES:
        return None
    buffers = [bytearray(nbytes) for _ in range(count)]
    for i, code in enumerate(codes):
        if code >= 0:
            buffers[code][i >> 3] |= 1 << (i & 7)
    return [int.from_bytes(buffer, "little") for buffer in buffers]


class _ColumnBase:
    """Shared dictionary-encoded storage of one column."""

    __slots__ = ("name", "codes", "values", "missing", "_bitsets", "_present")

    def __init__(self, name: str, prefix_length: int = 0) -> None:
        self.name = name
        self.codes: "array" = array("l", [ABSENT]) * prefix_length
        self.values: List[Any] = []
        self.missing = prefix_length > 0
        self._bitsets: Optional[List[int]] = None
        self._present: Optional[int] = None

    def __len__(self) -> int:
        return len(self.codes)

    def value_at(self, index: int) -> Tuple[bool, Any]:
        """``(present, value)`` at 0-based concrete index."""
        code = self.codes[index]
        if code < 0:
            return False, None
        return True, self.values[code]

    @property
    def full_mask(self) -> int:
        return (1 << len(self.codes)) - 1

    def code_bitsets(self) -> Optional[List[int]]:
        """Per-code position bitsets, or ``None`` above the cardinality cap."""
        if self._bitsets is None:
            self._bitsets = _codes_to_bitsets(self.codes, len(self.values))
        return self._bitsets

    def present_bits(self) -> int:
        """Bitset of positions where the column binds a value."""
        if self._present is None:
            if not self.missing:
                self._present = self.full_mask
            else:
                buffer = bytearray((len(self.codes) + 7) >> 3)
                for i, code in enumerate(self.codes):
                    if code >= 0:
                        buffer[i >> 3] |= 1 << (i & 7)
                self._present = int.from_bytes(buffer, "little")
        return self._present

    def pad(self) -> None:
        """Mark the next position as not binding this column."""
        self.codes.append(ABSENT)
        self.missing = True

    def select_bits(self, test: Callable[[Any], bool]) -> Optional[int]:
        """Bitset of positions whose *value* satisfies ``test``.

        ``test`` runs once per **distinct** value (the entire point of the
        dictionary encoding); its exceptions propagate so callers can fall
        back to per-position evaluation with identical error behaviour.
        Returns ``None`` above the per-code bitset cardinality cap.
        """
        bitsets = self.code_bitsets()
        if bitsets is None:
            return None
        out = 0
        for code, value in enumerate(self.values):
            if test(value):
                out |= bitsets[code]
        return out


class Column(_ColumnBase):
    """Dictionary-encoded values of one state variable across a trace."""

    __slots__ = ()

    def append(self, value: Any, code_of: Dict[Any, int], unhashable: List[int]) -> None:
        self.codes.append(_intern(value, self.values, code_of, unhashable))


class OperationColumn(_ColumnBase):
    """Dictionary-encoded :class:`OperationRecord` s of one operation name.

    ``ABSENT`` means the operation is idle in that state (a ``State`` with
    an ``operations`` mapping treats a missing record as idle).
    """

    __slots__ = ()

    def phase_bits(self, phases: Sequence[str]) -> Optional[int]:
        return self.select_bits(lambda record: record.phase in phases)

    def call_bits(self, phases: Sequence[str], arg_values: Sequence[Any]) -> Optional[int]:
        """Positions whose record matches both the phase set and the
        evaluated argument tuple, with the elementwise ``!=`` convention of
        :func:`repro.syntax.terms._args_match`."""

        def test(record: OperationRecord) -> bool:
            if record.phase not in phases:
                return False
            actual = record.args
            if len(arg_values) != len(actual):
                return False
            return not any(expected != value for expected, value in zip(arg_values, actual))

        return self.select_bits(test)


class IncrementalColumnStore:
    """The column-major form of a *growing* state prefix, fed one state at
    a time.

    The per-state twin of :class:`ColumnStore`: the incremental monitors'
    :class:`~repro.compile.runtime.GrowingPrefix` absorbs each appended
    state into the same dictionary-encoded :class:`Column` /
    :class:`OperationColumn` objects (``ABSENT`` padding included), so the
    tail-window bitset kernel (:class:`~repro.compile.vector.TailKernel`)
    can extend its truth profiles over just the appended window.  No
    ``__start__`` marking happens here — ``GrowingPrefix.append`` injects
    it into the state rows before they arrive.

    The whole-column bitset caches of :class:`_ColumnBase`
    (``code_bitsets``/``present_bits``/``select_bits``) are *not* meant to
    be used on these columns: they snapshot a growing column and would go
    stale on the next absorb.  The incremental kernel keeps its own
    window-extended bitsets instead, reading only ``codes`` and
    ``values``.
    """

    __slots__ = ("length", "_columns", "_op_columns", "_interns", "_op_interns")

    def __init__(self) -> None:
        self.length = 0
        self._columns: Dict[str, Column] = {}
        self._op_columns: Dict[str, OperationColumn] = {}
        self._interns: Dict[str, Tuple[Dict[Any, int], List[int]]] = {}
        self._op_interns: Dict[str, Tuple[Dict[Any, int], List[int]]] = {}

    def absorb(self, state: State) -> None:
        """Append one state's values/operations to every column (padded)."""
        index = self.length
        for name, value in state.raw_values.items():
            column = self._columns.get(name)
            if column is None:
                column = self._columns[name] = Column(name, prefix_length=index)
                self._interns[name] = ({}, [])
            code_of, unhashable = self._interns[name]
            column.append(value, code_of, unhashable)
        for name, record in state.raw_operations.items():
            op_column = self._op_columns.get(name)
            if op_column is None:
                op_column = self._op_columns[name] = OperationColumn(
                    name, prefix_length=index
                )
                self._op_interns[name] = ({}, [])
            code_of, unhashable = self._op_interns[name]
            op_column.codes.append(
                _intern(record, op_column.values, code_of, unhashable)
            )
        filled = index + 1
        for column in self._columns.values():
            if len(column.codes) < filled:
                column.pad()
        for op_column in self._op_columns.values():
            if len(op_column.codes) < filled:
                op_column.pad()
        self.length = filled

    def column(self, name: str) -> Optional[Column]:
        return self._columns.get(name)

    def op_column(self, name: str) -> Optional[OperationColumn]:
        return self._op_columns.get(name)


class ColumnStore:
    """The column-major form of one trace, built lazily in a single pass.

    Parameters
    ----------
    source_states:
        The trace's concrete states, **without** ``__start__`` injection —
        marking happens columnwise here.
    mark_start:
        Mirror of ``Trace(mark_start=...)``: when true, position 1 gets
        ``__start__ = True`` (overriding any source value, as the eager
        marking did) and every other position missing it gets ``False``.
    """

    __slots__ = ("length", "_source", "_mark_start", "_columns", "_op_columns", "_universe")

    def __init__(self, source_states: Sequence[State], mark_start: bool) -> None:
        self.length = len(source_states)
        self._source: Optional[Sequence[State]] = source_states
        self._mark_start = mark_start
        self._columns: Optional[Dict[str, Column]] = None
        self._op_columns: Optional[Dict[str, OperationColumn]] = None
        self._universe: Optional[Tuple[Any, ...]] = None

    # -- the single build pass ----------------------------------------------

    def _build(self) -> None:
        columns: Dict[str, Column] = {}
        interns: Dict[str, Tuple[Dict[Any, int], List[int]]] = {}
        op_columns: Dict[str, OperationColumn] = {}
        op_interns: Dict[str, Tuple[Dict[Any, int], List[int]]] = {}
        universe: List[Any] = []
        seen: set = set()
        unhashable_seen: List[Any] = []
        for index, state in enumerate(self._source or ()):
            for name, value in state.raw_values.items():
                column = columns.get(name)
                if column is None:
                    column = columns[name] = Column(name, prefix_length=index)
                    interns[name] = ({}, [])
                code_of, unhashable = interns[name]
                column.append(value, code_of, unhashable)
            for name, record in state.raw_operations.items():
                op_column = op_columns.get(name)
                if op_column is None:
                    op_column = op_columns[name] = OperationColumn(name, prefix_length=index)
                    op_interns[name] = ({}, [])
                code_of, unhashable = op_interns[name]
                op_column.codes.append(_intern(record, op_column.values, code_of, unhashable))
            filled = index + 1
            for column in columns.values():
                if len(column.codes) < filled:
                    column.pad()
            for op_column in op_columns.values():
                if len(op_column.codes) < filled:
                    op_column.pad()
            for value in state.observed_values():
                try:
                    if value in seen:
                        continue
                    seen.add(value)
                except TypeError:
                    if value in unhashable_seen:  # unhashable: linear fallback
                        continue
                    unhashable_seen.append(value)
                universe.append(value)
        if self._mark_start and self.length:
            start = columns.get("__start__")
            if start is None:
                start = columns["__start__"] = Column("__start__", prefix_length=self.length)
                interns["__start__"] = ({}, [])
            code_of, unhashable = interns["__start__"]
            # Position 1 is always True (the eager marking overrode the
            # source value there too); other positions default to False.
            start.codes[0] = _intern(True, start.values, code_of, unhashable)
            false_code: Optional[int] = None
            for i in range(1, self.length):
                if start.codes[i] == ABSENT:
                    if false_code is None:
                        false_code = _intern(False, start.values, code_of, unhashable)
                    start.codes[i] = false_code
            start.missing = any(code == ABSENT for code in start.codes)
        self._columns = columns
        self._op_columns = op_columns
        self._universe = tuple(universe)
        self._source = None  # the states are no longer needed here

    def _ensure(self) -> None:
        if self._columns is None:
            self._build()

    # -- accessors -----------------------------------------------------------

    @property
    def columns(self) -> Dict[str, Column]:
        self._ensure()
        return self._columns  # type: ignore[return-value]

    @property
    def op_columns(self) -> Dict[str, OperationColumn]:
        self._ensure()
        return self._op_columns  # type: ignore[return-value]

    def column(self, name: str) -> Optional[Column]:
        self._ensure()
        return self._columns.get(name)  # type: ignore[union-attr]

    def op_column(self, name: str) -> Optional[OperationColumn]:
        self._ensure()
        return self._op_columns.get(name)  # type: ignore[union-attr]

    def value_universe(self) -> Tuple[Any, ...]:
        """Distinct observed non-boolean values, in first-observation order."""
        self._ensure()
        return self._universe  # type: ignore[return-value]

    @property
    def full_mask(self) -> int:
        return (1 << self.length) - 1

    # -- row reconstruction (the lazy State view) ----------------------------

    def state_values(self, index: int) -> Dict[str, Any]:
        """The variable assignment of concrete state ``index`` (0-based)."""
        self._ensure()
        out: Dict[str, Any] = {}
        for name, column in self._columns.items():  # type: ignore[union-attr]
            present, value = column.value_at(index)
            if present:
                out[name] = value
        return out

    def state_operations(self, index: int) -> Dict[str, OperationRecord]:
        self._ensure()
        out: Dict[str, OperationRecord] = {}
        for name, column in self._op_columns.items():  # type: ignore[union-attr]
            present, record = column.value_at(index)
            if present:
                out[name] = record
        return out

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        # Ship the built columns (compact arrays + interned values), never
        # the source State objects: this is the zero-copy worker handoff.
        self._ensure()
        return {
            "length": self.length,
            "columns": [
                (c.name, c.codes.tobytes(), c.values, c.missing)
                for c in self._columns.values()  # type: ignore[union-attr]
            ],
            "op_columns": [
                (c.name, c.codes.tobytes(), c.values, c.missing)
                for c in self._op_columns.values()  # type: ignore[union-attr]
            ],
            "universe": self._universe,
        }

    def __setstate__(self, payload: Dict[str, Any]) -> None:
        self.length = payload["length"]
        self._source = None
        self._mark_start = False  # marking is already in the columns
        self._universe = payload["universe"]
        columns: Dict[str, Column] = {}
        for name, raw, values, missing in payload["columns"]:
            column = Column(name)
            column.codes = array("l")
            column.codes.frombytes(raw)
            column.values = values
            column.missing = missing
            columns[name] = column
        self._columns = columns
        op_columns: Dict[str, OperationColumn] = {}
        for name, raw, values, missing in payload["op_columns"]:
            column = OperationColumn(name)
            column.codes = array("l")
            column.codes.frombytes(raw)
            column.values = values
            column.missing = missing
            op_columns[name] = column
        self._op_columns = op_columns
