"""Multi-root specification plans: one shared DAG for many clauses.

The paper's experiments never check one formula at a time — they check a
whole *specification* (many interval-logic clauses that share ``[]``/``<>``
skeletons, event atoms and operation predicates) against families of
traces.  A :class:`SpecPlan` compiles every clause of such a specification
into **one** hash-consed node/term table: a subformula appearing in five
clauses is lowered once, memoized once per position, and its event index is
built once for all five.  Each clause keeps its own *root* node id, so
per-clause verdicts (and per-clause error capture, which conformance
campaigns rely on) are preserved.

Binding a spec plan to a computation yields a :class:`SpecPlanState` — a
thin façade over one shared :class:`~repro.compile.runtime.PlanState` whose
memo tables, slot vector and endpoint indexes serve every clause.  The
incremental variant (:meth:`SpecPlan.monitor`) gives
:class:`~repro.checking.monitor.SpecificationMonitor` one plan state per
specification instead of one per clause.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..semantics.trace import INFINITY
from ..syntax.formulas import Formula
from .alpha import alpha_canonical
from .dag import DagBuilder, PlanNode, PlanTerm
from .normalize import normalize
from .plan import _logical_names

__all__ = [
    "SpecPlan",
    "SpecPlanState",
    "ClauseOutcome",
    "compile_specification",
    "legacy_spec_digest",
    "spec_digest",
]


def spec_digest(
    items: Sequence[Tuple[str, Formula]], domain_shape: Tuple[str, ...] = ()
) -> str:
    """An alpha-invariant digest of a (clause name, formula) sequence.

    The formula ``repr`` is fully structural (exactly as in
    :func:`~repro.compile.plan.formula_digest`) and each clause is hashed
    in its *alpha-canonical* form — the fresh-name counter restarts per
    clause, so clauses equal up to bound-variable names contribute the
    same bytes.  Clause names take part so two specifications with the
    same formulas under different clause names — whose per-clause results
    are addressed differently — get distinct plans.  Domain-shape names
    are frozen during canonicalization (they select domains by name).
    """
    frozen = frozenset(domain_shape)
    payload = "\x00".join(
        f"{name}\x1f{alpha_canonical(formula, frozen)[0]!r}"
        for name, formula in items
    )
    payload += "\x00\x00" + "\x00".join(domain_shape)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def legacy_spec_digest(
    items: Sequence[Tuple[str, Formula]], domain_shape: Tuple[str, ...] = ()
) -> str:
    """The pre-alpha digest (verbatim reprs), kept for disk-store migration."""
    payload = "\x00".join(f"{name}\x1f{formula!r}" for name, formula in items)
    payload += "\x00\x00" + "\x00".join(domain_shape)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SpecPlan:
    """The compile-once artifact of a whole specification.

    Parameters
    ----------
    items:
        ``(clause_name, formula)`` pairs, in declaration order.  Names must
        be unique — they address the per-clause roots and verdicts.
    digest:
        Precomputed content digest (the cache computes it once for the
        lookup key); derived from ``items`` when omitted.
    """

    def __init__(
        self,
        items: Sequence[Tuple[str, Formula]],
        digest: Optional[str] = None,
        domain_shape: Optional[Tuple[str, ...]] = None,
    ) -> None:
        items = [(name, formula) for name, formula in items]
        if len({name for name, _ in items}) != len(items):
            raise ValueError("spec plan clause names must be unique")
        self.sources: Tuple[Tuple[str, Formula], ...] = tuple(items)
        if domain_shape is None:
            # Direct construction compiles the clauses verbatim (and keys
            # by verbatim digest), exactly as before alpha-interning.
            canonical = items
            self.alpha_renames: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        else:
            frozen = frozenset(domain_shape)
            canonical = []
            self.alpha_renames = {}
            for name, formula in items:
                rewritten, renames = alpha_canonical(formula, frozen)
                canonical.append((name, rewritten))
                if renames:
                    self.alpha_renames[name] = renames
        self.canonical_sources: Tuple[Tuple[str, Formula], ...] = tuple(
            canonical
        )
        if digest is not None:
            self.digest = digest
        elif domain_shape is None:
            self.digest = legacy_spec_digest(items)
        else:
            self.digest = spec_digest(items, domain_shape)
        normalized = [
            (name, normalize(formula)) for name, formula in canonical
        ]
        names: set = set()
        for _, formula in normalized:
            names.update(_logical_names(formula))
        self.slot_names: Tuple[str, ...] = tuple(sorted(names))
        self.slot_of: Dict[str, int] = {n: i for i, n in enumerate(self.slot_names)}
        builder = DagBuilder(self.slot_of)
        self.roots: Dict[str, int] = {
            name: builder.add_formula(formula) for name, formula in normalized
        }
        self.nodes: List[PlanNode] = builder.nodes
        self.terms: List[PlanTerm] = builder.terms

    # -- introspection -------------------------------------------------------

    @property
    def clause_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.sources)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def term_count(self) -> int:
        return len(self.terms)

    @property
    def root(self) -> int:
        """The first clause's root (PlanState compatibility hook)."""
        return next(iter(self.roots.values()))

    def shared_node_count(self) -> int:
        """Nodes a clause-by-clause compilation would duplicate.

        The difference between the sum of per-clause DAG sizes and the
        shared table size — the sharing the multi-root plan buys.
        """
        separate = 0
        for _, formula in getattr(self, "canonical_sources", self.sources):
            builder = DagBuilder(dict(self.slot_of))
            builder.add_formula(normalize(formula))
            separate += len(builder.nodes)
        return separate - len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"SpecPlan(clauses={len(self.sources)}, nodes={self.node_count}, "
            f"terms={self.term_count}, slots={len(self.slot_names)}, "
            f"digest={self.digest[:12]})"
        )

    # -- binding -------------------------------------------------------------

    def evaluator(
        self,
        trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        vectorize: bool = True,
        forall_unroll_cap: Optional[int] = None,
    ):
        """A :class:`SpecPlanState` bound to a fixed (possibly lasso) trace."""
        return SpecPlanState(
            self,
            trace,
            domain=domain,
            vectorize=vectorize,
            forall_unroll_cap=forall_unroll_cap,
        )

    def monitor(
        self,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        forall_unroll_cap: Optional[int] = None,
    ):
        """An incremental :class:`SpecPlanState` over a growing state prefix."""
        from .runtime import GrowingPrefix

        return SpecPlanState(
            self,
            GrowingPrefix(),
            domain=domain,
            incremental=True,
            forall_unroll_cap=forall_unroll_cap,
        )


@dataclass(frozen=True)
class ClauseOutcome:
    """One clause's verdict from a spec-plan evaluation."""

    name: str
    verdict: Optional[bool]
    error: Optional[str] = None

    @property
    def holds(self) -> bool:
        return self.verdict is True


class SpecPlanState:
    """One spec plan bound to one computation.

    All clauses evaluate through a single shared
    :class:`~repro.compile.runtime.PlanState`: one slot vector, one memo
    table keyed on hash-consed node ids (so a subformula shared by several
    clauses is decided once per position), one set of interval-endpoint
    indexes.
    """

    def __init__(
        self,
        plan: SpecPlan,
        trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        incremental: bool = False,
        vectorize: bool = True,
        forall_unroll_cap: Optional[int] = None,
    ) -> None:
        from .runtime import PlanState

        self._plan = plan
        self._state = PlanState(
            plan,
            trace,
            domain=domain,
            incremental=incremental,
            vectorize=vectorize,
            forall_unroll_cap=forall_unroll_cap,
        )

    # -- shared-state introspection ------------------------------------------

    @property
    def plan(self) -> SpecPlan:
        return self._plan

    @property
    def trace(self):
        return self._state.trace

    @property
    def stats(self):
        return self._state.stats

    @property
    def memo_size(self) -> int:
        return self._state.memo_size

    @property
    def index_count(self) -> int:
        return self._state.index_count

    # -- evaluation -----------------------------------------------------------

    def satisfies(self, name: str, env: Optional[Mapping[str, Any]] = None) -> bool:
        """``s |= clause`` over the whole computation ``<1, ∞>``."""
        return self.holds(name, 1, INFINITY, env)

    def holds(
        self, name: str, lo, hi, env: Optional[Mapping[str, Any]] = None
    ) -> bool:
        """``<lo, hi> |= clause`` for the clause named ``name``."""
        try:
            root = self._plan.roots[name]
        except KeyError:
            raise KeyError(
                f"no clause named {name!r} in this spec plan "
                f"(clauses: {', '.join(self._plan.clause_names)})"
            ) from None
        return self._state.holds_node(root, lo, hi, env)

    def verdicts(self, env: Optional[Mapping[str, Any]] = None) -> Dict[str, bool]:
        """Every clause's whole-computation verdict (errors propagate)."""
        return {name: self.satisfies(name, env) for name in self._plan.clause_names}

    def check_all(
        self, env: Optional[Mapping[str, Any]] = None
    ) -> List[ClauseOutcome]:
        """Every clause's verdict with per-clause error capture, in order.

        This is the conformance-campaign contract: an erroring clause yields
        ``verdict=None`` plus the error string and the remaining clauses
        still evaluate, exactly like ``Specification.check``'s per-clause
        try/except.
        """
        outcomes: List[ClauseOutcome] = []
        for name in self._plan.clause_names:
            try:
                outcomes.append(ClauseOutcome(name, self.satisfies(name, env)))
            except Exception as exc:
                outcomes.append(
                    ClauseOutcome(name, None, f"{type(exc).__name__}: {exc}")
                )
        return outcomes

    # -- incremental protocol --------------------------------------------------

    def append(self, state) -> None:
        """Absorb one observed state (incremental spec plans only)."""
        self._state.trace.append(state)
        self._state.note_append()

    def append_batch(self, states: Sequence[Any]) -> None:
        """Absorb a multi-state window in one memo sweep.

        All states land on the prefix first; the volatile/aggregator memo
        split is then updated **once** for the whole window (and the tail
        kernel extends each touched profile in one vectorized pass), which
        is what makes batched appends cheaper than repeated single-state
        :meth:`append` calls — verdicts afterwards are identical.
        """
        trace = self._state.trace
        for state in states:
            trace.append(state)
        if states:
            self._state.note_append(len(states))

    def note_append(self, count: int = 1) -> None:
        self._state.note_append(count)

    def reset(self) -> None:
        """Return to the freshly-lowered condition (plan-state pooling).

        Clears the shared plan state's memos, slots, kernel profiles and —
        in incremental mode — the growing prefix itself, all in place, so
        the lowered closure table is reused verbatim by the next stream.
        """
        self._state.reset()


def compile_specification(specification) -> SpecPlan:
    """Compile a :class:`~repro.core.specification.Specification` whole.

    Clause formulas are taken *interpreted* (Init clauses become
    ``start ⊃ alpha``), matching what every checking path evaluates.
    """
    return SpecPlan(
        [(clause.name, clause.interpreted_formula())
         for clause in specification.clauses]
    )
