"""``repro.compile`` — formula compilation and executable evaluation plans.

Every engine used to interpret raw interval-logic ASTs on every call; this
package is the compile-once/run-many layer between the Chapter 2/3 syntax
and the engines.  The pipeline, mapped to the paper:

========================  ==================================================
stage                     paper anchor
========================  ==================================================
:mod:`.normalize`         Appendix A star reduction applied once up front;
                          NNF over the Chapter 3 connectives (``¬[]α ≡
                          <>¬α`` and duals); constant folding over the
                          Chapter 4 boolean identities; canonical ordering
                          of the commutative connectives
:mod:`.dag`               hash-consed subformula DAG: each distinct
                          subformula of the Chapter 2/3 grammar is lowered
                          (and later memoized) exactly once, with
                          precomputed free-variable signatures per node —
                          the rigid/state variable split of Appendix B
:mod:`.plan`              :class:`CompiledPlan` — the trace-independent
                          artifact, digest-addressed for caching
:mod:`.specplan`          :class:`SpecPlan` — a whole specification's
                          clauses interned into *one* multi-root DAG
                          (shared memo tables, shared event indexes,
                          per-clause root verdicts), the unit the
                          Chapter 5–8 conformance experiments actually
                          check
:mod:`.lower`             closure lowering of plan-node dispatch: each DAG
                          node binds once to a Python closure over its
                          slots/memo/indexes, replacing the per-call
                          opcode chain
:mod:`.vector`            :class:`BitsetKernel` — the vectorized binding
                          mode over column-major traces: state formulas
                          (and ``[]/<>`` directly over them) evaluate as
                          whole-column packed-int bitset operations, and
                          event change positions derive from bitset shifts
:mod:`.runtime`           :class:`PlanState` — the Chapter 3 satisfaction
                          relation over slot-addressed environments, with
                          an interval-endpoint index over state-change
                          events so the construction function ``F``
                          (Chapter 3) bisects changesets instead of
                          scanning, and incremental plan states absorbing
                          one appended state in amortized O(changed work)
                          for the finite-computation convention monitors
:mod:`.cache`             :class:`PlanCache` — the session-level
                          digest-keyed bounded LRU (single- and multi-root
                          plans, hit/miss/eviction stats) behind the
                          ``compiled`` engine of :mod:`repro.api.engines`
========================  ==================================================

Typical use::

    from repro.compile import compile_formula

    plan = compile_formula(parse_formula("[] (p -> <> q)"))
    state = plan.evaluator(trace)          # bind once per trace
    state.satisfies()                      # run many: memo + index warm

    monitor = plan.monitor()               # incremental variant
    monitor.trace.append(next_state)
    monitor.note_append()
    monitor.satisfies()                    # O(changed work), not O(prefix)

The ``compiled`` engine (``Session.check(..., mode="compiled")`` or
``Session(prefer_compiled=True)``) wraps exactly this, adding the session
plan cache and the unified :class:`~repro.api.result.CheckResult`.
"""

from .cache import DEFAULT_MAX_PLANS, DiskPlanStore, PlanCache
from .dag import CompileError, DagBuilder, PlanNode, PlanTerm
from .lower import bind_dispatch
from .normalize import normalize, structural_key
from .plan import CompiledPlan, compile_formula, formula_digest
from .runtime import (
    UNSET,
    ComparisonIndex,
    EventIndex,
    GrowingPrefix,
    PlanState,
    PlanStats,
    ValueColumn,
)
from .specplan import (
    ClauseOutcome,
    SpecPlan,
    SpecPlanState,
    compile_specification,
    spec_digest,
)
from .vector import BitsetKernel, bit_positions, changes_from_bits

__all__ = [
    "normalize",
    "structural_key",
    "CompileError",
    "DagBuilder",
    "PlanNode",
    "PlanTerm",
    "CompiledPlan",
    "compile_formula",
    "formula_digest",
    "SpecPlan",
    "SpecPlanState",
    "ClauseOutcome",
    "compile_specification",
    "spec_digest",
    "bind_dispatch",
    "PlanCache",
    "DiskPlanStore",
    "DEFAULT_MAX_PLANS",
    "PlanState",
    "PlanStats",
    "GrowingPrefix",
    "EventIndex",
    "ValueColumn",
    "ComparisonIndex",
    "UNSET",
    "BitsetKernel",
    "bit_positions",
    "changes_from_bits",
]
