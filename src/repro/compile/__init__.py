"""``repro.compile`` — formula compilation and executable evaluation plans.

Every engine used to interpret raw interval-logic ASTs on every call; this
package is the compile-once/run-many layer between the Chapter 2/3 syntax
and the engines.  The pipeline, mapped to the paper:

========================  ==================================================
stage                     paper anchor
========================  ==================================================
:mod:`.normalize`         Appendix A star reduction applied once up front;
                          NNF over the Chapter 3 connectives (``¬[]α ≡
                          <>¬α`` and duals); constant folding over the
                          Chapter 4 boolean identities; canonical ordering
                          of the commutative connectives
:mod:`.dag`               hash-consed subformula DAG: each distinct
                          subformula of the Chapter 2/3 grammar is lowered
                          (and later memoized) exactly once, with
                          precomputed free-variable signatures per node —
                          the rigid/state variable split of Appendix B
:mod:`.plan`              :class:`CompiledPlan` — the trace-independent
                          artifact, digest-addressed for caching
:mod:`.runtime`           :class:`PlanState` — the Chapter 3 satisfaction
                          relation over slot-addressed environments, with
                          an interval-endpoint index over state-change
                          events so the construction function ``F``
                          (Chapter 3) bisects changesets instead of
                          scanning, and incremental plan states absorbing
                          one appended state in amortized O(changed work)
                          for the finite-computation convention monitors
:mod:`.cache`             :class:`PlanCache` — the session-level
                          digest-keyed plan store behind the ``compiled``
                          engine of :mod:`repro.api.engines`
========================  ==================================================

Typical use::

    from repro.compile import compile_formula

    plan = compile_formula(parse_formula("[] (p -> <> q)"))
    state = plan.evaluator(trace)          # bind once per trace
    state.satisfies()                      # run many: memo + index warm

    monitor = plan.monitor()               # incremental variant
    monitor.trace.append(next_state)
    monitor.note_append()
    monitor.satisfies()                    # O(changed work), not O(prefix)

The ``compiled`` engine (``Session.check(..., mode="compiled")`` or
``Session(prefer_compiled=True)``) wraps exactly this, adding the session
plan cache and the unified :class:`~repro.api.result.CheckResult`.
"""

from .cache import PlanCache
from .dag import CompileError, DagBuilder, PlanNode, PlanTerm
from .normalize import normalize, structural_key
from .plan import CompiledPlan, compile_formula, formula_digest
from .runtime import UNSET, EventIndex, GrowingPrefix, PlanState, PlanStats

__all__ = [
    "normalize",
    "structural_key",
    "CompileError",
    "DagBuilder",
    "PlanNode",
    "PlanTerm",
    "CompiledPlan",
    "compile_formula",
    "formula_digest",
    "PlanCache",
    "PlanState",
    "PlanStats",
    "GrowingPrefix",
    "EventIndex",
    "UNSET",
]
