"""Closure lowering of plan-node dispatch.

The first compiled runtime dispatched every ``_holds`` miss through one big
``if op == ...`` chain (:meth:`PlanState._dispatch`), re-reading the node's
fields on every call.  This pass lowers each :class:`~repro.compile.dag.PlanNode`
**once per plan state** to a plain Python closure: the node's children,
predicate, term ids and free-slot signature are bound into the closure's
cells at lowering time, along with the state's slot vector, trace accessors
and memo wrapper.  ``PlanState._holds`` then jumps straight to
``self._ops[nid](lo, hi)`` — no opcode test, no field lookups, no
re-resolution of ``self._trace.state_at`` per atom.

Lowering happens at state-binding time (not plan-compile time) because the
closures are bound to one computation's mutable runtime — the slot vector,
the memo tables, the endpoint indexes.  The plan itself stays a pure,
trace-independent artifact; lowering a plan state is O(nodes) and is paid
once per (plan, trace) binding.

Memoization stays **outside** the closures: every child evaluation goes
back through ``PlanState._holds`` so hash-consed sharing, the state-formula
position memo, and the incremental tail tracking intercede at every node
exactly as before.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..semantics.construction import BOTTOM
from .dag import (
    CompileError,
    N_ALWAYS,
    N_AND,
    N_ATOM,
    N_BINDNEXT,
    N_EVENTUALLY,
    N_FALSE,
    N_FORALL,
    N_IFF,
    N_IMPLIES,
    N_INTERVAL,
    N_NOT,
    N_OCCURS,
    N_OR,
    N_TRUE,
)

__all__ = ["bind_dispatch"]


_EMPTY_ENV: dict = {}


def _lower_atom(state, node):
    predicate_holds = node.predicate.holds
    state_at = state._trace.state_at
    if not node.free_slots:
        def run(lo, hi):
            return predicate_holds(state_at(lo), _EMPTY_ENV)
        return run
    env_view = state._env_view

    def run(lo, hi):
        return predicate_holds(state_at(lo), env_view(node))
    return run


def _lower_true(state, node):
    return lambda lo, hi: True


def _lower_false(state, node):
    return lambda lo, hi: False


def _lower_not(state, node):
    holds = state._holds
    a = node.a

    def run(lo, hi):
        return not holds(a, lo, hi)
    return run


def _lower_junction(deciding: bool):
    def lower(state, node):
        junction = state._junction
        a, b = node.a, node.b

        def run(lo, hi):
            return junction(a, b, lo, hi, deciding)
        return run
    return lower


def _lower_implies(state, node):
    holds = state._holds
    a, b = node.a, node.b

    def run(lo, hi):
        return (not holds(a, lo, hi)) or holds(b, lo, hi)
    return run


def _lower_iff(state, node):
    holds = state._holds
    a, b = node.a, node.b

    def run(lo, hi):
        return holds(a, lo, hi) == holds(b, lo, hi)
    return run


def _lower_suffixes(want: bool):
    def lower(state, node):
        suffixes = state._holds_suffixes

        def run(lo, hi):
            return suffixes(node, lo, hi, want)
        return run
    return lower


def _lower_interval(state, node):
    construct = state._construct_interval
    holds = state._holds
    term, body = node.term, node.a

    def run(lo, hi):
        found = construct(term, lo, hi)
        if found is BOTTOM:
            return True
        return holds(body, found.lo, found.hi)
    return run


def _lower_occurs(state, node):
    construct = state._construct_interval
    term = node.term

    def run(lo, hi):
        return construct(term, lo, hi) is not BOTTOM
    return run


def _lower_forall(state, node):
    holds_forall = state._holds_forall

    def run(lo, hi):
        return holds_forall(node, lo, hi)
    return run


def _lower_bindnext(state, node):
    holds_bindnext = state._holds_bindnext

    def run(lo, hi):
        return holds_bindnext(node, lo, hi)
    return run


_FACTORIES = {
    N_ATOM: _lower_atom,
    N_TRUE: _lower_true,
    N_FALSE: _lower_false,
    N_NOT: _lower_not,
    N_AND: _lower_junction(deciding=False),
    N_OR: _lower_junction(deciding=True),
    N_IMPLIES: _lower_implies,
    N_IFF: _lower_iff,
    N_ALWAYS: _lower_suffixes(want=False),
    N_EVENTUALLY: _lower_suffixes(want=True),
    N_INTERVAL: _lower_interval,
    N_OCCURS: _lower_occurs,
    N_FORALL: _lower_forall,
    N_BINDNEXT: _lower_bindnext,
}


def _vectorized(state, kernel, node, fallback):
    """The vectorized binding of ``node``, or ``None`` to keep ``fallback``.

    Two shapes bind to the kernel: a state formula itself (one cached-
    profile bit test per call) and ``[] / <>`` directly over a state
    formula (one mask test over the whole context per call).  The kernel
    answers ``None`` whenever it cannot reproduce the per-position
    semantics — an unbound logical variable, a variable missing somewhere,
    an erroring comparison — and the closure then runs ``fallback``, the
    node's ordinary per-position closure, preserving verdicts *and* error
    behaviour exactly.
    """
    if node.is_state:
        if not kernel.supports(node.id):
            return None
        holds_at = kernel.holds_at

        def run(lo, hi):
            verdict = holds_at(node, lo)
            if verdict is None:
                return fallback(lo, hi)
            return verdict
        return run
    if node.op in (N_ALWAYS, N_EVENTUALLY):
        child = state._nodes[node.a]
        if not (child.is_state and kernel.supports(child.id)):
            return None
        query = kernel.always if node.op == N_ALWAYS else kernel.eventually

        def run(lo, hi):
            verdict = query(child, lo, hi)
            if verdict is None:
                return fallback(lo, hi)
            return verdict
        return run
    return None


def bind_dispatch(state) -> Tuple[Tuple[Callable[[int, object], bool], ...], frozenset]:
    """Lower every node of ``state``'s plan to a bound closure.

    Returns the node-id-indexed dispatch table ``PlanState._holds`` jumps
    through, plus the frozenset of node ids bound to the vectorized
    (bitset-kernel) mode — those ids take the memo-free fast path in
    ``_holds``.  An unknown opcode fails here, at binding time, instead of
    at the first evaluation that reaches the node.
    """
    kernel = state._kernel
    ops: List[Callable] = []
    vector_ids: List[int] = []
    for node in state._plan.nodes:
        factory = _FACTORIES.get(node.op)
        if factory is None:
            raise CompileError(f"cannot lower plan node: {node!r}")
        closure = factory(state, node)
        if kernel is not None:
            vectorized = _vectorized(state, kernel, node, closure)
            if vectorized is not None:
                closure = vectorized
                vector_ids.append(node.id)
        ops.append(closure)
    return tuple(ops), frozenset(vector_ids)
