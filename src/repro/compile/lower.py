"""Closure lowering of plan-node dispatch.

The first compiled runtime dispatched every ``_holds`` miss through one big
``if op == ...`` chain (:meth:`PlanState._dispatch`), re-reading the node's
fields on every call.  This pass lowers each :class:`~repro.compile.dag.PlanNode`
**once per plan state** to a plain Python closure: the node's children,
predicate, term ids and free-slot signature are bound into the closure's
cells at lowering time, along with the state's slot vector, trace accessors
and memo wrapper.  ``PlanState._holds`` then jumps straight to
``self._ops[nid](lo, hi)`` — no opcode test, no field lookups, no
re-resolution of ``self._trace.state_at`` per atom.

Lowering happens at state-binding time (not plan-compile time) because the
closures are bound to one computation's mutable runtime — the slot vector,
the memo tables, the endpoint indexes.  The plan itself stays a pure,
trace-independent artifact; lowering a plan state is O(nodes) and is paid
once per (plan, trace) binding.

Memoization stays **outside** the closures: every child evaluation goes
back through ``PlanState._holds`` so hash-consed sharing, the state-formula
position memo, and the incremental tail tracking intercede at every node
exactly as before.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, List, Tuple

from ..semantics.trace import INFINITY

from ..semantics.construction import BOTTOM, Direction, Interval
from .dag import (
    CompileError,
    N_ALWAYS,
    N_AND,
    N_ATOM,
    N_BINDNEXT,
    N_EVENTUALLY,
    N_FALSE,
    N_FORALL,
    N_IFF,
    N_IMPLIES,
    N_INTERVAL,
    N_NOT,
    N_OCCURS,
    N_OR,
    N_TRUE,
    T_BACKWARD,
    T_BEGIN,
    T_END,
    T_EVENT,
    T_FORWARD,
)

__all__ = ["bind_dispatch"]


_EMPTY_ENV: dict = {}


def _lower_atom(state, node):
    predicate_holds = node.predicate.holds
    state_at = state._trace.state_at
    if not node.free_slots:
        def run(lo, hi):
            return predicate_holds(state_at(lo), _EMPTY_ENV)
        return run
    env_view = state._env_view

    def run(lo, hi):
        return predicate_holds(state_at(lo), env_view(node))
    return run


def _lower_true(state, node):
    return lambda lo, hi: True


def _lower_false(state, node):
    return lambda lo, hi: False


def _lower_not(state, node):
    holds = state._holds
    a = node.a

    def run(lo, hi):
        return not holds(a, lo, hi)
    return run


def _lower_junction(deciding: bool):
    def lower(state, node):
        junction = state._junction
        a, b = node.a, node.b

        def run(lo, hi):
            return junction(a, b, lo, hi, deciding)
        return run
    return lower


def _lower_implies(state, node):
    holds = state._holds
    a, b = node.a, node.b

    def run(lo, hi):
        return (not holds(a, lo, hi)) or holds(b, lo, hi)
    return run


def _lower_iff(state, node):
    holds = state._holds
    a, b = node.a, node.b

    def run(lo, hi):
        return holds(a, lo, hi) == holds(b, lo, hi)
    return run


def _lower_suffixes(want: bool):
    def lower(state, node):
        suffixes = state._holds_suffixes

        def run(lo, hi):
            return suffixes(node, lo, hi, want)
        return run
    return lower


def _lower_interval(state, node):
    construct = state._construct_interval
    holds = state._holds
    term, body = node.term, node.a

    def run(lo, hi):
        found = construct(term, lo, hi)
        if found is BOTTOM:
            return True
        return holds(body, found.lo, found.hi)
    return run


def _lower_occurs(state, node):
    construct = state._construct_interval
    term = node.term

    def run(lo, hi):
        return construct(term, lo, hi) is not BOTTOM
    return run


def _lower_forall(state, node):
    """Quantifier lowering, specialized when the domains are known small.

    When every quantified variable carries an *explicit* domain and the
    cartesian product has at most ``forall_unroll_cap`` bindings, the
    quantifier unrolls at lowering time: the binding tuples are
    precomputed once per plan state and the closure is a flat loop —
    no per-call recursion, no per-level domain lookups — so each
    instantiated body hits its own envkey-addressed memo slots (and, for
    state-formula bodies, its own kernel profile) directly.  Iteration
    order, first-``False`` short-circuit and error propagation are
    exactly those of :meth:`PlanState._holds_forall`, which remains the
    path for default-universe or over-cap quantifiers.
    """
    cap = state._forall_unroll_cap
    names = node.var_names
    if cap > 0 and all(name in state._domain for name in names):
        domains = [state._domain[name] for name in names]
        total = 1
        for values in domains:
            total *= len(values)
        if total <= cap:
            bindings = list(product(*domains))
            holds = state._holds
            slots = state._slots
            var_slots = node.var_slots
            child = node.a

            def run(lo, hi):
                saved = [slots[s] for s in var_slots]
                try:
                    for combo in bindings:
                        for slot, value in zip(var_slots, combo):
                            slots[slot] = value
                        if not holds(child, lo, hi):
                            return False
                    return True
                finally:
                    for slot, value in zip(var_slots, saved):
                        slots[slot] = value
            return run

    holds_forall = state._holds_forall

    def run(lo, hi):
        return holds_forall(node, lo, hi)
    return run


def _lower_bindnext(state, node):
    holds_bindnext = state._holds_bindnext

    def run(lo, hi):
        return holds_bindnext(node, lo, hi)
    return run


_FACTORIES = {
    N_ATOM: _lower_atom,
    N_TRUE: _lower_true,
    N_FALSE: _lower_false,
    N_NOT: _lower_not,
    N_AND: _lower_junction(deciding=False),
    N_OR: _lower_junction(deciding=True),
    N_IMPLIES: _lower_implies,
    N_IFF: _lower_iff,
    N_ALWAYS: _lower_suffixes(want=False),
    N_EVENTUALLY: _lower_suffixes(want=True),
    N_INTERVAL: _lower_interval,
    N_OCCURS: _lower_occurs,
    N_FORALL: _lower_forall,
    N_BINDNEXT: _lower_bindnext,
}


def _vectorized(state, kernel, node, fallback):
    """The vectorized binding of ``node``, or ``None`` to keep ``fallback``.

    Two shapes bind to the kernel: a state formula itself (one cached-
    profile bit test per call) and ``[] / <>`` directly over a state
    formula (one mask test over the whole context per call).  The kernel
    answers ``None`` whenever it cannot reproduce the per-position
    semantics — an unbound logical variable, a variable missing somewhere,
    an erroring comparison — and the closure then runs ``fallback``, the
    node's ordinary per-position closure, preserving verdicts *and* error
    behaviour exactly.
    """
    if node.is_state:
        if not kernel.supports(node.id):
            return None
        holds_at = kernel.holds_at

        def run(lo, hi):
            verdict = holds_at(node, lo)
            if verdict is None:
                return fallback(lo, hi)
            return verdict
        return run
    if node.op in (N_ALWAYS, N_EVENTUALLY):
        child = state._nodes[node.a]
        if not (child.is_state and kernel.supports(child.id)):
            return None
        query = kernel.always if node.op == N_ALWAYS else kernel.eventually

        def run(lo, hi):
            verdict = query(child, lo, hi)
            if verdict is None:
                return fallback(lo, hi)
            return verdict
        return run
    return None


def _mask_range(lo: int, hi: int) -> int:
    if lo > hi:
        return 0
    return (1 << hi) - (1 << (lo - 1))


class _ExactConstruct(Exception):
    """A fused term closure met a dead/unusable profile: the caller must
    rerun the whole construction on the generic (memoized, exact-error)
    path instead."""


def _compile_term_bits(state, kernel, tid, direction):
    """Compile interval term ``tid`` to a closure ``(i, j) -> Interval|⊥``.

    The closure computes ``F(term, <i, j>)`` straight from tail-kernel
    change profiles — the whole ``_construct_interval`` →  ``_construct``
    → ``_find_event`` recursion collapsed to bit arithmetic at lowering
    time, with the direction of every event search resolved statically
    (it only depends on the term's shape).  Returns ``None`` when some
    event leaf is not kernel-vectorizable; raises :class:`_ExactConstruct`
    at *call* time when a profile has died (unusable column, erroring
    comparison), so the caller falls back to the generic exact path whose
    lazy per-position errors the fused path cannot reproduce.

    Tail-marking mirrors ``PlanState._find_event_bits`` exactly: a forward
    search that found nothing inside the concrete prefix, and every
    backward search over an infinite context, mark the caller's frame
    tail-dependent.
    """
    term = state._terms[tid]
    op = term.op
    if op == T_EVENT:
        nid = term.event
        node = state._nodes[nid]
        if not (node.is_state and kernel.supports(nid)):
            return None
        profile = kernel.profile
        trace = state._trace
        mark_tail = state._mark_tail
        forward = direction == Direction.FORWARD
        stats = state.stats

        def run(i, j):
            bits = profile(node)
            if bits is None:
                raise _ExactConstruct
            stats.event_searches += 1
            n = trace.length
            chg = bits & ~((bits << 1) | 1)
            if j == INFINITY:
                bound = (i if i > n else n) + 1
            else:
                bound = j
            lo = i + 1
            hi = bound if bound < n else n
            if hi < lo:
                window = 0
            else:
                window = (chg >> (lo - 1)) & ((1 << (hi - lo + 1)) - 1)
            if forward:
                if not window:
                    if bound > n:
                        mark_tail()  # no event yet; one may still appear
                    return BOTTOM
                k = lo + ((window & -window).bit_length() - 1)
                return Interval(k - 1, k)
            if j == INFINITY:
                # The changeset max can move (or appear) as the prefix grows.
                mark_tail()
            elif bound > n:
                mark_tail()
            if not window:
                return BOTTOM
            k = lo + window.bit_length() - 1
            return Interval(k - 1, k)
        return run
    if op == T_BEGIN:
        inner = _compile_term_bits(state, kernel, term.a, direction)
        if inner is None:
            return None

        def run(i, j):
            found = inner(i, j)
            if found is BOTTOM:
                return BOTTOM
            return Interval(found.lo, found.lo)
        return run
    if op == T_END:
        inner = _compile_term_bits(state, kernel, term.a, direction)
        if inner is None:
            return None

        def run(i, j):
            found = inner(i, j)
            if found is BOTTOM or found.hi == INFINITY:
                return BOTTOM
            last = int(found.hi)
            return Interval(last, last)
        return run
    if op in (T_FORWARD, T_BACKWARD):
        left, right = term.a, term.b
        if left is None and right is None:
            return lambda i, j: Interval(i, j)
        if op == T_FORWARD:
            # ``I =>``: the *next* I (caller's direction); ``=> J``: the
            # first J, always forward.
            lrun = (
                _compile_term_bits(state, kernel, left, direction)
                if left is not None
                else None
            )
            rrun = (
                _compile_term_bits(state, kernel, right, Direction.FORWARD)
                if right is not None
                else None
            )
        else:
            # ``I <=``: the most recent I, always backward; ``<= J``: the
            # first J in the caller's direction.
            lrun = (
                _compile_term_bits(state, kernel, left, Direction.BACKWARD)
                if left is not None
                else None
            )
            rrun = (
                _compile_term_bits(state, kernel, right, direction)
                if right is not None
                else None
            )
        if (left is not None and lrun is None) or (
            right is not None and rrun is None
        ):
            return None
        if rrun is None:
            def run(i, j):
                found = lrun(i, j)
                if found is BOTTOM or found.hi == INFINITY:
                    return BOTTOM
                return Interval(int(found.hi), j)
            return run
        if lrun is None:
            def run(i, j):
                found = rrun(i, j)
                if found is BOTTOM or found.hi == INFINITY:
                    return BOTTOM
                return Interval(i, int(found.hi))
            return run
        if op == T_FORWARD:
            def run(i, j):
                prefix = lrun(i, j)
                if prefix is BOTTOM or prefix.hi == INFINITY:
                    return BOTTOM
                lo = int(prefix.hi)
                found = rrun(lo, j)
                if found is BOTTOM or found.hi == INFINITY:
                    return BOTTOM
                return Interval(lo, int(found.hi))
            return run

        def run(i, j):
            suffix = rrun(i, j)
            if suffix is BOTTOM or suffix.hi == INFINITY:
                return BOTTOM
            hi = int(suffix.hi)
            found = lrun(i, hi)
            if found is BOTTOM or found.hi == INFINITY:
                return BOTTOM
            return Interval(int(found.hi), hi)
        return run
    return None


def _vectorized_incremental(state, kernel, node, fallback):
    """The tail-kernel binding of ``node`` on a growing prefix, or ``None``.

    Same two shapes as :func:`_vectorized`, but over profiles that only
    cover the *concrete* states observed so far.  ``_holds`` skips both
    context normalization and the tail push for vector node ids, so these
    closures own both obligations: a context reaching past the last
    concrete state marks the caller's frame tail-dependent (its verdict
    reads the stuttered final state and may flip on append) **before**
    normalizing, and every fallback call receives the normalized context —
    the resumable ``[] / <>`` frontier keys on ``lo`` and would otherwise
    see an empty representative range for tail-only contexts.

    Verdicts decided by concrete states alone — a witness position under
    ``<>``, a counterexample under ``[]``, any bounded context ending at or
    before the last concrete state — stay unmarked, so they land in
    callers' *stable* memos and survive appends: that is what makes a
    batched append one window pass instead of N re-evaluations.
    """
    trace = state._trace
    normalize = state._normalize_ctx
    mark_tail = state._mark_tail
    if node.is_state:
        if not kernel.supports(node.id):
            return None
        holds_at = kernel.holds_at

        def run(lo, hi):
            if lo > trace.length:
                mark_tail()
                lo, hi = normalize(lo, hi)
            verdict = holds_at(node, lo)
            if verdict is None:
                return fallback(lo, hi)
            return verdict
        return run
    if node.op in (N_ALWAYS, N_EVENTUALLY):
        child = state._nodes[node.a]
        if not (child.is_state and kernel.supports(child.id)):
            return None
        profile = kernel.profile
        want = node.op == N_EVENTUALLY

        def run(lo, hi):
            n = trace.length
            if lo > n:
                mark_tail()
                lo, hi = normalize(lo, hi)
            bits = profile(child)
            if bits is None:
                return fallback(lo, hi)
            if hi == INFINITY:
                cov = _mask_range(lo, n)
                open_end = True
            else:
                cov = _mask_range(lo, hi if hi < n else n)
                open_end = hi > n
            if want:
                if bits & cov:
                    return True
                if open_end:
                    mark_tail()
                return False
            if (bits & cov) != cov:
                return False
            if open_end:
                mark_tail()
            return True
        return run
    if node.op in (N_INTERVAL, N_OCCURS):
        construct_fast = _compile_term_bits(
            state, kernel, node.term, Direction.FORWARD
        )
        if construct_fast is None:
            return None
        if node.op == N_OCCURS:
            def run(lo, hi):
                if lo > trace.length:
                    mark_tail()
                    lo, hi = normalize(lo, hi)
                try:
                    return construct_fast(lo, hi) is not BOTTOM
                except _ExactConstruct:
                    return fallback(lo, hi)
            return run
        holds = state._holds
        body = node.a

        def run(lo, hi):
            if lo > trace.length:
                mark_tail()
                lo, hi = normalize(lo, hi)
            try:
                found = construct_fast(lo, hi)
            except _ExactConstruct:
                return fallback(lo, hi)
            if found is BOTTOM:
                return True
            return holds(body, found.lo, found.hi)
        return run
    return None


def bind_dispatch(state) -> Tuple[Tuple[Callable[[int, object], bool], ...], frozenset]:
    """Lower every node of ``state``'s plan to a bound closure.

    Returns the node-id-indexed dispatch table ``PlanState._holds`` jumps
    through, plus the frozenset of node ids bound to the vectorized
    (bitset-kernel) mode — those ids take the memo-free fast path in
    ``_holds``.  An unknown opcode fails here, at binding time, instead of
    at the first evaluation that reaches the node.
    """
    plan = state._plan
    kernel = state._kernel
    vectorize = _vectorized_incremental if state._incremental else _vectorized
    # Which nodes accept the vectorized mode is a property of the plan's
    # shapes, not of the particular trace, so the first binding records a
    # recipe on the plan and later bindings (every pooled stream of a serve
    # fleet) skip the doomed vectorization attempts instead of re-probing
    # every node.  Nodes *in* the recipe still call ``vectorize`` — the
    # closures must capture this state's kernel — and a node that fails
    # where the recipe succeeded simply stays on the per-position path
    # (verdicts are identical either way).
    recipe = None
    recipe_key = None
    if kernel is not None:
        recipe_key = (type(kernel).__name__, bool(state._incremental))
        recipe = getattr(plan, "_lowering_recipes", {}).get(recipe_key)
    ops: List[Callable] = []
    vector_ids: List[int] = []
    for node in plan.nodes:
        factory = _FACTORIES.get(node.op)
        if factory is None:
            raise CompileError(f"cannot lower plan node: {node!r}")
        closure = factory(state, node)
        if kernel is not None and (recipe is None or node.id in recipe):
            vectorized = vectorize(state, kernel, node, closure)
            if vectorized is not None:
                closure = vectorized
                vector_ids.append(node.id)
        ops.append(closure)
    nids = frozenset(vector_ids)
    if recipe is None and recipe_key is not None:
        recipes = getattr(plan, "_lowering_recipes", None)
        if recipes is None:
            recipes = {}
            try:
                plan._lowering_recipes = recipes
            except Exception:  # pragma: no cover - exotic plan objects
                recipes = None
        if recipes is not None:
            recipes[recipe_key] = nids
    return tuple(ops), nids
