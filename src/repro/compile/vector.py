"""The bitset kernel: whole-column evaluation of state formulas.

A *state formula* (``PlanNode.is_state``) depends only on the first state
of its context, so over a static lasso trace its full semantic content is
one bit per concrete position — a **profile**.  The per-position runtime
recomputes that profile point by point through the memo tables; this module
computes it in one pass as packed-int bitset operations over the trace's
dictionary-encoded columns (:mod:`repro.semantics.columns`):

* boolean variables, comparison atoms (all six operators, against a
  constant or a bound logical variable), operation predicates with
  state-independent arguments, and the ``start`` predicate each read one
  column and answer per *distinct value*, not per state;
* ``¬ / ∧ / ∨ / ⊃ / ≡`` combine child profiles with single big-int ops;
* ``[] φ`` / ``<> φ`` over a state-formula body reduce to one mask test
  against the **coverage bitset** of the context — the canonical positions
  a virtual range ``<lo, hi>`` touches, cycle wrap-around included;
* event change positions (the False→True edges
  :class:`~repro.compile.runtime.EventIndex` bisects) derive from a bitset
  shift instead of a per-state scan.

Exactness is non-negotiable: the kernel never guesses.  Any situation whose
error or semantics it cannot reproduce bit-for-bit — a variable missing in
some state (the per-position path raises there *lazily*), an unbound
logical variable, a comparison between incomparable values, a column past
the dictionary-cardinality cap — makes :meth:`BitsetKernel.profile` return
``None`` and the caller falls back to the per-position memo path, which
preserves the evaluator's (deferred-)error behaviour exactly.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..semantics.trace import INFINITY
from ..syntax.terms import (
    Cmp,
    Const,
    FalsePredicate,
    LogicalVar,
    OpAfter,
    OpAt,
    OpIn,
    Prop,
    StartPredicate,
    TruePredicate,
    Var,
)
from .dag import (
    N_AND,
    N_ATOM,
    N_FALSE,
    N_IFF,
    N_IMPLIES,
    N_NOT,
    N_OR,
    N_TRUE,
    STATE_NODE_OPS,
)

__all__ = ["BitsetKernel", "TailKernel", "bit_positions", "changes_from_bits"]


_MISS = object()

_CMP_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: bit offsets of the set bits of each byte value, for sparse extraction.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(b for b in range(8) if byte & (1 << b)) for byte in range(256)
)


class _Fallback(Exception):
    """Internal: this node cannot be vectorized faithfully — use the
    per-position path."""


def bit_positions(bits: int) -> List[int]:
    """0-based indices of the set bits, ascending (sparse-friendly)."""
    out: List[int] = []
    if bits <= 0:
        return out
    data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    for i, byte in enumerate(data):
        if byte:
            base = i << 3
            for offset in _BYTE_BITS[byte]:
                out.append(base + offset)
    return out


def changes_from_bits(bits: int, trace) -> Tuple[List[int], List[int]]:
    """The ``(stem, cycle)`` False→True change positions of a truth bitset.

    Mirrors :meth:`repro.semantics.trace.Trace.change_positions` — ``stem``
    holds virtual positions ``k`` in ``[2, length]`` whose adjacent pair is
    a change, ``cycle`` the changes in the first virtual copy of the
    repeating cycle — but reads the profile as one packed int: the stem is
    a single shift-and-mask, the cycle one bit test per cycle position.
    """
    n = trace.length
    # bit j set in `chg` iff bit j set and bit j-1 clear; `| 1` excludes
    # j = 0 (position 1 has no predecessor).
    chg = bits & ~((bits << 1) | 1)
    stem = [j + 1 for j in bit_positions(chg)]
    cycle = [
        k
        for k in range(n + 1, n + trace.period + 1)
        if (bits >> (trace.canonical(k) - 1)) & 1
        and not (bits >> (trace.canonical(k - 1) - 1)) & 1
    ]
    return stem, cycle


class BitsetKernel:
    """Bitset evaluation of one plan state's state-formula nodes.

    Bound to a static :class:`~repro.semantics.trace.Trace` (never a
    growing prefix — profiles are whole-trace facts).  Profiles cache per
    ``(node, free-slot bindings)``; a ``None`` profile (the faithful-
    fallback verdict) caches too, so a node that cannot vectorize is
    decided once.
    """

    __slots__ = (
        "_state",
        "_trace",
        "_profiles",
        "_bytes",
        "_inv_bounds",
        "_coverage",
        "_supported",
    )

    def __init__(self, plan_state, trace) -> None:
        self._state = plan_state
        self._trace = trace
        self._profiles: Dict[Any, Optional[int]] = {}
        self._bytes: Dict[Any, bytes] = {}
        self._inv_bounds: Dict[Any, int] = {}
        self._coverage: Dict[Any, int] = {}
        self._supported: Dict[int, bool] = {}

    @property
    def mask(self) -> int:
        return (1 << self._trace.length) - 1

    # -- static shape check ---------------------------------------------------

    def supports(self, nid: int) -> bool:
        """Whether the node's *shape* is vectorizable (bindings checked later)."""
        cached = self._supported.get(nid)
        if cached is not None:
            return cached
        node = self._state._nodes[nid]
        op = node.op
        if op not in STATE_NODE_OPS:
            ok = False
        elif op in (N_TRUE, N_FALSE):
            ok = True
        elif op == N_NOT:
            ok = self.supports(node.a)
        elif op == N_ATOM:
            ok = self._atom_supported(node.predicate)
        else:  # and / or / implies / iff
            ok = self.supports(node.a) and self.supports(node.b)
        self._supported[nid] = ok
        return ok

    @staticmethod
    def _atom_supported(predicate) -> bool:
        # Exact types only: a Prop/Cmp *subclass* may override ``holds``
        # with semantics the column read would silently disagree with.
        kind = type(predicate)
        if kind in (Prop, TruePredicate, FalsePredicate, StartPredicate):
            return True
        if kind is Cmp:
            left, right = predicate.left, predicate.right
            if type(left) is Var and type(right) in (Const, LogicalVar):
                return True
            if type(right) is Var and type(left) in (Const, LogicalVar):
                return True
            return False
        if kind in (OpAt, OpIn, OpAfter):
            return not any(arg.state_vars() for arg in predicate.args)
        return False

    # -- profiles -------------------------------------------------------------

    def _key_of(self, node) -> Any:
        """Profile cache key: node id plus its free-slot bindings.  May
        raise ``TypeError`` (unhashable binding) — callers then compute
        uncached."""
        slots = self._state._slots
        envkey = tuple(slots[s] for s in node.free_slots)
        key = (node.id, envkey)
        hash(key)
        return key

    def profile(self, node) -> Optional[int]:
        """The node's truth bitset under the current slot bindings, or
        ``None`` when the per-position path must decide instead."""
        try:
            key = self._key_of(node)
        except TypeError:
            return self._compute(node)
        hit = self._profiles.get(key, _MISS)
        if hit is not _MISS:
            return hit
        bits = self._compute(node)
        self._profiles[key] = bits
        return bits

    # -- O(1) queries over a profile ------------------------------------------

    def holds_at(self, node, pos: int) -> Optional[bool]:
        """The node's truth at virtual position ``pos`` (None → fall back).

        Reads a cached little-endian byte image of the profile so that a
        per-position parent iterating over a vectorized child pays O(1) per
        query instead of an O(length/64) big-int shift.
        """
        try:
            key = self._key_of(node)
        except TypeError:
            key = None
        data = self._bytes.get(key) if key is not None else None
        if data is None:
            bits = self.profile(node)
            if bits is None:
                return None
            data = bits.to_bytes((self._trace.length + 7) >> 3, "little")
            if key is not None:
                self._bytes[key] = data
        c = self._trace.canonical(pos) - 1
        return bool((data[c >> 3] >> (c & 7)) & 1)

    def eventually(self, node, lo: int, hi) -> Optional[bool]:
        """``<lo, hi> |= <> node`` for a state-formula body (None → fall back)."""
        bits = self.profile(node)
        if bits is None:
            return None
        if hi == INFINITY:
            # Coverage is the suffix [start, n]: one O(1) bound test beats
            # building a per-lo suffix mask.
            trace = self._trace
            start = lo if lo < trace.loop_start else trace.loop_start
            return bits.bit_length() >= start
        cov = self.coverage(lo, hi)
        return (bits & cov) != 0

    def always(self, node, lo: int, hi) -> Optional[bool]:
        """``<lo, hi> |= [] node`` for a state-formula body (None → fall back)."""
        bits = self.profile(node)
        if bits is None:
            return None
        if hi == INFINITY:
            trace = self._trace
            start = lo if lo < trace.loop_start else trace.loop_start
            return self._inverse_bound(node, bits) < start
        cov = self.coverage(lo, hi)
        return (bits & cov) == cov

    def _inverse_bound(self, node, bits: int) -> int:
        """Highest position (1-based) where the profile is *false*, cached
        per (node, bindings); 0 when the profile is all-true."""
        try:
            key = self._key_of(node)
        except TypeError:
            key = None
        if key is not None:
            hit = self._inv_bounds.get(key)
            if hit is not None:
                return hit
        bound = (~bits & self.mask).bit_length()
        if key is not None:
            self._inv_bounds[key] = bound
        return bound

    def _compute(self, node) -> Optional[int]:
        try:
            return self._bits(node)
        except Exception:
            return None

    def _child(self, nid: int) -> int:
        bits = self.profile(self._state._nodes[nid])
        if bits is None:
            raise _Fallback(nid)
        return bits

    def _bits(self, node) -> int:
        op = node.op
        if op == N_ATOM:
            return self._atom_bits(node)
        if op == N_TRUE:
            return self.mask
        if op == N_FALSE:
            return 0
        if op == N_NOT:
            return ~self._child(node.a) & self.mask
        a = self._child(node.a)
        b = self._child(node.b)
        if op == N_AND:
            return a & b
        if op == N_OR:
            return a | b
        if op == N_IMPLIES:
            return (~a | b) & self.mask
        if op == N_IFF:
            return ~(a ^ b) & self.mask
        raise _Fallback(node.id)

    def _require(self, bits: Optional[int]) -> int:
        if bits is None:
            raise _Fallback("cardinality cap")
        return bits

    def _resolve(self, expr) -> Any:
        """A ``Const`` / *bound* ``LogicalVar`` value (else fall back: the
        per-position path raises its unbound-variable error lazily)."""
        if isinstance(expr, Const):
            return expr.value
        from .runtime import UNSET  # late: vector loads during runtime's import

        slot = self._state._plan.slot_of.get(expr.name)
        if slot is not None:
            value = self._state._slots[slot]
            if value is not UNSET:
                return value
        raise _Fallback(expr)

    def _atom_bits(self, node) -> int:
        predicate = node.predicate
        store = self._trace.columns
        if isinstance(predicate, TruePredicate):
            return self.mask
        if isinstance(predicate, FalsePredicate):
            return 0
        if isinstance(predicate, StartPredicate):
            # Missing ``__start__`` is False, not an error — no presence
            # requirement; positions outside the column contribute 0.
            column = store.column("__start__")
            if column is None:
                return 0
            return self._require(column.select_bits(bool))
        if isinstance(predicate, Prop):
            column = store.column(predicate.name)
            if column is None or column.missing:
                # The per-position path raises UnknownStateVariableError at
                # the position it touches; only it can do that lazily.
                raise _Fallback(predicate.name)
            return self._require(column.select_bits(bool))
        if isinstance(predicate, Cmp):
            left, right = predicate.left, predicate.right
            if isinstance(left, Var) and isinstance(right, (Const, LogicalVar)):
                name, constant, flipped = left.name, self._resolve(right), False
            elif isinstance(right, Var) and isinstance(left, (Const, LogicalVar)):
                name, constant, flipped = right.name, self._resolve(left), True
            else:
                raise _Fallback(predicate)
            column = store.column(name)
            if column is None or column.missing:
                raise _Fallback(name)
            compare = _CMP_FUNCS[predicate.op]
            if flipped:
                test = lambda value: bool(compare(constant, value))
            else:
                test = lambda value: bool(compare(value, constant))
            # A TypeError inside `compare` propagates: the per-position
            # path turns it into an EvaluationError at the touched position.
            return self._require(column.select_bits(test))
        if isinstance(predicate, (OpAt, OpIn, OpAfter)):
            env = self._state._env_view(node)
            # Arguments are state-independent (checked by supports); any
            # evaluation error falls back to surface per position.
            arg_values = tuple(arg.evaluate({}, env) for arg in predicate.args)
            column = store.op_column(predicate.operation)
            if column is None:
                # No state ever records this operation: idle everywhere.
                return 0
            if predicate.args:
                bits = column.call_bits(predicate.PHASES, arg_values)
            else:
                bits = column.phase_bits(predicate.PHASES)
            return self._require(bits)
        raise _Fallback(predicate)

    # -- context coverage ------------------------------------------------------

    def coverage(self, lo: int, hi) -> int:
        """Bitset of canonical positions the virtual range ``<lo, hi>`` hits.

        ``[] φ`` on the range is ``profile ⊇ coverage``; ``<> φ`` is
        ``profile ∩ coverage ≠ ∅``.  Correct under the runtime's context
        normalization: shifts by whole periods never change the canonical
        position set.
        """
        key = (lo, hi)
        cov = self._coverage.get(key)
        if cov is None:
            cov = self._coverage[key] = self._compute_coverage(lo, hi)
        return cov

    def _compute_coverage(self, lo: int, hi) -> int:
        trace = self._trace
        n = trace.length
        if hi == INFINITY:
            # Beyond position n the walk wraps through the entire cycle.
            start = lo if lo < trace.loop_start else trace.loop_start
            return _mask_range(start, n)
        hi = int(hi)
        if hi < lo:
            return 0
        cov = 0
        if lo <= n:
            cov = _mask_range(lo, min(hi, n))
        beyond = max(lo, n + 1)
        if hi >= beyond:
            if hi - beyond + 1 >= trace.period:
                cov |= _mask_range(trace.loop_start, n)
            else:
                for k in range(beyond, hi + 1):
                    cov |= 1 << (trace.canonical(k) - 1)
        return cov


def _mask_range(lo: int, hi: int) -> int:
    """Bits for 1-based positions ``lo..hi`` inclusive (empty when lo > hi)."""
    if lo > hi:
        return 0
    return (1 << hi) - (1 << (lo - 1))


class _TailEntry:
    """One (node, bindings) profile of a :class:`TailKernel`.

    ``bits`` covers concrete positions ``1..built_to``; ``passes`` caches
    the atom test's verdict per dictionary code (the test runs once per
    *distinct value*, exactly like ``Column.select_bits``, but across every
    extension window).  ``dead`` is the permanent exact-fallback flag.
    """

    __slots__ = ("bits", "built_to", "dead", "passes")

    def __init__(self) -> None:
        self.bits = 0
        self.built_to = 0
        self.dead = False
        self.passes: Dict[int, bool] = {}


class _CallTrack:
    """Codes of one operation column grouped by ``record.args``.

    Built once per (operation, phase set) as the column's value dictionary
    grows; ``dead`` marks an unhashable argument tuple, after which every
    query falls back to the per-code test sweep.
    """

    __slots__ = ("by_args", "built", "dead")

    def __init__(self) -> None:
        self.by_args: Dict[Any, List[int]] = {}
        self.built = 0
        self.dead = False


class _ColumnTrack:
    """Per-code position bitsets of one growing column, extended per window.

    The incremental twin of ``_ColumnBase.code_bitsets``: one pass over the
    appended window files each position under its dictionary code, so *every*
    profile over this column (one per quantifier binding, say) recombines
    cached per-code bitsets in O(distinct codes) instead of re-scanning the
    window per binding.
    """

    __slots__ = ("bits_by_code", "absent_bits", "built_to")

    def __init__(self) -> None:
        self.bits_by_code: List[int] = []
        self.absent_bits = 0
        self.built_to = 0

    def extend(self, column, n: int) -> None:
        codes = column.codes
        bits_by_code = self.bits_by_code
        bit = 1 << self.built_to
        for i in range(self.built_to, n):
            code = codes[i]
            if code < 0:
                self.absent_bits |= bit
            else:
                if code >= len(bits_by_code):
                    bits_by_code.extend([0] * (code + 1 - len(bits_by_code)))
                bits_by_code[code] |= bit
            bit <<= 1
        self.built_to = n


def _record_test(phases, arg_values) -> Callable[[Any], bool]:
    """Operation-record match with the elementwise ``!=`` convention of
    :func:`repro.syntax.terms._args_match` (mirrors
    :meth:`~repro.semantics.columns.OperationColumn.call_bits`)."""

    def test(record) -> bool:
        if record.phase not in phases:
            return False
        actual = record.args
        if len(arg_values) != len(actual):
            return False
        return not any(
            expected != value for expected, value in zip(arg_values, actual)
        )

    return test


class TailKernel:
    """Incremental bitset evaluation over a growing state prefix.

    The batched-append twin of :class:`BitsetKernel`: bound to a
    :class:`~repro.compile.runtime.GrowingPrefix` instead of a static
    trace, it keeps one packed truth profile per ``(node, bindings)`` over
    the *concrete states observed so far* and extends each touched profile
    in one pass over the appended window ``[built_to, length)`` — atoms
    through the prefix's incremental dictionary-encoded columns (the test
    runs once per distinct value, cached across windows), connectives by
    recombining child bits.  A multi-state append is thus absorbed as one
    vectorized window pass instead of N per-position re-evaluations.

    The exact-fallback discipline is the same as the static kernel's, with
    one incremental twist: a column that becomes unusable mid-stream (a
    variable missing from some appended state, a comparison raising on a
    fresh value) kills the profile *permanently* (``None`` henceforth) and
    the per-position path takes over — earlier answers remain valid
    because they were bit-for-bit the per-position verdicts of the shorter
    prefix.  Profiles never look past the concrete states; tail positions
    (and the tail-marking that keeps the stable/volatile memo split sound)
    are the caller's responsibility (:mod:`repro.compile.lower`).
    """

    __slots__ = ("_state", "_trace", "_entries", "_supported", "_tracks")

    def __init__(self, plan_state, prefix) -> None:
        self._state = plan_state
        self._trace = prefix
        self._entries: Dict[Any, _TailEntry] = {}
        self._tracks: Dict[Any, _ColumnTrack] = {}
        # The support verdicts depend only on the plan's node shapes, so
        # every kernel bound to the same plan (each stream of a pooled
        # serve fleet) shares one table and the shape walk runs once.
        plan = plan_state._plan
        supported = getattr(plan, "_tail_supported", None)
        if supported is None:
            supported = {}
            try:
                plan._tail_supported = supported
            except Exception:  # pragma: no cover - exotic plan objects
                pass
        self._supported: Dict[int, bool] = supported

    def reset(self) -> None:
        """Drop per-stream profiles and column tracks (pool reuse).

        ``_supported`` survives: it is a pure function of the plan's node
        shapes, identical for every stream that recycles this state.
        """
        self._entries.clear()
        self._tracks.clear()

    # -- static shape check (same rules as the static kernel) ----------------

    def supports(self, nid: int) -> bool:
        """Whether the node's *shape* is vectorizable (bindings checked later)."""
        cached = self._supported.get(nid)
        if cached is not None:
            return cached
        node = self._state._nodes[nid]
        op = node.op
        if op not in STATE_NODE_OPS:
            ok = False
        elif op in (N_TRUE, N_FALSE):
            ok = True
        elif op == N_NOT:
            ok = self.supports(node.a)
        elif op == N_ATOM:
            ok = BitsetKernel._atom_supported(node.predicate)
        else:  # and / or / implies / iff
            ok = self.supports(node.a) and self.supports(node.b)
        self._supported[nid] = ok
        return ok

    # -- profiles -------------------------------------------------------------

    def profile(self, node) -> Optional[int]:
        """Truth bits over concrete positions ``1..length`` under the current
        slot bindings, extended to the prefix's length; ``None`` when the
        per-position path must decide instead."""
        free = node.free_slots
        if free:
            slots = self._state._slots
            key = (node.id,) + tuple(slots[s] for s in free)
        else:
            # Slot-free nodes (every propositional atom and connective over
            # them) key on the bare node id — no tuple, no binding reads.
            key = node.id
        try:
            entry = self._entries.get(key)
        except TypeError:
            # An unhashable binding cannot key an extendable profile; the
            # per-position path (which needs no cache) decides.
            return None
        if entry is None:
            entry = self._entries[key] = _TailEntry()
        if entry.dead:
            return None
        n = self._trace.length
        if entry.built_to < n:
            try:
                self._extend(node, entry, n)
            except Exception:
                entry.dead = True
                return None
        return entry.bits

    def holds_at(self, node, pos: int) -> Optional[bool]:
        """The node's truth at virtual position ``pos`` (None → fall back).

        Positions past the last concrete state read the stuttered final
        state, exactly like ``GrowingPrefix.canonical``; the *caller* is
        responsible for tail-marking those reads.
        """
        bits = self.profile(node)
        if bits is None:
            return None
        c = self._trace.canonical(pos) - 1
        return bool((bits >> c) & 1)

    # -- extension ------------------------------------------------------------

    def _child(self, nid: int) -> int:
        bits = self.profile(self._state._nodes[nid])
        if bits is None:
            raise _Fallback(nid)
        return bits

    def _extend(self, node, entry: _TailEntry, n: int) -> None:
        op = node.op
        if op == N_ATOM:
            entry.bits = self._atom_bits(node, entry, n)
        elif op == N_TRUE:
            entry.bits = (1 << n) - 1
        elif op == N_FALSE:
            entry.bits = 0
        elif op == N_NOT:
            entry.bits = ~self._child(node.a) & ((1 << n) - 1)
        else:
            a = self._child(node.a)
            b = self._child(node.b)
            mask = (1 << n) - 1
            if op == N_AND:
                entry.bits = a & b
            elif op == N_OR:
                entry.bits = a | b
            elif op == N_IMPLIES:
                entry.bits = (~a | b) & mask
            elif op == N_IFF:
                entry.bits = ~(a ^ b) & mask
            else:
                raise _Fallback(node.id)
        entry.built_to = n

    def _resolve(self, expr) -> Any:
        """A ``Const`` / *bound* ``LogicalVar`` value (else fall back: the
        per-position path raises its unbound-variable error lazily)."""
        if isinstance(expr, Const):
            return expr.value
        from .runtime import UNSET  # late: vector loads during runtime's import

        slot = self._state._plan.slot_of.get(expr.name)
        if slot is not None:
            value = self._state._slots[slot]
            if value is not UNSET:
                return value
        raise _Fallback(expr)

    def _atom_bits(self, node, entry: _TailEntry, n: int) -> int:
        """Full-prefix bits for positions ``1..n`` (bit 0 = position 1)."""
        predicate = node.predicate
        if isinstance(predicate, TruePredicate):
            return (1 << n) - 1
        if isinstance(predicate, FalsePredicate):
            return 0
        store = self._trace.columns
        if isinstance(predicate, StartPredicate):
            # Missing ``__start__`` is False, not an error — no presence
            # requirement (GrowingPrefix injects it, but stay faithful).
            column = store.column("__start__")
            return self._select_bits("v", "__start__", column, entry, n, bool)
        if isinstance(predicate, Prop):
            column = store.column(predicate.name)
            if column is None or column.missing:
                # The per-position path raises UnknownStateVariableError at
                # the position it touches; only it can do that lazily.
                raise _Fallback(predicate.name)
            return self._select_bits("v", predicate.name, column, entry, n, bool)
        if isinstance(predicate, Cmp):
            left, right = predicate.left, predicate.right
            if isinstance(left, Var) and isinstance(right, (Const, LogicalVar)):
                name, constant, flipped = left.name, self._resolve(right), False
            elif isinstance(right, Var) and isinstance(left, (Const, LogicalVar)):
                name, constant, flipped = right.name, self._resolve(left), True
            else:
                raise _Fallback(predicate)
            column = store.column(name)
            if column is None or column.missing:
                raise _Fallback(name)
            compare = _CMP_FUNCS[predicate.op]
            if flipped:
                test = lambda value: bool(compare(constant, value))
            else:
                test = lambda value: bool(compare(value, constant))
            # A TypeError inside `compare` kills the profile: the
            # per-position path raises at the position it touches.
            return self._select_bits("v", name, column, entry, n, test)
        if isinstance(predicate, (OpAt, OpIn, OpAfter)):
            env = self._state._env_view(node)
            # Arguments are state-independent (checked by supports); an
            # evaluation error falls back to surface per position.
            arg_values = tuple(arg.evaluate({}, env) for arg in predicate.args)
            column = store.op_column(predicate.operation)
            # No column yet = the operation is idle in every state so far
            # (it may first be recorded later; the column then arrives
            # ABSENT-padded and the next window reads it).  ABSENT = idle
            # = False, so absent positions simply stay unset.
            if predicate.args:
                bits = self._call_bits(
                    predicate.operation, predicate.PHASES, arg_values, column, n
                )
                if bits is None:  # unhashable somewhere: per-code test sweep
                    test = _record_test(predicate.PHASES, arg_values)
                    return self._select_bits(
                        "o", predicate.operation, column, entry, n, test
                    )
                return bits
            phases = predicate.PHASES
            test = lambda record: record.phase in phases
            return self._select_bits("o", predicate.operation, column, entry, n, test)
        raise _Fallback(predicate)

    def _call_bits(self, operation, phases, arg_values, column, n):
        """Positions whose record matches ``(phases, arg_values)`` via an
        args-indexed call track, or ``None`` to fall back to the test sweep.

        The track groups the column's codes by ``record.args`` once per
        (operation, phase set) — each quantifier binding's profile is then
        one dict lookup plus an OR over the (usually single) matching
        code's bitset, instead of testing every distinct record per
        binding.  Requires hashable argument tuples on both sides (the
        dict's ``==`` equality coincides with the elementwise ``!=``
        convention for values with coherent equality); anything unhashable
        returns ``None`` and the caller runs the exact per-code sweep.
        """
        if column is None:
            return 0
        key = ("c", operation, phases)
        ct = self._tracks.get(key)
        if ct is None:
            ct = self._tracks[key] = _CallTrack()
        values = column.values
        by_args = ct.by_args
        built = ct.built
        if built < len(values):
            try:
                while built < len(values):
                    record = values[built]
                    if record.phase in phases:
                        # Tuple equality covers the arity check too: a
                        # query tuple of different length never matches.
                        by_args.setdefault(record.args, []).append(built)
                    built += 1
            except TypeError:
                ct.dead = True
            ct.built = built
        if ct.dead:
            return None
        track = self._tracks.get(("o", operation))
        if track is None:
            track = self._tracks[("o", operation)] = _ColumnTrack()
        if track.built_to < n:
            track.extend(column, n)
        try:
            codes = by_args.get(arg_values)
        except TypeError:
            return None
        if not codes:
            return 0
        bits_by_code = track.bits_by_code
        out = 0
        for code in codes:
            if code < len(bits_by_code):
                out |= bits_by_code[code]
        return out

    def _select_bits(self, kind, name, column, entry: _TailEntry, n: int, test) -> int:
        """OR of the column track's per-code bitsets whose value passes.

        The window pass over appended codes runs once per *column* (in the
        track); each profile then recombines per-code bitsets through its
        own per-code verdict cache — O(distinct codes) per extension, not
        O(window) per (node, bindings) entry.  ``ABSENT`` positions are
        False (callers with a presence requirement, Prop/Cmp, bail on the
        column's ``missing`` flag before reaching here).
        """
        if column is None:
            return 0
        key = (kind, name)
        track = self._tracks.get(key)
        if track is None:
            track = self._tracks[key] = _ColumnTrack()
        if track.built_to < n:
            track.extend(column, n)
        values = column.values
        passes = entry.passes
        out = 0
        for code, cbits in enumerate(track.bits_by_code):
            if not cbits:
                continue
            truth = passes.get(code)
            if truth is None:
                truth = passes[code] = bool(test(values[code]))
            if truth:
                out |= cbits
        return out
