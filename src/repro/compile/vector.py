"""The bitset kernel: whole-column evaluation of state formulas.

A *state formula* (``PlanNode.is_state``) depends only on the first state
of its context, so over a static lasso trace its full semantic content is
one bit per concrete position — a **profile**.  The per-position runtime
recomputes that profile point by point through the memo tables; this module
computes it in one pass as packed-int bitset operations over the trace's
dictionary-encoded columns (:mod:`repro.semantics.columns`):

* boolean variables, comparison atoms (all six operators, against a
  constant or a bound logical variable), operation predicates with
  state-independent arguments, and the ``start`` predicate each read one
  column and answer per *distinct value*, not per state;
* ``¬ / ∧ / ∨ / ⊃ / ≡`` combine child profiles with single big-int ops;
* ``[] φ`` / ``<> φ`` over a state-formula body reduce to one mask test
  against the **coverage bitset** of the context — the canonical positions
  a virtual range ``<lo, hi>`` touches, cycle wrap-around included;
* event change positions (the False→True edges
  :class:`~repro.compile.runtime.EventIndex` bisects) derive from a bitset
  shift instead of a per-state scan.

Exactness is non-negotiable: the kernel never guesses.  Any situation whose
error or semantics it cannot reproduce bit-for-bit — a variable missing in
some state (the per-position path raises there *lazily*), an unbound
logical variable, a comparison between incomparable values, a column past
the dictionary-cardinality cap — makes :meth:`BitsetKernel.profile` return
``None`` and the caller falls back to the per-position memo path, which
preserves the evaluator's (deferred-)error behaviour exactly.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..semantics.trace import INFINITY
from ..syntax.terms import (
    Cmp,
    Const,
    FalsePredicate,
    LogicalVar,
    OpAfter,
    OpAt,
    OpIn,
    Prop,
    StartPredicate,
    TruePredicate,
    Var,
)
from .dag import (
    N_AND,
    N_ATOM,
    N_FALSE,
    N_IFF,
    N_IMPLIES,
    N_NOT,
    N_OR,
    N_TRUE,
    STATE_NODE_OPS,
)

__all__ = ["BitsetKernel", "bit_positions", "changes_from_bits"]


_MISS = object()

_CMP_FUNCS: Dict[str, Callable[[Any, Any], Any]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: bit offsets of the set bits of each byte value, for sparse extraction.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(b for b in range(8) if byte & (1 << b)) for byte in range(256)
)


class _Fallback(Exception):
    """Internal: this node cannot be vectorized faithfully — use the
    per-position path."""


def bit_positions(bits: int) -> List[int]:
    """0-based indices of the set bits, ascending (sparse-friendly)."""
    out: List[int] = []
    if bits <= 0:
        return out
    data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    for i, byte in enumerate(data):
        if byte:
            base = i << 3
            for offset in _BYTE_BITS[byte]:
                out.append(base + offset)
    return out


def changes_from_bits(bits: int, trace) -> Tuple[List[int], List[int]]:
    """The ``(stem, cycle)`` False→True change positions of a truth bitset.

    Mirrors :meth:`repro.semantics.trace.Trace.change_positions` — ``stem``
    holds virtual positions ``k`` in ``[2, length]`` whose adjacent pair is
    a change, ``cycle`` the changes in the first virtual copy of the
    repeating cycle — but reads the profile as one packed int: the stem is
    a single shift-and-mask, the cycle one bit test per cycle position.
    """
    n = trace.length
    # bit j set in `chg` iff bit j set and bit j-1 clear; `| 1` excludes
    # j = 0 (position 1 has no predecessor).
    chg = bits & ~((bits << 1) | 1)
    stem = [j + 1 for j in bit_positions(chg)]
    cycle = [
        k
        for k in range(n + 1, n + trace.period + 1)
        if (bits >> (trace.canonical(k) - 1)) & 1
        and not (bits >> (trace.canonical(k - 1) - 1)) & 1
    ]
    return stem, cycle


class BitsetKernel:
    """Bitset evaluation of one plan state's state-formula nodes.

    Bound to a static :class:`~repro.semantics.trace.Trace` (never a
    growing prefix — profiles are whole-trace facts).  Profiles cache per
    ``(node, free-slot bindings)``; a ``None`` profile (the faithful-
    fallback verdict) caches too, so a node that cannot vectorize is
    decided once.
    """

    __slots__ = (
        "_state",
        "_trace",
        "_profiles",
        "_bytes",
        "_inv_bounds",
        "_coverage",
        "_supported",
    )

    def __init__(self, plan_state, trace) -> None:
        self._state = plan_state
        self._trace = trace
        self._profiles: Dict[Any, Optional[int]] = {}
        self._bytes: Dict[Any, bytes] = {}
        self._inv_bounds: Dict[Any, int] = {}
        self._coverage: Dict[Any, int] = {}
        self._supported: Dict[int, bool] = {}

    @property
    def mask(self) -> int:
        return (1 << self._trace.length) - 1

    # -- static shape check ---------------------------------------------------

    def supports(self, nid: int) -> bool:
        """Whether the node's *shape* is vectorizable (bindings checked later)."""
        cached = self._supported.get(nid)
        if cached is not None:
            return cached
        node = self._state._nodes[nid]
        op = node.op
        if op not in STATE_NODE_OPS:
            ok = False
        elif op in (N_TRUE, N_FALSE):
            ok = True
        elif op == N_NOT:
            ok = self.supports(node.a)
        elif op == N_ATOM:
            ok = self._atom_supported(node.predicate)
        else:  # and / or / implies / iff
            ok = self.supports(node.a) and self.supports(node.b)
        self._supported[nid] = ok
        return ok

    @staticmethod
    def _atom_supported(predicate) -> bool:
        # Exact types only: a Prop/Cmp *subclass* may override ``holds``
        # with semantics the column read would silently disagree with.
        kind = type(predicate)
        if kind in (Prop, TruePredicate, FalsePredicate, StartPredicate):
            return True
        if kind is Cmp:
            left, right = predicate.left, predicate.right
            if type(left) is Var and type(right) in (Const, LogicalVar):
                return True
            if type(right) is Var and type(left) in (Const, LogicalVar):
                return True
            return False
        if kind in (OpAt, OpIn, OpAfter):
            return not any(arg.state_vars() for arg in predicate.args)
        return False

    # -- profiles -------------------------------------------------------------

    def _key_of(self, node) -> Any:
        """Profile cache key: node id plus its free-slot bindings.  May
        raise ``TypeError`` (unhashable binding) — callers then compute
        uncached."""
        slots = self._state._slots
        envkey = tuple(slots[s] for s in node.free_slots)
        key = (node.id, envkey)
        hash(key)
        return key

    def profile(self, node) -> Optional[int]:
        """The node's truth bitset under the current slot bindings, or
        ``None`` when the per-position path must decide instead."""
        try:
            key = self._key_of(node)
        except TypeError:
            return self._compute(node)
        hit = self._profiles.get(key, _MISS)
        if hit is not _MISS:
            return hit
        bits = self._compute(node)
        self._profiles[key] = bits
        return bits

    # -- O(1) queries over a profile ------------------------------------------

    def holds_at(self, node, pos: int) -> Optional[bool]:
        """The node's truth at virtual position ``pos`` (None → fall back).

        Reads a cached little-endian byte image of the profile so that a
        per-position parent iterating over a vectorized child pays O(1) per
        query instead of an O(length/64) big-int shift.
        """
        try:
            key = self._key_of(node)
        except TypeError:
            key = None
        data = self._bytes.get(key) if key is not None else None
        if data is None:
            bits = self.profile(node)
            if bits is None:
                return None
            data = bits.to_bytes((self._trace.length + 7) >> 3, "little")
            if key is not None:
                self._bytes[key] = data
        c = self._trace.canonical(pos) - 1
        return bool((data[c >> 3] >> (c & 7)) & 1)

    def eventually(self, node, lo: int, hi) -> Optional[bool]:
        """``<lo, hi> |= <> node`` for a state-formula body (None → fall back)."""
        bits = self.profile(node)
        if bits is None:
            return None
        if hi == INFINITY:
            # Coverage is the suffix [start, n]: one O(1) bound test beats
            # building a per-lo suffix mask.
            trace = self._trace
            start = lo if lo < trace.loop_start else trace.loop_start
            return bits.bit_length() >= start
        cov = self.coverage(lo, hi)
        return (bits & cov) != 0

    def always(self, node, lo: int, hi) -> Optional[bool]:
        """``<lo, hi> |= [] node`` for a state-formula body (None → fall back)."""
        bits = self.profile(node)
        if bits is None:
            return None
        if hi == INFINITY:
            trace = self._trace
            start = lo if lo < trace.loop_start else trace.loop_start
            return self._inverse_bound(node, bits) < start
        cov = self.coverage(lo, hi)
        return (bits & cov) == cov

    def _inverse_bound(self, node, bits: int) -> int:
        """Highest position (1-based) where the profile is *false*, cached
        per (node, bindings); 0 when the profile is all-true."""
        try:
            key = self._key_of(node)
        except TypeError:
            key = None
        if key is not None:
            hit = self._inv_bounds.get(key)
            if hit is not None:
                return hit
        bound = (~bits & self.mask).bit_length()
        if key is not None:
            self._inv_bounds[key] = bound
        return bound

    def _compute(self, node) -> Optional[int]:
        try:
            return self._bits(node)
        except Exception:
            return None

    def _child(self, nid: int) -> int:
        bits = self.profile(self._state._nodes[nid])
        if bits is None:
            raise _Fallback(nid)
        return bits

    def _bits(self, node) -> int:
        op = node.op
        if op == N_ATOM:
            return self._atom_bits(node)
        if op == N_TRUE:
            return self.mask
        if op == N_FALSE:
            return 0
        if op == N_NOT:
            return ~self._child(node.a) & self.mask
        a = self._child(node.a)
        b = self._child(node.b)
        if op == N_AND:
            return a & b
        if op == N_OR:
            return a | b
        if op == N_IMPLIES:
            return (~a | b) & self.mask
        if op == N_IFF:
            return ~(a ^ b) & self.mask
        raise _Fallback(node.id)

    def _require(self, bits: Optional[int]) -> int:
        if bits is None:
            raise _Fallback("cardinality cap")
        return bits

    def _resolve(self, expr) -> Any:
        """A ``Const`` / *bound* ``LogicalVar`` value (else fall back: the
        per-position path raises its unbound-variable error lazily)."""
        if isinstance(expr, Const):
            return expr.value
        from .runtime import UNSET  # late: vector loads during runtime's import

        slot = self._state._plan.slot_of.get(expr.name)
        if slot is not None:
            value = self._state._slots[slot]
            if value is not UNSET:
                return value
        raise _Fallback(expr)

    def _atom_bits(self, node) -> int:
        predicate = node.predicate
        store = self._trace.columns
        if isinstance(predicate, TruePredicate):
            return self.mask
        if isinstance(predicate, FalsePredicate):
            return 0
        if isinstance(predicate, StartPredicate):
            # Missing ``__start__`` is False, not an error — no presence
            # requirement; positions outside the column contribute 0.
            column = store.column("__start__")
            if column is None:
                return 0
            return self._require(column.select_bits(bool))
        if isinstance(predicate, Prop):
            column = store.column(predicate.name)
            if column is None or column.missing:
                # The per-position path raises UnknownStateVariableError at
                # the position it touches; only it can do that lazily.
                raise _Fallback(predicate.name)
            return self._require(column.select_bits(bool))
        if isinstance(predicate, Cmp):
            left, right = predicate.left, predicate.right
            if isinstance(left, Var) and isinstance(right, (Const, LogicalVar)):
                name, constant, flipped = left.name, self._resolve(right), False
            elif isinstance(right, Var) and isinstance(left, (Const, LogicalVar)):
                name, constant, flipped = right.name, self._resolve(left), True
            else:
                raise _Fallback(predicate)
            column = store.column(name)
            if column is None or column.missing:
                raise _Fallback(name)
            compare = _CMP_FUNCS[predicate.op]
            if flipped:
                test = lambda value: bool(compare(constant, value))
            else:
                test = lambda value: bool(compare(value, constant))
            # A TypeError inside `compare` propagates: the per-position
            # path turns it into an EvaluationError at the touched position.
            return self._require(column.select_bits(test))
        if isinstance(predicate, (OpAt, OpIn, OpAfter)):
            env = self._state._env_view(node)
            # Arguments are state-independent (checked by supports); any
            # evaluation error falls back to surface per position.
            arg_values = tuple(arg.evaluate({}, env) for arg in predicate.args)
            column = store.op_column(predicate.operation)
            if column is None:
                # No state ever records this operation: idle everywhere.
                return 0
            if predicate.args:
                bits = column.call_bits(predicate.PHASES, arg_values)
            else:
                bits = column.phase_bits(predicate.PHASES)
            return self._require(bits)
        raise _Fallback(predicate)

    # -- context coverage ------------------------------------------------------

    def coverage(self, lo: int, hi) -> int:
        """Bitset of canonical positions the virtual range ``<lo, hi>`` hits.

        ``[] φ`` on the range is ``profile ⊇ coverage``; ``<> φ`` is
        ``profile ∩ coverage ≠ ∅``.  Correct under the runtime's context
        normalization: shifts by whole periods never change the canonical
        position set.
        """
        key = (lo, hi)
        cov = self._coverage.get(key)
        if cov is None:
            cov = self._coverage[key] = self._compute_coverage(lo, hi)
        return cov

    def _compute_coverage(self, lo: int, hi) -> int:
        trace = self._trace
        n = trace.length
        if hi == INFINITY:
            # Beyond position n the walk wraps through the entire cycle.
            start = lo if lo < trace.loop_start else trace.loop_start
            return _mask_range(start, n)
        hi = int(hi)
        if hi < lo:
            return 0
        cov = 0
        if lo <= n:
            cov = _mask_range(lo, min(hi, n))
        beyond = max(lo, n + 1)
        if hi >= beyond:
            if hi - beyond + 1 >= trace.period:
                cov |= _mask_range(trace.loop_start, n)
            else:
                for k in range(beyond, hi + 1):
                    cov |= 1 << (trace.canonical(k) - 1)
        return cov


def _mask_range(lo: int, hi: int) -> int:
    """Bits for 1-based positions ``lo..hi`` inclusive (empty when lo > hi)."""
    if lo > hi:
        return 0
    return (1 << hi) - (1 << (lo - 1))
