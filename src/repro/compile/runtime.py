"""Executable plan states: the compiled evaluator runtime.

A :class:`PlanState` binds one :class:`~repro.compile.plan.CompiledPlan` to
one computation and answers ``<lo, hi> |= α`` exactly like the Chapter 3
evaluator (:mod:`repro.semantics.evaluator`), with three representation
changes:

* **slot-addressed environments** — quantifiers and ``bind-next`` write
  logical-variable values into a flat slot vector instead of copying
  environment dictionaries; memo keys restrict to each node's precomputed
  free-slot signature;
* **node-id memo tables** — verdicts key on small integers from the
  hash-consed DAG, so structurally repeated subformulas share entries, and
  *state formulas* (truth determined by the first state of the context)
  share one entry per canonical position across every context;
* **interval-endpoint indexes** — for events defined by state formulas,
  the per-state truth profile and its False→True change positions are
  computed once (per environment signature) and event searches bisect the
  change list instead of re-scanning the trace.

Incremental monitoring
----------------------

``PlanState(..., incremental=True)`` evaluates over a
:class:`GrowingPrefix` — the paper's finite-computation convention on a
prefix that gains one state per :meth:`GrowingPrefix.append`.  During
evaluation the runtime tracks, per memo entry, whether the verdict
depended on the *tail* of the computation (a stuttered position beyond the
last concrete state, the exhaustion of an infinite suffix enumeration, a
backward event search, or the growing default quantification domain).
Tail-independent verdicts are frozen forever in a stable memo; tail-
dependent ones go to a volatile memo cleared by :meth:`PlanState.note_append`.
Resumable frontier aggregators for ``[] / <>`` on infinite contexts, and
the incrementally extended endpoint indexes, then make re-evaluation after
one appended state cost amortized O(changed work) instead of O(prefix).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import EvaluationError, TraceError
from ..semantics.columns import IncrementalColumnStore
from ..semantics.construction import BOTTOM, Direction, Interval
from ..semantics.state import State
from ..semantics.trace import INFINITY, Trace
from ..syntax.terms import Cmp, Const, LogicalVar, OpAfter, OpAt, OpIn, Var
from .vector import BitsetKernel, TailKernel, changes_from_bits
from .dag import (
    N_AND,
    N_ATOM,
    N_FALSE,
    N_IFF,
    N_IMPLIES,
    N_INTERVAL,
    N_NOT,
    N_OCCURS,
    N_OR,
    N_TRUE,
    T_BEGIN,
    T_END,
    T_EVENT,
    T_FORWARD,
)

__all__ = [
    "UNSET",
    "DEFAULT_FORALL_UNROLL_CAP",
    "GrowingPrefix",
    "EventIndex",
    "ValueColumn",
    "ComparisonIndex",
    "PlanStats",
    "PlanState",
]


Position = Union[int, float]

#: Sentinel marking an unbound logical-variable slot.
UNSET = object()

#: Default cap on explicit-domain ``Forall`` unrolling at lowering time:
#: a quantifier whose variables all carry explicit domains with at most
#: this many bindings in total (the cartesian product) lowers to a flat
#: specialized loop over precomputed binding tuples.
DEFAULT_FORALL_UNROLL_CAP = 8

_MISS = object()


class GrowingPrefix:
    """A stutter-extended state prefix supporting O(1) appends.

    Implements the position protocol of :class:`repro.semantics.trace.Trace`
    specialized to the paper's finite-computation convention
    (``loop_start == length``, period 1), without rebuilding the state list
    on every appended state the way ``Trace(list(states))`` would.
    """

    __slots__ = (
        "_states",
        "_universe",
        "_universe_seen",
        "_universe_built_to",
        "_column_store",
    )

    def __init__(self) -> None:
        self._states: List[State] = []
        self._universe: List[Any] = []
        # Companion set for O(1) membership on hashable values; the list
        # keeps the deterministic observation order Trace.value_universe has.
        self._universe_seen: set = set()
        # Universe maintenance is lazy (cursor catch-up on value_universe):
        # plans with no quantifier never pay for it.
        self._universe_built_to = 0
        # Lazy incremental column store (built on first `columns` access,
        # then caught up per append): the tail-window kernel's substrate.
        self._column_store: Optional[IncrementalColumnStore] = None

    def append(self, state: State) -> None:
        if not isinstance(state, State):
            raise TraceError(
                f"trace element {len(self._states)} is not a State: "
                f"{type(state).__name__}"
            )
        if not self._states:
            values = dict(state.values_map)
            values["__start__"] = True
            state = State(values, state.operations)
        elif "__start__" not in state:
            values = dict(state.values_map)
            values["__start__"] = False
            state = State(values, state.operations)
        self._states.append(state)

    # -- Trace position protocol --------------------------------------------

    @property
    def length(self) -> int:
        return len(self._states)

    @property
    def loop_start(self) -> int:
        return len(self._states)

    @property
    def period(self) -> int:
        return 1

    def states(self) -> Tuple[State, ...]:
        return tuple(self._states)

    def canonical(self, position: Position) -> int:
        if position == INFINITY:
            raise TraceError("cannot canonicalize the infinite position")
        pos = int(position)
        if pos < 1:
            raise TraceError(f"positions are 1-based, got {pos}")
        n = len(self._states)
        return pos if pos <= n else n

    def state_at(self, position: Position) -> State:
        return self._states[self.canonical(position) - 1]

    def suffix_representatives(self, start: Position, end: Position) -> List[int]:
        if start == INFINITY:
            raise TraceError("context cannot start at infinity")
        lo = int(start)
        if end != INFINITY:
            return list(range(lo, int(end) + 1))
        n = len(self._states)
        if lo >= n:
            return [lo]
        return list(range(lo, n + 1))

    def scan_bound(self, start: Position, end: Position) -> int:
        if end != INFINITY:
            return int(end)
        return max(int(start), len(self._states)) + 1

    def repeats_forever(self, position: Position) -> bool:
        if position == INFINITY:
            return True
        return int(position) >= len(self._states)

    def value_universe(self) -> Tuple[Any, ...]:
        states = self._states
        built = self._universe_built_to
        if built < len(states):
            universe = self._universe
            seen = self._universe_seen
            for index in range(built, len(states)):
                for value in states[index].observed_values():
                    try:
                        if value in seen:
                            continue
                        seen.add(value)
                    except TypeError:
                        if value in universe:  # unhashable: linear fallback
                            continue
                    universe.append(value)
            self._universe_built_to = len(states)
        return tuple(self._universe)

    @property
    def columns(self) -> IncrementalColumnStore:
        """The prefix's dictionary-encoded columns, caught up to its length.

        Built on first access (per-append absorption costs nothing until a
        vectorized plan state actually reads columns), then extended one
        state at a time — the substrate the tail-window
        :class:`~repro.compile.vector.TailKernel` extends its truth
        profiles over.
        """
        store = self._column_store
        if store is None:
            store = self._column_store = IncrementalColumnStore()
        states = self._states
        while store.length < len(states):
            store.absorb(states[store.length])
        return store

    def reset(self) -> None:
        """Forget every observed state (plan-state pool reuse).

        Containers are cleared *in place*, never replaced — the lowered
        closures and the tail kernel capture this exact object.
        """
        self._states.clear()
        self._universe.clear()
        self._universe_seen.clear()
        self._universe_built_to = 0
        self._column_store = None


class EventIndex:
    """Per-state truth profile and change positions of one state-formula event.

    ``profile[c]`` is the event formula's truth in concrete state ``c + 1``;
    ``stem`` holds the virtual positions ``k`` in ``[2, length]`` where the
    formula changes False→True between adjacent concrete states, and
    ``cycle`` the change positions in the first virtual copy of a lasso's
    repeating cycle (every later change beyond the concrete states is
    ``cycle[i] + t·period``).  Queries bisect instead of scanning.
    """

    __slots__ = ("_eval", "profile", "stem", "cycle", "built_to", "unusable")

    def __init__(self, state_eval: Callable[[State], bool]) -> None:
        self._eval = state_eval
        self.profile: List[bool] = []
        self.stem: List[int] = []
        self.cycle: List[int] = []
        self.built_to = 0
        self.unusable = False

    def _truth_range(self, trace, start: int, stop: int) -> List[bool]:
        """The event's truth in concrete states ``start..stop`` (1-based)."""
        return [bool(self._eval(trace.state_at(pos))) for pos in range(start, stop + 1)]

    def ensure(self, trace, growing: bool) -> bool:
        """Extend the profile to the trace's current length.

        Returns ``False`` (permanently) when profiling raised — the event
        formula errors on some state the lazy scan might never have
        visited, so the caller must fall back to the generic scan to keep
        error behaviour identical to the evaluator's.
        """
        if self.unusable:
            return False
        n = trace.length
        if self.built_to >= n:
            return True
        try:
            self.profile.extend(self._truth_range(trace, self.built_to + 1, n))
        except Exception:
            self.unusable = True
            return False
        if growing:
            # A stutter tail repeats the last state: no change positions
            # beyond the concrete states, and the stem extends in place.
            for pos in range(max(2, self.built_to + 1), n + 1):
                if self.profile[pos - 1] and not self.profile[pos - 2]:
                    self.stem.append(pos)
        else:
            self.stem, self.cycle = trace.change_positions(self.profile)
        self.built_to = n
        return True

    def first_change(self, start: int, bound: int, period: int) -> Optional[int]:
        """The least change position in ``[start, bound]``, or ``None``."""
        n = self.built_to
        best: Optional[int] = None
        if start <= n:
            idx = bisect_left(self.stem, start)
            if idx < len(self.stem):
                best = self.stem[idx]
        if best is None and self.cycle:
            anchor = max(start, n + 1)
            for base in self.cycle:
                candidate = base
                if candidate < anchor:
                    steps = (anchor - base + period - 1) // period
                    candidate = base + steps * period
                if best is None or candidate < best:
                    best = candidate
        if best is not None and best <= bound:
            return best
        return None

    def last_change(self, start: int, bound: int, period: int) -> Optional[int]:
        """The greatest change position in ``[start, bound]``, or ``None``."""
        n = self.built_to
        best: Optional[int] = None
        if self.cycle and bound >= n + 1:
            anchor = max(start, n + 1)
            for base in self.cycle:
                if base > bound:
                    continue
                candidate = base + ((bound - base) // period) * period
                if candidate >= anchor and (best is None or candidate > best):
                    best = candidate
        if best is not None:
            return best
        hi = min(bound, n)
        idx = bisect_right(self.stem, hi)
        if idx > 0 and self.stem[idx - 1] >= start:
            return self.stem[idx - 1]
        return None


class ValueColumn:
    """Per-position values of one state variable, shared by comparison atoms.

    Every ``x == c`` / ``x != c`` event over the same variable ``x`` derives
    its truth profile from one column of ``x``'s values, so a specification
    comparing ``x`` against many constants reads each state exactly once
    instead of once per constant.  The column extends incrementally with the
    trace, like the indexes built on top of it.
    """

    __slots__ = ("name", "values", "built_to")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[Any] = []
        self.built_to = 0

    def ensure(self, trace) -> None:
        """Extend the column to the trace's length (exceptions propagate:
        the owning index turns them into its permanent scan fallback).

        ``built_to`` advances one position at a time so a raising state
        leaves the column consistent for the other indexes sharing it.
        """
        n = trace.length
        name = self.name
        while self.built_to < n:
            value = trace.state_at(self.built_to + 1)[name]
            self.values.append(value)
            self.built_to += 1


class ComparisonIndex(EventIndex):
    """An endpoint index for ``x == c`` / ``x != c`` comparison atoms.

    Same bisectable stem/cycle change lists as :class:`EventIndex`, but the
    truth profile is derived from a shared :class:`ValueColumn` instead of
    re-evaluating the comparison predicate (state lookup, expression
    evaluation, operator dispatch) per state per constant.
    """

    __slots__ = ("_column", "_cmp_op", "_constant")

    def __init__(self, column: ValueColumn, cmp_op: str, constant: Any) -> None:
        super().__init__(state_eval=None)
        self._column = column
        self._cmp_op = cmp_op
        self._constant = constant

    def _truth_range(self, trace, start: int, stop: int) -> List[bool]:
        self._column.ensure(trace)
        values = self._column.values
        constant = self._constant
        if self._cmp_op == "==":
            return [bool(values[pos - 1] == constant) for pos in range(start, stop + 1)]
        return [bool(values[pos - 1] != constant) for pos in range(start, stop + 1)]


class PlanStats:
    """Work counters of one plan state (the monitor regression hooks).

    ``event_searches`` counts *actual* event searches — memo hits (stable
    or volatile) don't increment it, so a monitor whose appends only redo
    tail-dependent work shows a flat per-step search count.
    """

    __slots__ = ("dispatch_calls", "steps", "event_searches")

    def __init__(self) -> None:
        self.dispatch_calls = 0
        self.steps = 0
        self.event_searches = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dispatch_calls": self.dispatch_calls,
            "steps": self.steps,
            "event_searches": self.event_searches,
        }


class PlanState:
    """One compiled plan bound to one computation.

    Parameters
    ----------
    plan:
        The compiled plan.
    trace:
        A :class:`repro.semantics.trace.Trace` (static mode) or a
        :class:`GrowingPrefix` (incremental mode).
    domain:
        Explicit ``Forall`` quantification domains; variables not mentioned
        quantify over the trace's observed value universe, exactly as in
        the evaluator.
    incremental:
        Enable tail-dependence tracking and frontier aggregators for
        monitoring a growing prefix.
    vectorize:
        Enable the vectorized binding mode: pure state formulas (and
        ``[] / <>`` directly over them) evaluate as whole-column bitset
        operations through a :class:`~repro.compile.vector.BitsetKernel`
        (static :class:`~repro.semantics.trace.Trace`) or a window-extended
        :class:`~repro.compile.vector.TailKernel` (incremental
        :class:`GrowingPrefix`), and state-formula event indexes derive
        their change positions from bitset shifts.  Verdicts and error
        behaviour are identical either way — the kernels fall back per
        node whenever they cannot reproduce the per-position semantics
        bit-for-bit.
    forall_unroll_cap:
        ``Forall`` nodes whose variables all carry *explicit* domains with
        at most this many bindings in total unroll at lowering time into a
        flat specialized loop over the precomputed binding tuples (see
        :mod:`repro.compile.lower`); larger or default-universe domains
        keep the generic per-call quantifier path.  ``0`` disables
        unrolling.  Verdicts, short-circuit order and error behaviour are
        identical either way.
    """

    def __init__(
        self,
        plan,
        trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        incremental: bool = False,
        vectorize: bool = True,
        forall_unroll_cap: Optional[int] = None,
    ) -> None:
        self._plan = plan
        self._nodes = plan.nodes
        self._terms = plan.terms
        self._trace = trace
        self._incremental = incremental
        self._domain = {k: tuple(v) for k, v in (domain or {}).items()}
        self._default_domain: Optional[Tuple[Any, ...]] = None
        self._slots: List[Any] = [UNSET] * len(plan.slot_names)
        self._stable: Dict[Any, bool] = {}
        self._volatile: Dict[Any, bool] = {}
        self._agg: Dict[Any, int] = {}
        self._indexes: Dict[Any, EventIndex] = {}
        self._shared_indexes: Dict[Any, EventIndex] = {}
        self._columns: Dict[str, ValueColumn] = {}
        #: Event-search memo (static traces only): clauses of a multi-root
        #: plan that share an interval term — the mutex A1 family all
        #: searching the same ``x(i) <= cs(i)`` events — resolve each
        #: (event, context, direction) search once.
        self._event_memo: Dict[Any, Any] = {}
        #: Whole-term construction memo, keyed on the term's free-slot
        #: signature: ``[I]α`` and ``[I]β`` nodes sharing ``I`` construct
        #: each context once between them.  On a growing prefix this holds
        #: only tail-*independent* results (frozen forever); tail-dependent
        #: ones go to the volatile twin below, cleared per append.
        self._construct_memo: Dict[Any, Any] = {}
        self._volatile_events: Dict[Any, Any] = {}
        self._volatile_constructs: Dict[Any, Any] = {}
        self._tail: List[bool] = [False]
        if forall_unroll_cap is None:
            forall_unroll_cap = DEFAULT_FORALL_UNROLL_CAP
        self._forall_unroll_cap = max(0, int(forall_unroll_cap))
        self.stats = PlanStats()
        # The bitset kernels evaluate state formulas columnwise: whole-trace
        # profiles on a static Trace, window-extended profiles on a growing
        # prefix (the batched tail-window vectorization).
        self._kernel: Optional[Any] = None
        if vectorize:
            if not incremental and isinstance(trace, Trace):
                self._kernel = BitsetKernel(self, trace)
            elif incremental and isinstance(trace, GrowingPrefix):
                self._kernel = TailKernel(self, trace)
        # Closure-lowered dispatch: one bound closure per plan node, built
        # once per state (see repro.compile.lower).
        from .lower import bind_dispatch

        self._ops, self._vector_nids = bind_dispatch(self)

    # -- public API ----------------------------------------------------------

    @property
    def plan(self):
        return self._plan

    @property
    def trace(self):
        return self._trace

    @property
    def memo_size(self) -> int:
        return len(self._stable) + len(self._volatile)

    @property
    def index_count(self) -> int:
        """Distinct endpoint indexes built (aliased atoms share one)."""
        return len(self._shared_indexes)

    @property
    def vector_node_count(self) -> int:
        """Plan nodes bound to the vectorized (bitset) evaluation mode."""
        return len(self._vector_nids)

    def satisfies(self, env: Optional[Mapping[str, Any]] = None) -> bool:
        """``s |= α`` over the whole computation ``<1, ∞>``."""
        return self.holds(1, INFINITY, env)

    def holds(
        self, lo: Position, hi: Position, env: Optional[Mapping[str, Any]] = None
    ) -> bool:
        """``<lo, hi> |= α`` under ``env`` (names outside the plan ignored)."""
        return self.holds_node(self._plan.root, lo, hi, env)

    def holds_node(
        self,
        nid: int,
        lo: Position,
        hi: Position,
        env: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """``<lo, hi> |= node`` for any DAG node — multi-root plans evaluate
        each clause through its own root id over the shared memo tables."""
        if self._trace.length == 0:
            raise TraceError(
                "the plan state has no observed states yet; append at least "
                "one state before evaluating"
            )
        saved = list(self._slots)
        slot_of = self._plan.slot_of
        for name, value in (env or {}).items():
            slot = slot_of.get(name)
            if slot is not None:
                self._slots[slot] = value
        try:
            return self._holds(nid, int(lo), hi)
        finally:
            self._slots[:] = saved

    def construct_root_interval(self, env: Optional[Mapping[str, Any]] = None):
        """The witness interval of a top-level ``[I]α`` / ``*I`` root, if any."""
        node = self._nodes[self._plan.root]
        if node.op not in (N_INTERVAL, N_OCCURS):
            return None
        saved = list(self._slots)
        slot_of = self._plan.slot_of
        for name, value in (env or {}).items():
            slot = slot_of.get(name)
            if slot is not None:
                self._slots[slot] = value
        try:
            return self._construct(node.term, Interval(1, INFINITY), Direction.FORWARD)
        finally:
            self._slots[:] = saved

    def note_append(self, count: int = 1) -> None:
        """Absorb ``count`` appended states: drop only tail-dependent verdicts.

        One call absorbs an arbitrarily large appended window — the
        stable memo holds tail-*independent* entries only, so the
        volatile/aggregator state cleared here is exactly what any number
        of new states could change, and the tail kernel's profiles (which
        only ever extend) are untouched.  Batched appends therefore pay
        one memo sweep per batch, not per state.
        """
        self._volatile.clear()
        self._volatile_events.clear()
        self._volatile_constructs.clear()
        self._default_domain = None
        self.stats.steps += count

    def reset(self) -> None:
        """Return this state to its freshly-lowered condition (pool reuse).

        The lowered closure table captures the slot vector, memo dicts,
        stats object and kernel *by identity*, so everything is cleared in
        place — never replaced — and the closures (the expensive part of
        binding) survive across the streams that recycle this state.  A
        growing prefix is reset with it; a static trace is left alone
        (static states are not poolable — their closures capture the
        trace's positions).
        """
        self._default_domain = None
        self._slots[:] = [UNSET] * len(self._slots)
        self._stable.clear()
        self._volatile.clear()
        self._agg.clear()
        self._indexes.clear()
        self._shared_indexes.clear()
        self._columns.clear()
        self._event_memo.clear()
        self._construct_memo.clear()
        self._volatile_events.clear()
        self._volatile_constructs.clear()
        self._tail[:] = [False]
        self.stats.__init__()
        if isinstance(self._trace, GrowingPrefix):
            self._trace.reset()
        kernel = self._kernel
        if kernel is not None:
            kernel_reset = getattr(kernel, "reset", None)
            if kernel_reset is not None:
                kernel_reset()

    # -- the satisfaction relation ------------------------------------------

    def _normalize_ctx(self, lo: int, hi: Position) -> Tuple[int, Position]:
        trace = self._trace
        period = trace.period
        loop_start = trace.loop_start
        while lo - period >= loop_start:
            lo -= period
            if hi != INFINITY:
                hi -= period
        return lo, hi

    def _mark_tail(self) -> None:
        if self._incremental:
            self._tail[-1] = True

    def _env_view(self, node) -> Dict[str, Any]:
        env: Dict[str, Any] = {}
        slots = self._slots
        for name, slot in zip(node.free_names, node.free_slots):
            value = slots[slot]
            if value is not UNSET:
                env[name] = value
        return env

    def _holds(self, nid: int, lo: int, hi: Position) -> bool:
        self.stats.dispatch_calls += 1
        if nid in self._vector_nids:
            # Vectorized nodes answer from cached bitset profiles: no
            # context normalization (canonical positions and coverage are
            # invariant under whole-period shifts; incremental closures
            # normalize themselves) and no memo table (the profile *is*
            # the memo).  Incremental closures own their tail-marking, so
            # the caller's stable/volatile split stays sound.
            return self._ops[nid](lo, hi)
        incremental = self._incremental
        if incremental and lo > self._trace.length:
            self._tail[-1] = True
        lo, hi = self._normalize_ctx(lo, hi)
        node = self._nodes[nid]
        key: Optional[Tuple[Any, ...]] = None
        try:
            if node.free_slots:
                slots = self._slots
                envkey = tuple(slots[s] for s in node.free_slots)
            else:
                envkey = ()
            if node.is_state:
                key = (nid, self._trace.canonical(lo), envkey)
            else:
                key = (nid, lo, hi, envkey)
            hit = self._stable.get(key, _MISS)
            if hit is not _MISS:
                return hit
            if incremental:
                hit = self._volatile.get(key, _MISS)
                if hit is not _MISS:
                    self._tail[-1] = True
                    return hit
        except TypeError:
            key = None
        if not incremental:
            value = self._ops[nid](lo, hi)
            if key is not None:
                self._stable[key] = value
            return value
        self._tail.append(False)
        try:
            value = self._ops[nid](lo, hi)
        finally:
            tail = self._tail.pop()
            if tail:
                self._tail[-1] = True
        if key is not None:
            (self._volatile if tail else self._stable)[key] = value
        return value

    def _junction(self, a: int, b: int, lo: int, hi: Position, deciding: bool) -> bool:
        """``∧`` / ``∨`` with order-insensitive error behaviour.

        Normalization sorts commutative operands canonically, which can
        move an erroring operand ahead of the one the evaluator's original
        left-to-right short-circuit would have decided on.  An operand
        exception is therefore *deferred*: it surfaces only when no other
        operand decides the verdict (``deciding`` = the absorbing value:
        True for ``∨``, False for ``∧``).  Whenever the interpreting
        evaluator produces a verdict, this produces the same verdict; only
        evaluator-error cases can become more defined.
        """
        error: Optional[Exception] = None
        for child in (a, b):
            try:
                if self._holds(child, lo, hi) is deciding:
                    return deciding
            except Exception as exc:  # deferred: may be absorbed by the other side
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return not deciding

    def _holds_tracked(self, nid: int, lo: int, hi: Position) -> Tuple[bool, bool]:
        """Evaluate a child and report whether its verdict is tail-dependent."""
        self._tail.append(False)
        try:
            value = self._holds(nid, lo, hi)
        finally:
            tail = self._tail.pop()
            if tail:
                self._tail[-1] = True
        return value, tail

    # -- [] / <> -------------------------------------------------------------

    def _holds_suffixes(self, node, lo: int, hi: Position, want: bool) -> bool:
        if self._incremental and hi == INFINITY:
            return self._holds_suffixes_incremental(node, lo, want)
        child = node.a
        if want:
            for k in self._trace.suffix_representatives(lo, hi):
                if self._holds(child, k, hi):
                    return True
            if hi == INFINITY:
                self._mark_tail()
            return False
        for k in self._trace.suffix_representatives(lo, hi):
            if not self._holds(child, k, hi):
                return False
        if hi == INFINITY:
            self._mark_tail()
        return True

    def _holds_suffixes_incremental(self, node, lo: int, want: bool) -> bool:
        """Resumable frontier for ``[] / <>`` on the growing infinite context.

        Representatives whose child verdict was tail-*independent* (and not
        the deciding one) never need re-examination: the frontier records
        the last such position, so each appended state re-checks only the
        pending tail-dependent suffix.  A deciding verdict (a False child
        under ``[]``, a True child under ``<>``) short-circuits exactly like
        the evaluator's ``all()`` / ``any()``.
        """
        child = node.a
        n = self._trace.length
        agg_key: Optional[Tuple[Any, ...]] = None
        frontier = lo - 1
        try:
            envkey = tuple(self._slots[s] for s in node.free_slots)
            agg_key = (node.id, lo, envkey)
            frontier = self._agg.get(agg_key, lo - 1)
        except TypeError:
            agg_key = None
        first_tail: Optional[int] = None
        for k in range(max(frontier + 1, lo), n + 1):
            value, tail = self._holds_tracked(child, k, INFINITY)
            if value is want:
                return want
            if tail and first_tail is None:
                first_tail = k
        if agg_key is not None:
            self._agg[agg_key] = n if first_tail is None else first_tail - 1
        self._mark_tail()  # an undecided verdict depends on future states
        return not want

    # -- quantification and binding -----------------------------------------

    def _default_universe(self) -> Tuple[Any, ...]:
        if self._incremental:
            # The observed value universe can still grow with the prefix.
            self._mark_tail()
            return self._trace.value_universe()
        if self._default_domain is None:
            self._default_domain = self._trace.value_universe()
        return self._default_domain

    def _domain_for(self, name: str) -> Tuple[Any, ...]:
        if name in self._domain:
            return self._domain[name]
        return self._default_universe()

    def _holds_forall(self, node, lo: int, hi: Position) -> bool:
        names = node.var_names
        var_slots = node.var_slots
        slots = self._slots
        count = len(names)

        def recurse(index: int) -> bool:
            if index == count:
                return self._holds(node.a, lo, hi)
            slot = var_slots[index]
            saved = slots[slot]
            try:
                for value in self._domain_for(names[index]):
                    slots[slot] = value
                    if not recurse(index + 1):
                        return False
                return True
            finally:
                slots[slot] = saved

        return recurse(0)

    def _holds_bindnext(self, node, lo: int, hi: Position) -> bool:
        found = self._find_event(node.event, Interval(lo, hi), Direction.FORWARD)
        if found is BOTTOM:
            return True
        if self._incremental and found.hi > self._trace.length:
            self._tail[-1] = True
        call_state = self._trace.state_at(found.hi)
        record = call_state.operation(node.operation)
        args = record.args
        if len(args) < len(node.var_names):
            raise EvaluationError(
                f"bind-next over operation {node.operation!r} binds "
                f"{len(node.var_names)} variable(s) "
                f"({', '.join(node.var_names)}) but the call at position "
                f"{found.hi} supplies only {len(args)} argument(s)"
            )
        slots = self._slots
        saved = [slots[s] for s in node.var_slots]
        try:
            for slot, value in zip(node.var_slots, args):
                slots[slot] = value
            return self._holds(node.a, lo, hi)
        finally:
            for slot, value in zip(node.var_slots, saved):
                slots[slot] = value

    # -- the construction function F ----------------------------------------

    def _construct_interval(self, tid: int, lo: int, hi: Position):
        """``F(term, <lo, hi>)`` with whole-term memoization.

        This is the entry the ``[I]α`` / ``*I`` closures call: the result
        is a pure function of the term, its free-slot bindings and the
        context, so interval-formula nodes that share a term — different
        clause bodies over the same skeleton — construct each context once.

        On a growing prefix the memo is *tail-aware*: a construction whose
        event searches never looked past the last concrete state is frozen
        in the stable memo forever; one that did goes to a volatile memo
        cleared per append, so each appended state redoes only the pending
        tail-dependent constructions.
        """
        term = self._terms[tid]
        free = term.free_slots
        if free:
            slots = self._slots
            key = (tid, lo, hi) + tuple(slots[s] for s in free)
        else:
            key = (tid, lo, hi)
        incremental = self._incremental
        try:
            hit = self._construct_memo.get(key, _MISS)
        except TypeError:
            key, hit = None, _MISS
        if hit is not _MISS:
            return hit
        if incremental and key is not None:
            hit = self._volatile_constructs.get(key, _MISS)
            if hit is not _MISS:
                self._tail[-1] = True
                return hit
        if not incremental:
            found = self._construct(tid, Interval(lo, hi), Direction.FORWARD)
            if key is not None:
                self._construct_memo[key] = found
            return found
        self._tail.append(False)
        try:
            found = self._construct(tid, Interval(lo, hi), Direction.FORWARD)
        finally:
            tail = self._tail.pop()
            if tail:
                self._tail[-1] = True
        if key is not None:
            (self._volatile_constructs if tail else self._construct_memo)[key] = found
        return found

    def _construct(self, tid: int, context: Optional[Interval], direction: str):
        if context is BOTTOM:
            return BOTTOM
        term = self._terms[tid]
        op = term.op
        if op == T_EVENT:
            return self._find_event(term.event, context, direction)
        if op == T_BEGIN:
            inner = self._construct(term.a, context, direction)
            if inner is BOTTOM:
                return BOTTOM
            return Interval(inner.first, inner.first)
        if op == T_END:
            inner = self._construct(term.a, context, direction)
            if inner is BOTTOM or inner.is_infinite:
                return BOTTOM
            return Interval(int(inner.last), int(inner.last))
        if op == T_FORWARD:
            return self._construct_forward(term, context, direction)
        return self._construct_backward(term, context, direction)

    def _forward_from_left(self, left_tid: int, context: Interval, direction: str):
        # ``I =>``: from the end of the next I to the end of the context.
        inner = self._construct(left_tid, context, direction)
        if inner is BOTTOM or inner.is_infinite:
            return BOTTOM
        return Interval(int(inner.last), context.hi)

    def _forward_to_right(self, right_tid: int, context: Interval):
        # ``=> J``: from the start of the context to the end of the first J.
        inner = self._construct(right_tid, context, Direction.FORWARD)
        if inner is BOTTOM or inner.is_infinite:
            return BOTTOM
        return Interval(context.lo, int(inner.last))

    def _construct_forward(self, term, context: Interval, direction: str):
        left, right = term.a, term.b
        if left is None and right is None:
            return context
        if left is not None and right is None:
            return self._forward_from_left(left, context, direction)
        if left is None:
            return self._forward_to_right(right, context)
        prefix = self._forward_from_left(left, context, direction)
        if prefix is BOTTOM:
            return BOTTOM
        return self._forward_to_right(right, prefix)

    def _backward_from_left(self, left_tid: int, context: Interval):
        # ``I <=``: from the end of the most recent I to the end of the context.
        inner = self._construct(left_tid, context, Direction.BACKWARD)
        if inner is BOTTOM or inner.is_infinite:
            return BOTTOM
        return Interval(int(inner.last), context.hi)

    def _backward_to_right(self, right_tid: int, context: Interval, direction: str):
        # ``<= J``: like ``=> J`` except the inner direction follows d.
        inner = self._construct(right_tid, context, direction)
        if inner is BOTTOM or inner.is_infinite:
            return BOTTOM
        return Interval(context.lo, int(inner.last))

    def _construct_backward(self, term, context: Interval, direction: str):
        left, right = term.a, term.b
        if left is None and right is None:
            return context
        if left is not None and right is None:
            return self._backward_from_left(left, context)
        if left is None:
            return self._backward_to_right(right, context, direction)
        suffix = self._backward_to_right(right, context, direction)
        if suffix is BOTTOM:
            return BOTTOM
        return self._backward_from_left(left, suffix)

    # -- event search --------------------------------------------------------

    def _state_truth(self, nid: int, state: State, env: Mapping[str, Any]) -> bool:
        node = self._nodes[nid]
        op = node.op
        if op == N_ATOM:
            return node.predicate.holds(state, env)
        if op == N_TRUE:
            return True
        if op == N_FALSE:
            return False
        if op == N_NOT:
            return not self._state_truth(node.a, state, env)
        if op == N_AND:
            return self._state_junction(node, state, env, deciding=False)
        if op == N_OR:
            return self._state_junction(node, state, env, deciding=True)
        if op == N_IMPLIES:
            return (not self._state_truth(node.a, state, env)) or self._state_truth(
                node.b, state, env
            )
        if op == N_IFF:
            return self._state_truth(node.a, state, env) == self._state_truth(
                node.b, state, env
            )
        raise EvaluationError(f"not a state formula node: {node!r}")

    def _state_junction(
        self, node, state: State, env: Mapping[str, Any], deciding: bool
    ) -> bool:
        # Same deferred-error rule as _junction, on the state-level evaluator.
        error: Optional[Exception] = None
        for child in (node.a, node.b):
            try:
                if self._state_truth(child, state, env) is deciding:
                    return deciding
            except Exception as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return not deciding

    def _comparison_parts(self, node) -> Optional[Tuple[str, str, Any]]:
        """``(variable, op, constant)`` for an indexable comparison atom.

        Recognizes ``x == c`` / ``x != c`` (either orientation) where one
        side is a state variable and the other a literal constant or a
        *bound* logical variable; anything else falls back to the generic
        event index.
        """
        if node.op != N_ATOM:
            return None
        predicate = node.predicate
        if not isinstance(predicate, Cmp) or predicate.op not in ("==", "!="):
            return None
        left, right = predicate.left, predicate.right
        if isinstance(left, Var):
            variable, other = left, right
        elif isinstance(right, Var):
            variable, other = right, left
        else:
            return None
        if isinstance(other, Const):
            return variable.name, predicate.op, other.value
        if isinstance(other, LogicalVar):
            slot = self._plan.slot_of.get(other.name)
            if slot is not None:
                value = self._slots[slot]
                if value is not UNSET:
                    return variable.name, predicate.op, value
        return None

    def _index_key(self, node, envkey: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The event-index cache key — *semantic* where cheaply possible.

        Distinct atom nodes that ground to the same predicate under the
        current bindings share one index: ``at Enq(?a)`` with ``a = v`` and
        ``at Enq(?b)`` with ``b = v`` profile identically, as do ``x == ?a``
        and ``x == ?b`` — the pattern of every quantified specification
        clause family.  Non-atom events fall back to structural identity
        (hash-consing already unifies those).
        """
        if node.op == N_ATOM:
            parts = self._comparison_parts(node)
            if parts is not None:
                return ("cmp",) + parts
            predicate = node.predicate
            if (
                isinstance(predicate, (OpAt, OpIn, OpAfter))
                and predicate.args
                and not any(arg.state_vars() for arg in predicate.args)
            ):
                env = self._env_view(node)
                try:
                    values = tuple(arg.evaluate({}, env) for arg in predicate.args)
                except Exception:
                    return (node.id, envkey)
                return ("op", predicate.PHASES, predicate.operation, values)
        return (node.id, envkey)

    def _kernel_index(self, event_nid: int, node) -> Optional[EventIndex]:
        """An endpoint index whose change positions come from the bitset
        kernel: one profile computation and one shift-and-mask instead of a
        per-state truth scan.  ``None`` when the kernel is absent
        (``vectorize=False``) or declines the event formula.  Static traces
        only — on a growing prefix, kernel-supported events are answered
        straight off the tail profile by :meth:`_find_event_bits`, with no
        index object at all."""
        kernel = self._kernel
        if kernel is None or self._incremental or not kernel.supports(event_nid):
            return None
        bits = kernel.profile(node)
        if bits is None:
            return None
        index = EventIndex(state_eval=None)
        index.stem, index.cycle = changes_from_bits(bits, self._trace)
        # Fully built for the static trace: ensure() is a no-op from here.
        index.built_to = self._trace.length
        return index

    def _index_for(self, event_nid: int, node) -> Optional[EventIndex]:
        # Fast path: structural (node, bindings) key, hit on every search
        # after the first.  On a miss the semantic key decides whether an
        # equivalent index already exists before building a new one.
        try:
            envkey = tuple(self._slots[s] for s in node.free_slots)
            fast_key = (event_nid, envkey)
            index = self._indexes.get(fast_key)
        except TypeError:
            return None
        if index is None:
            try:
                shared_key = self._index_key(node, envkey)
                index = self._shared_indexes.get(shared_key)
            except TypeError:
                return None
            if index is None:
                index = self._kernel_index(event_nid, node)
            if index is None:
                parts = self._comparison_parts(node)
                if parts is not None:
                    variable, cmp_op, constant = parts
                    column = self._columns.get(variable)
                    if column is None:
                        column = ValueColumn(variable)
                        self._columns[variable] = column
                    index = ComparisonIndex(column, cmp_op, constant)
                else:
                    env = self._env_view(node)
                    index = EventIndex(
                        lambda state: self._state_truth(event_nid, state, env)
                    )
            self._shared_indexes[shared_key] = index
            self._indexes[fast_key] = index
        if not index.ensure(self._trace, self._incremental):
            return None
        return index

    def _find_event(
        self, event_nid: int, context: Optional[Interval], direction: str
    ):
        """The changeset search of Chapter 3 (first/last False→True event).

        On a static trace the search result is a pure function of the event
        node, its free-slot bindings, the context and the direction, so it
        memoizes — sharing searches across the clauses of a multi-root plan
        and across repeated constructions of a shared interval term.

        On a growing prefix the memo splits by tail-dependence: a search
        decided entirely within the concrete states (a forward event found
        at a concrete change, a finite window that closed) freezes in the
        stable memo, while a search that looked past the last state — an
        event not found *yet*, any backward search over the infinite
        context — parks in a volatile memo cleared per append.  Re-checking
        a monitored property after one appended state then redoes only the
        searches the new state could change.
        """
        if context is BOTTOM:
            return BOTTOM
        i, j = context.lo, context.hi
        node = self._nodes[event_nid]
        if self._incremental and node.is_state:
            kernel = self._kernel
            if kernel is not None and kernel.supports(event_nid):
                bits = kernel.profile(node)
                if bits is not None:
                    # Growing prefix, vectorizable event: the bit search is
                    # cheaper than this memo's key build, so answer directly
                    # (tail-marking happens inside, straight onto the
                    # caller's frame).  A dead profile falls through to the
                    # memoized exact search.
                    self.stats.event_searches += 1
                    return self._find_event_bits(
                        bits, i, j, self._trace.scan_bound(i, j), direction
                    )
        key: Optional[Tuple[Any, ...]] = None
        try:
            envkey = tuple(self._slots[s] for s in node.free_slots)
            key = (event_nid, i, j, direction, envkey)
        except TypeError:
            key = None
        incremental = self._incremental
        if key is not None:
            hit = self._event_memo.get(key, _MISS)
            if hit is not _MISS:
                return hit
            if incremental:
                hit = self._volatile_events.get(key, _MISS)
                if hit is not _MISS:
                    self._tail[-1] = True
                    return hit
        if not incremental:
            found = self._find_event_uncached(event_nid, node, i, j, direction)
            if key is not None:
                self._event_memo[key] = found
            return found
        self._tail.append(False)
        try:
            found = self._find_event_uncached(event_nid, node, i, j, direction)
        finally:
            tail = self._tail.pop()
            if tail:
                self._tail[-1] = True
        if key is not None:
            (self._volatile_events if tail else self._event_memo)[key] = found
        return found

    def _find_event_uncached(
        self, event_nid: int, node, i: int, j: Position, direction: str
    ):
        self.stats.event_searches += 1
        trace = self._trace
        bound = trace.scan_bound(i, j)
        if node.is_state:
            # Growing-prefix vectorizable events answered directly in
            # :meth:`_find_event` (the tail-profile bit search); reaching
            # here means a static trace, an unsupported shape, or a dead
            # profile — the index/scan paths decide.
            index = self._index_for(event_nid, node)
            if index is not None:
                return self._find_event_indexed(index, i, j, bound, direction)
        return self._find_event_scan(event_nid, i, j, bound, direction)

    def _find_event_bits(
        self, bits: int, i: int, j: Position, bound: int, direction: str
    ):
        """The changeset search as bit arithmetic over a tail profile.

        ``bits`` covers the concrete positions ``1..length`` of a growing
        prefix; its stutter tail repeats the last state, so no change
        position exists past the concrete states (in particular the
        backward search's recurs-forever ⊥ case cannot arise) and the
        tail-marking mirrors :meth:`_find_event_indexed` on a growing
        index exactly.
        """
        n = self._trace.length
        # bit k-1 set iff positions (k-1, k) are a False→True change;
        # `| 1` excludes k = 1 (no predecessor).
        chg = bits & ~((bits << 1) | 1)
        lo = i + 1
        hi = bound if bound < n else n
        if hi < lo:
            window = 0
        else:
            window = (chg >> (lo - 1)) & ((1 << (hi - lo + 1)) - 1)
        if direction == Direction.FORWARD:
            if not window:
                if bound > n:
                    self._mark_tail()  # no event yet; one may still appear
                return BOTTOM
            k = lo + ((window & -window).bit_length() - 1)
            return Interval(k - 1, k)
        if j == INFINITY:
            # The changeset max can move (or appear) as the prefix grows.
            self._mark_tail()
        elif bound > n:
            self._mark_tail()
        if not window:
            return BOTTOM
        k = lo + window.bit_length() - 1
        return Interval(k - 1, k)

    def _find_event_indexed(
        self, index: EventIndex, i: int, j: Position, bound: int, direction: str
    ):
        trace = self._trace
        n = trace.length
        period = trace.period
        if direction == Direction.FORWARD:
            k = index.first_change(i + 1, bound, period)
            if k is None:
                if bound > n:
                    self._mark_tail()  # no event yet; one may still appear
                return BOTTOM
            if k > n:
                self._mark_tail()
            return Interval(k - 1, k)
        if j == INFINITY:
            # The maximum of the changeset can move (or become ⊥) as the
            # computation grows, so backward results over infinite contexts
            # are never frozen.
            self._mark_tail()
            threshold = trace.loop_start + 1
            if bound >= threshold and index.first_change(
                max(i + 1, threshold), bound, period
            ) is not None:
                # An event whose change pair lies in the repeating cycle
                # recurs infinitely often: the changeset max is ⊥.
                return BOTTOM
            k = index.last_change(i + 1, min(bound, threshold - 1), period)
        else:
            if bound > n:
                self._mark_tail()
            k = index.last_change(i + 1, bound, period)
        if k is None:
            return BOTTOM
        return Interval(k - 1, k)

    def _find_event_scan(
        self, event_nid: int, i: int, j: Position, bound: int, direction: str
    ):
        trace = self._trace
        found: List[int] = []
        for k in range(i + 1, bound + 1):
            if self._holds(event_nid, k - 1, j):
                continue
            if self._holds(event_nid, k, j):
                if direction == Direction.FORWARD:
                    return Interval(k - 1, k)
                found.append(k)
        if direction == Direction.FORWARD:
            if self._incremental and bound > trace.length:
                self._tail[-1] = True
            return BOTTOM
        if j == INFINITY:
            self._mark_tail()
            if not found:
                return BOTTOM
            for k in found:
                if trace.repeats_forever(k - 1):
                    return BOTTOM
        elif not found:
            if self._incremental and bound > trace.length:
                self._tail[-1] = True
            return BOTTOM
        k = max(found)
        return Interval(k - 1, k)
