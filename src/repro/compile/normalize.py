"""Formula normalization passes (the compiler front end).

Four semantics-preserving passes run, in order, before lowering:

1. **star elimination** — the Appendix A reduction
   (:func:`repro.semantics.reduction.eliminate_stars`) is applied once,
   up front, instead of on the fly at every starred node the evaluator
   meets; compiled plans never see a ``*`` interval-term modifier;
2. **negation normal form** — negations are pushed through the boolean
   connectives and the ``[] / <>`` duals (``¬[]α ≡ <>¬α``,
   ``¬<>α ≡ []¬α``) and stop at atoms, interval formulas, ``*I``
   eventualities, quantifiers and bind-next nodes, whose negations are
   not expressible positively in the Chapter 3 grammar;
3. **constant folding** — boolean identities (``α ∧ True ≡ α``,
   ``False ⊃ α ≡ True``, ``[]True ≡ True``, ...) computed with smart
   constructors during the NNF rewrite.  Only constant subtrees are ever
   dropped, mirroring the evaluator's own short-circuit order, so folding
   cannot change which states a total evaluation reads;
4. **flattening and canonical ordering** — nested ``forall`` quantifiers
   over disjoint variables merge into one node, and the operand lists of
   the commutative connectives (``∧``, ``∨``, ``≡``) are flattened and
   sorted under a deterministic structural key, so that ``p ∧ (q ∧ p)``
   and ``(p ∧ q) ∧ p`` hash-cons to the same subformula DAG.

The output is an ordinary :class:`repro.syntax.formulas.Formula`, so the
equivalence "``normalize(α)`` evaluates exactly like ``α``" is directly
testable against the Chapter 3 evaluator (see
``tests/test_compile_normalize.py``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from ..semantics.reduction import eliminate_stars
from .alpha import alpha_canonical  # noqa: F401  (normalization entry point)

__all__ = ["alpha_canonical", "normalize", "structural_key"]


def structural_key(formula: Formula) -> str:
    """A deterministic total order on formulas, used for canonical sorting.

    The dataclass ``repr`` is fully structural (class names plus every
    field), so distinct formulas get distinct keys and the sort is stable
    across processes.
    """
    return repr(formula)


def _is_true(f: Formula) -> bool:
    return isinstance(f, TrueFormula)


def _is_false(f: Formula) -> bool:
    return isinstance(f, FalseFormula)


# -- smart constructors (constant folding + canonical ordering) -------------


def _flatten(cls, formula: Formula, out: List[Formula]) -> None:
    if isinstance(formula, cls):
        _flatten(cls, formula.left, out)
        _flatten(cls, formula.right, out)
    else:
        out.append(formula)


def _make_and(left: Formula, right: Formula) -> Formula:
    operands: List[Formula] = []
    _flatten(And, left, operands)
    _flatten(And, right, operands)
    if any(_is_false(f) for f in operands):
        return FalseFormula()
    operands = [f for f in operands if not _is_true(f)]
    if not operands:
        return TrueFormula()
    operands.sort(key=structural_key)
    result = operands[0]
    for f in operands[1:]:
        result = And(result, f)
    return result


def _make_or(left: Formula, right: Formula) -> Formula:
    operands: List[Formula] = []
    _flatten(Or, left, operands)
    _flatten(Or, right, operands)
    if any(_is_true(f) for f in operands):
        return TrueFormula()
    operands = [f for f in operands if not _is_false(f)]
    if not operands:
        return FalseFormula()
    operands.sort(key=structural_key)
    result = operands[0]
    for f in operands[1:]:
        result = Or(result, f)
    return result


def _make_not(operand: Formula) -> Formula:
    if _is_true(operand):
        return FalseFormula()
    if _is_false(operand):
        return TrueFormula()
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def _make_iff(left: Formula, right: Formula) -> Formula:
    if _is_true(left):
        return right
    if _is_true(right):
        return left
    if _is_false(left):
        return _make_not(right)
    if _is_false(right):
        return _make_not(left)
    if structural_key(left) > structural_key(right):
        left, right = right, left
    return Iff(left, right)


def _make_always(operand: Formula) -> Formula:
    if _is_true(operand) or _is_false(operand):
        return operand
    return Always(operand)


def _make_eventually(operand: Formula) -> Formula:
    if _is_true(operand) or _is_false(operand):
        return operand
    return Eventually(operand)


def _make_forall(variables: Tuple[str, ...], body: Formula) -> Formula:
    if _is_true(body):
        # ∀x.True is True on every (even empty) domain.
        return TrueFormula()
    if isinstance(body, Forall) and not (set(variables) & set(body.variables)):
        # Flatten nested quantifiers over disjoint variables; the evaluator
        # binds variables one at a time, so the merged node is equivalent.
        return Forall(tuple(variables) + tuple(body.variables), body.body)
    return Forall(tuple(variables), body)


# -- negation normal form ---------------------------------------------------


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, TrueFormula):
        return FalseFormula() if negated else formula
    if isinstance(formula, FalseFormula):
        return TrueFormula() if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated)
    if isinstance(formula, And):
        if negated:  # ¬(α ∧ β) ≡ ¬α ∨ ¬β
            return _make_or(_nnf(formula.left, True), _nnf(formula.right, True))
        return _make_and(_nnf(formula.left, False), _nnf(formula.right, False))
    if isinstance(formula, Or):
        if negated:
            return _make_and(_nnf(formula.left, True), _nnf(formula.right, True))
        return _make_or(_nnf(formula.left, False), _nnf(formula.right, False))
    if isinstance(formula, Implies):
        if negated:  # ¬(α ⊃ β) ≡ α ∧ ¬β
            return _make_and(_nnf(formula.left, False), _nnf(formula.right, True))
        # α ⊃ β ≡ ¬α ∨ β
        return _make_or(_nnf(formula.left, True), _nnf(formula.right, False))
    if isinstance(formula, Iff):
        # ¬(α ≡ β) ≡ (α ≡ ¬β); both operands normalize positively.
        return _make_iff(
            _nnf(formula.left, False), _nnf(formula.right, negated)
        )
    if isinstance(formula, Always):
        if negated:  # ¬[]α ≡ <>¬α
            return _make_eventually(_nnf(formula.operand, True))
        return _make_always(_nnf(formula.operand, False))
    if isinstance(formula, Eventually):
        if negated:
            return _make_always(_nnf(formula.operand, True))
        return _make_eventually(_nnf(formula.operand, False))
    # Negation is not pushed through atoms, interval formulas, interval
    # eventualities, quantifiers or bind-next; normalize the node positively
    # and re-wrap.
    positive = _positive(formula)
    return _make_not(positive) if negated else positive


def _positive(formula: Formula) -> Formula:
    if isinstance(formula, (Atom, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, IntervalFormula):
        # Interval terms are star-free here and are kept syntactically
        # intact — event formulas inside them are lowered *un*-normalized,
        # deliberately: the constructed interval (and therefore the truth
        # of the whole formula on error-sensitive inputs) must come from
        # exactly the event searches the evaluator performs.
        return IntervalFormula(formula.term, _nnf(formula.body, False))
    if isinstance(formula, Occurs):
        return formula
    if isinstance(formula, Forall):
        return _make_forall(formula.variables, _nnf(formula.body, False))
    if isinstance(formula, NextBinding):
        return NextBinding(
            formula.operation, formula.variables, _nnf(formula.body, False)
        )
    return formula


def normalize(formula: Formula) -> Formula:
    """The composed pipeline: stars out, NNF, folding, canonical ordering."""
    return _nnf(eliminate_stars(formula), False)
