"""The session-level compiled-plan cache.

Plans are trace-independent, so one compilation serves every trace, every
``check_many`` batch and every monitoring session that asks the same
question.  The cache keys on the **formula digest plus domain shape** (the
names carrying explicit quantification domains — the request-level
knowledge a session hands out with a plan) and keeps hit/miss/compile-time
counters that the ``compiled`` engine reports on every
:class:`~repro.api.result.CheckResult`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..syntax.formulas import Formula
from .plan import CompiledPlan, formula_digest

__all__ = ["PlanCache"]


class PlanCache:
    """Digest-keyed cache of :class:`~repro.compile.plan.CompiledPlan`."""

    def __init__(self) -> None:
        self._plans: Dict[str, CompiledPlan] = {}
        self.hits = 0
        self.misses = 0
        self.compile_time_s = 0.0

    def __len__(self) -> int:
        return len(self._plans)

    def get(
        self,
        formula: Formula,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Tuple[CompiledPlan, bool]:
        """The cached plan for ``formula`` (compiling on miss).

        Returns ``(plan, from_cache)``.
        """
        shape = tuple(sorted(domain)) if domain else ()
        digest = formula_digest(formula, domain_shape=shape)
        plan = self._plans.get(digest)
        if plan is not None:
            self.hits += 1
            return plan, True
        self.misses += 1
        started = time.perf_counter()
        plan = CompiledPlan(formula, digest=digest)
        self.compile_time_s += time.perf_counter() - started
        self._plans[digest] = plan
        return plan, False

    def clear(self) -> None:
        self._plans.clear()

    def statistics(self) -> Dict[str, Any]:
        """Counters reported on compiled-engine results."""
        return {
            "plan_cache_size": len(self._plans),
            "plan_cache_hits": self.hits,
            "plan_cache_misses": self.misses,
            "plan_compile_time_s": self.compile_time_s,
        }
