"""The session-level compiled-plan cache.

Plans are trace-independent, so one compilation serves every trace, every
``check_many`` batch and every monitoring session that asks the same
question.  The cache holds both single-formula :class:`CompiledPlan`\\ s and
multi-root :class:`~repro.compile.specplan.SpecPlan`\\ s in one **bounded
LRU**: entries key on the content digest (formula or spec digest plus the
names carrying explicit quantification domains), lookups refresh recency,
and inserts beyond ``max_plans`` evict the least recently used plan —
long-lived sessions churning through unbounded formula streams stay
bounded without manual ``clear_caches`` calls.  Hit/miss/eviction and
compile-time counters are reported by the ``compiled`` engine on every
:class:`~repro.api.result.CheckResult`; :meth:`PlanCache.clear` drops the
plans *and* resets the counters, so cache statistics always describe the
current cache generation.

Plans are also **digest-addressed on disk**: give the cache a directory
(``disk_path=...``, or the ``REPRO_PLAN_CACHE`` environment variable, which
worker processes inherit) and every compiled plan is pickled to
``<dir>/<digest>.plan`` with an atomic rename, while in-memory misses try
the directory before compiling.  This is what lets ``check_many
--processes`` workers and :mod:`repro.serve` shard workers start *warm*:
the parent (or a previous run) compiles each plan once and every worker
loads it instead of recompiling per process.  The store is best-effort —
corrupt, truncated or version-skewed files read as misses and are
rewritten — and the pickled payload is format-stamped so plan-layout
changes invalidate old entries instead of resurrecting them.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..syntax.formulas import Formula
from .plan import CompiledPlan, formula_digest, legacy_formula_digest
from .specplan import SpecPlan, legacy_spec_digest, spec_digest

__all__ = ["PlanCache", "DiskPlanStore", "DEFAULT_MAX_PLANS", "PLAN_FORMAT"]

#: Environment variable naming the default on-disk plan-cache directory.
#: Inherited by worker processes, so setting it once warms every fan-out.
PLAN_CACHE_ENV = "REPRO_PLAN_CACHE"

#: Bump when the pickled plan layout changes incompatibly — stale files
#: then read as misses (and are overwritten) instead of loading garbage.
PLAN_FORMAT = 1


class DiskPlanStore:
    """A digest-addressed directory of pickled plans.

    Writes are atomic (temp file + ``os.replace``) so concurrent workers
    racing on the same digest each leave a complete file; reads treat any
    unreadable, truncated or format-skewed entry as a miss.  All I/O
    errors are swallowed — a broken cache directory degrades to cold
    compilation, never to a failed check.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)

    def _file(self, digest: str) -> str:
        return os.path.join(self.path, f"{digest}.plan")

    def load(self, digest: str) -> Optional[Any]:
        try:
            with open(self._file(digest), "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, TypeError):
            return None
        if not isinstance(payload, tuple) or len(payload) != 2:
            return None
        fmt, plan = payload
        if fmt != PLAN_FORMAT:
            return None
        return plan

    def store(self, digest: str, plan: Any) -> bool:
        target = self._file(digest)
        tmp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump((PLAN_FORMAT, plan), handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except (OSError, pickle.PickleError, TypeError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.path) if name.endswith(".plan"))
        except OSError:
            return 0


#: Default LRU capacity: generous for any hand-written campaign, small
#: enough that a fuzzing session streaming random formulas stays bounded.
DEFAULT_MAX_PLANS = 256


class PlanCache:
    """Digest-keyed bounded LRU of compiled plans (single- and multi-root).

    Parameters
    ----------
    max_plans:
        LRU capacity; inserting beyond it evicts the least recently used
        entry.  ``None`` disables eviction (the pre-LRU behaviour).
    on_evict:
        Called with each evicted digest — the session uses this to drop the
        plan states bound to an evicted plan.
    disk_path:
        Directory of the digest-addressed persistent store.  Defaults to
        the ``REPRO_PLAN_CACHE`` environment variable (fresh worker
        processes inherit it, so fan-outs start warm); pass ``False`` to
        force a purely in-memory cache even when the variable is set.
    """

    def __init__(
        self,
        max_plans: Optional[int] = DEFAULT_MAX_PLANS,
        on_evict: Optional[Callable[[str], None]] = None,
        disk_path: Any = None,
    ) -> None:
        if max_plans is not None and max_plans < 1:
            raise ValueError(f"max_plans must be at least 1, got {max_plans}")
        self._plans: "OrderedDict[str, Any]" = OrderedDict()
        self._max_plans = max_plans
        self._on_evict = on_evict
        if disk_path is None:
            disk_path = os.environ.get(PLAN_CACHE_ENV) or False
        self._disk: Optional[DiskPlanStore] = None
        if disk_path:
            try:
                self._disk = DiskPlanStore(disk_path)
            except OSError:
                self._disk = None  # unusable directory: stay in-memory
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.compile_time_s = 0.0
        self.alpha_interned = 0
        self.digest_migrations = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def max_plans(self) -> Optional[int]:
        return self._max_plans

    @property
    def disk_path(self) -> Optional[str]:
        return self._disk.path if self._disk is not None else None

    # -- the LRU core --------------------------------------------------------

    def _lookup(self, digest: str) -> Optional[Any]:
        plan = self._plans.get(digest)
        if plan is not None:
            self._plans.move_to_end(digest)
            self.hits += 1
        else:
            self.misses += 1
        return plan

    def _store(self, digest: str, plan: Any) -> None:
        self._plans[digest] = plan
        self._plans.move_to_end(digest)
        if self._max_plans is None:
            return
        while len(self._plans) > self._max_plans:
            evicted, _ = self._plans.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted)

    @staticmethod
    def _domain_shape(domain: Optional[Mapping[str, Iterable[Any]]]) -> Tuple[str, ...]:
        return tuple(sorted(domain)) if domain else ()

    # -- plans ---------------------------------------------------------------

    def get(
        self,
        formula: Formula,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Tuple[CompiledPlan, bool]:
        """The cached plan for ``formula`` (compiling on miss).

        Returns ``(plan, from_cache)``.
        """
        shape = self._domain_shape(domain)
        digest = formula_digest(formula, domain_shape=shape)
        plan = self._lookup(digest)
        if plan is not None:
            if plan.source != formula:
                self.alpha_interned += 1
            return plan, True
        plan = self._disk_load(digest, CompiledPlan)
        if plan is None:
            plan = self._migrate(
                digest, legacy_formula_digest(formula, shape), CompiledPlan
            )
        if plan is not None:
            if plan.source != formula:
                self.alpha_interned += 1
            self._store(digest, plan)
            return plan, True
        started = time.perf_counter()
        plan = CompiledPlan(formula, digest=digest, domain_shape=shape)
        self.compile_time_s += time.perf_counter() - started
        self._store(digest, plan)
        self._disk_store(digest, plan)
        return plan, False

    def get_spec(
        self,
        items: Sequence[Tuple[str, Formula]],
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Tuple[SpecPlan, bool]:
        """The cached multi-root plan for ``(clause name, formula)`` pairs.

        Returns ``(spec_plan, from_cache)``; keyed by the spec digest plus
        domain shape, in the same LRU as single-formula plans.
        """
        items = [(name, formula) for name, formula in items]
        shape = self._domain_shape(domain)
        digest = spec_digest(items, domain_shape=shape)
        plan = self._lookup(digest)
        if plan is not None:
            if plan.sources != tuple(items):
                self.alpha_interned += 1
            return plan, True
        plan = self._disk_load(digest, SpecPlan)
        if plan is None:
            plan = self._migrate(
                digest, legacy_spec_digest(items, shape), SpecPlan
            )
        if plan is not None:
            if plan.sources != tuple(items):
                self.alpha_interned += 1
            self._store(digest, plan)
            return plan, True
        started = time.perf_counter()
        plan = SpecPlan(items, digest=digest, domain_shape=shape)
        self.compile_time_s += time.perf_counter() - started
        self._store(digest, plan)
        self._disk_store(digest, plan)
        return plan, False

    # -- the persistent layer -------------------------------------------------

    def _disk_load(self, digest: str, expected_type: type) -> Optional[Any]:
        if self._disk is None:
            return None
        plan = self._disk.load(digest)
        if not isinstance(plan, expected_type) or plan.digest != digest:
            return None  # hash-named file holding something else: miss
        self.disk_hits += 1
        return plan

    def _disk_store(self, digest: str, plan: Any) -> None:
        if self._disk is not None and self._disk.store(digest, plan):
            self.disk_writes += 1

    def _migrate(
        self, digest: str, legacy_digest: str, expected_type: type
    ) -> Optional[Any]:
        """Adopt a disk entry written under the pre-alpha digest.

        A store populated before alpha-interning keyed this plan by its
        verbatim repr; re-key it under the alpha-invariant digest (safe:
        renamed binders always enumerate the name-independent default
        universe, so any member of the alpha class answers for all) and
        rewrite it so the next process finds it directly.
        """
        if self._disk is None or legacy_digest == digest:
            return None
        plan = self._disk_load(legacy_digest, expected_type)
        if plan is None:
            return None
        plan.digest = digest
        self._disk_store(digest, plan)
        self.digest_migrations += 1
        return plan

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory plan and reset the statistics counters.

        The on-disk store is *not* purged — persistence across
        processes/runs is its purpose; delete the directory to cold-start.
        """
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.compile_time_s = 0.0
        self.alpha_interned = 0
        self.digest_migrations = 0

    def statistics(self) -> Dict[str, Any]:
        """Counters reported on compiled-engine results."""
        stats = {
            "plan_cache_size": len(self._plans),
            "plan_cache_capacity": self._max_plans,
            "plan_cache_hits": self.hits,
            "plan_cache_misses": self.misses,
            "plan_cache_evictions": self.evictions,
            "plan_compile_time_s": self.compile_time_s,
            "plan_alpha_interned": self.alpha_interned,
            "plan_digest_migrations": self.digest_migrations,
        }
        if self._disk is not None:
            stats["plan_cache_dir"] = self._disk.path
            stats["plan_disk_hits"] = self.disk_hits
            stats["plan_disk_writes"] = self.disk_writes
        return stats
