"""The session-level compiled-plan cache.

Plans are trace-independent, so one compilation serves every trace, every
``check_many`` batch and every monitoring session that asks the same
question.  The cache holds both single-formula :class:`CompiledPlan`\\ s and
multi-root :class:`~repro.compile.specplan.SpecPlan`\\ s in one **bounded
LRU**: entries key on the content digest (formula or spec digest plus the
names carrying explicit quantification domains), lookups refresh recency,
and inserts beyond ``max_plans`` evict the least recently used plan —
long-lived sessions churning through unbounded formula streams stay
bounded without manual ``clear_caches`` calls.  Hit/miss/eviction and
compile-time counters are reported by the ``compiled`` engine on every
:class:`~repro.api.result.CheckResult`; :meth:`PlanCache.clear` drops the
plans *and* resets the counters, so cache statistics always describe the
current cache generation.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..syntax.formulas import Formula
from .plan import CompiledPlan, formula_digest
from .specplan import SpecPlan, spec_digest

__all__ = ["PlanCache", "DEFAULT_MAX_PLANS"]


#: Default LRU capacity: generous for any hand-written campaign, small
#: enough that a fuzzing session streaming random formulas stays bounded.
DEFAULT_MAX_PLANS = 256


class PlanCache:
    """Digest-keyed bounded LRU of compiled plans (single- and multi-root).

    Parameters
    ----------
    max_plans:
        LRU capacity; inserting beyond it evicts the least recently used
        entry.  ``None`` disables eviction (the pre-LRU behaviour).
    on_evict:
        Called with each evicted digest — the session uses this to drop the
        plan states bound to an evicted plan.
    """

    def __init__(
        self,
        max_plans: Optional[int] = DEFAULT_MAX_PLANS,
        on_evict: Optional[Callable[[str], None]] = None,
    ) -> None:
        if max_plans is not None and max_plans < 1:
            raise ValueError(f"max_plans must be at least 1, got {max_plans}")
        self._plans: "OrderedDict[str, Any]" = OrderedDict()
        self._max_plans = max_plans
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compile_time_s = 0.0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def max_plans(self) -> Optional[int]:
        return self._max_plans

    # -- the LRU core --------------------------------------------------------

    def _lookup(self, digest: str) -> Optional[Any]:
        plan = self._plans.get(digest)
        if plan is not None:
            self._plans.move_to_end(digest)
            self.hits += 1
        else:
            self.misses += 1
        return plan

    def _store(self, digest: str, plan: Any) -> None:
        self._plans[digest] = plan
        self._plans.move_to_end(digest)
        if self._max_plans is None:
            return
        while len(self._plans) > self._max_plans:
            evicted, _ = self._plans.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted)

    @staticmethod
    def _domain_shape(domain: Optional[Mapping[str, Iterable[Any]]]) -> Tuple[str, ...]:
        return tuple(sorted(domain)) if domain else ()

    # -- plans ---------------------------------------------------------------

    def get(
        self,
        formula: Formula,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Tuple[CompiledPlan, bool]:
        """The cached plan for ``formula`` (compiling on miss).

        Returns ``(plan, from_cache)``.
        """
        digest = formula_digest(formula, domain_shape=self._domain_shape(domain))
        plan = self._lookup(digest)
        if plan is not None:
            return plan, True
        started = time.perf_counter()
        plan = CompiledPlan(formula, digest=digest)
        self.compile_time_s += time.perf_counter() - started
        self._store(digest, plan)
        return plan, False

    def get_spec(
        self,
        items: Sequence[Tuple[str, Formula]],
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> Tuple[SpecPlan, bool]:
        """The cached multi-root plan for ``(clause name, formula)`` pairs.

        Returns ``(spec_plan, from_cache)``; keyed by the spec digest plus
        domain shape, in the same LRU as single-formula plans.
        """
        items = [(name, formula) for name, formula in items]
        digest = spec_digest(items, domain_shape=self._domain_shape(domain))
        plan = self._lookup(digest)
        if plan is not None:
            return plan, True
        started = time.perf_counter()
        plan = SpecPlan(items, digest=digest)
        self.compile_time_s += time.perf_counter() - started
        self._store(digest, plan)
        return plan, False

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Drop every plan and reset the statistics counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compile_time_s = 0.0

    def statistics(self) -> Dict[str, Any]:
        """Counters reported on compiled-engine results."""
        return {
            "plan_cache_size": len(self._plans),
            "plan_cache_capacity": self._max_plans,
            "plan_cache_hits": self.hits,
            "plan_cache_misses": self.misses,
            "plan_cache_evictions": self.evictions,
            "plan_compile_time_s": self.compile_time_s,
        }
