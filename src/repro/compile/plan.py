"""Compiled evaluation plans.

A :class:`CompiledPlan` is the trace-independent artifact of the pipeline:
the normalized formula, the hash-consed node/term tables, the logical-
variable slot layout, and a content digest used as the plan-cache key.
Binding a plan to a computation yields a
:class:`~repro.compile.runtime.PlanState` (one per trace, reusable across
any number of checks); :meth:`CompiledPlan.monitor` yields the incremental
variant that absorbs appended states for online monitoring.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..syntax.formulas import Forall, Formula, NextBinding, walk_formula
from .alpha import alpha_canonical
from .dag import DagBuilder, PlanNode, PlanTerm
from .normalize import normalize

__all__ = [
    "CompiledPlan",
    "compile_formula",
    "formula_digest",
    "legacy_formula_digest",
]


def formula_digest(formula: Formula, domain_shape: Tuple[str, ...] = ()) -> str:
    """An alpha-invariant content digest of a formula (plus domain shape).

    The dataclass ``repr`` is fully structural, so equal formulas share a
    digest and distinct formulas practically never collide; hashing the
    *alpha-canonical* form extends that to formulas equal up to bound-
    variable names.  The domain shape (the *names* carrying explicit
    quantification domains, not their values) keys plans the way the
    session cache hands them out — and freezes those binder names during
    canonicalization, since they select their domains by name.
    """
    canonical, _ = alpha_canonical(formula, frozenset(domain_shape))
    payload = repr(canonical) + "\x00" + "\x00".join(domain_shape)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def legacy_formula_digest(
    formula: Formula, domain_shape: Tuple[str, ...] = ()
) -> str:
    """The pre-alpha digest (verbatim repr) — kept so a persistent plan
    store written before alpha-interning can be migrated on first touch."""
    payload = repr(formula) + "\x00" + "\x00".join(domain_shape)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _logical_names(formula: Formula) -> Tuple[str, ...]:
    names: Set[str] = set(formula.free_variables())
    for node in walk_formula(formula):
        if isinstance(node, (Forall, NextBinding)):
            names.update(node.variables)
    return tuple(sorted(names))


class CompiledPlan:
    """The compile-once artifact: normalized DAG plus slot layout."""

    def __init__(
        self,
        formula: Formula,
        digest: Optional[str] = None,
        domain_shape: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.source = formula
        if domain_shape is None:
            # Direct construction: compile the formula verbatim, exactly
            # as before alpha-interning existed.
            canonical, renames = formula, {}
        else:
            canonical, renames = alpha_canonical(
                formula, frozenset(domain_shape)
            )
        self.canonical = canonical
        self.alpha_renames: Dict[str, Tuple[str, ...]] = renames
        self.normalized = normalize(canonical)
        if digest is not None:
            self.digest = digest
        elif domain_shape is None:
            # Verbatim compilation keeps the verbatim (repr-exact) digest:
            # alpha-equivalent plans built directly may bind *different*
            # explicit domains, so they must not share state-cache keys.
            self.digest = legacy_formula_digest(formula)
        else:
            self.digest = formula_digest(formula, domain_shape)
        names = _logical_names(self.normalized)
        self.slot_names: Tuple[str, ...] = names
        self.slot_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
        builder = DagBuilder(self.slot_of)
        self.root: int = builder.add_formula(self.normalized)
        self.nodes: List[PlanNode] = builder.nodes
        self.terms: List[PlanTerm] = builder.terms

    # -- introspection -------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def term_count(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(nodes={self.node_count}, terms={self.term_count}, "
            f"slots={len(self.slot_names)}, digest={self.digest[:12]})"
        )

    # -- binding -------------------------------------------------------------

    def evaluator(
        self,
        trace,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        vectorize: bool = True,
        forall_unroll_cap: Optional[int] = None,
    ):
        """A :class:`PlanState` bound to a fixed (possibly lasso) trace.

        ``vectorize=False`` disables the bitset kernel and forces the
        per-position memo path for every node (the ``stepwise`` engine's
        mode; verdicts are identical either way).  ``forall_unroll_cap``
        bounds quantifier unrolling (``None`` = runtime default, ``0``
        disables it).
        """
        from .runtime import PlanState

        return PlanState(
            self,
            trace,
            domain=domain,
            vectorize=vectorize,
            forall_unroll_cap=forall_unroll_cap,
        )

    def monitor(
        self,
        domain: Optional[Mapping[str, Iterable[Any]]] = None,
        forall_unroll_cap: Optional[int] = None,
    ):
        """An incremental :class:`PlanState` over a growing state prefix."""
        from .runtime import GrowingPrefix, PlanState

        return PlanState(
            self,
            GrowingPrefix(),
            domain=domain,
            incremental=True,
            forall_unroll_cap=forall_unroll_cap,
        )


def compile_formula(formula: Formula) -> CompiledPlan:
    """Compile one interval-logic formula into an evaluation plan."""
    return CompiledPlan(formula)
