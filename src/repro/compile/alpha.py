"""Alpha-canonical renaming of bound logical variables.

``formula_digest`` hashes ``repr(formula)``, so two clauses that differ
only in the *names* of their bound variables — queue I3's ``forall c, d``
against I1/I2's ``forall a, b`` — used to land on different digests and
compile to disjoint plans.  This pass rewrites every bound variable to a
canonical positional name (``$0``, ``$1``, … in pre-order binder
occurrence), so alpha-equivalent formulas share one repr, one digest, one
``CompiledPlan``, and — inside a ``SpecPlan`` — one hash-consed DAG
subtree.

One soundness carve-out: a binder name that appears in the check
request's **domain shape** is semantically significant (the name selects
its enumeration domain), so those binders are *frozen* — kept verbatim —
and only default-universe binders are renamed.  Renamed binders therefore
always enumerate the value universe, which is name-independent, making
the rewrite verdict-preserving by construction; no domain translation is
ever needed downstream.

The pass is best-effort by design: a formula that already uses
``$``-prefixed variables (no capture risk tolerated) or that contains an
unknown node type standing between a binder and its body is returned
verbatim — callers degrade to today's repr-exact digests, never to a
wrong plan.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
    walk_formula,
)
from ..syntax.intervals import (
    Backward,
    Begin,
    End,
    EventTerm,
    Forward,
    Star,
)
from ..syntax.terms import (
    Apply,
    BinOp,
    Cmp,
    Const,
    FalsePredicate,
    LogicalVar,
    OpAfter,
    OpAt,
    OpIn,
    Prop,
    StartPredicate,
    TruePredicate,
    Var,
)

__all__ = ["CANONICAL_PREFIX", "alpha_canonical"]

CANONICAL_PREFIX = "$"

_ALPHA_CACHE_ATTR = "_alpha_cache"


class _Unrenamable(Exception):
    """An unknown node type stands between a binder and a renamed variable."""


class _Ctx:
    """One canonicalization run: the global fresh counter and rename log."""

    __slots__ = ("counter", "renames", "frozen")

    def __init__(self, frozen: FrozenSet[str]) -> None:
        self.counter = 0
        self.renames: Dict[str, List[str]] = {}
        self.frozen = frozen

    def fresh(self, original: str) -> str:
        name = f"{CANONICAL_PREFIX}{self.counter}"
        self.counter += 1
        self.renames.setdefault(original, []).append(name)
        return name


def _touched(names, env) -> bool:
    """Whether any of ``names`` has a *changed* mapping in ``env``."""
    if not env or not names:
        return False
    for name in names:
        replacement = env.get(name)
        if replacement is not None and replacement != name:
            return True
    return False


def _bind(ctx: _Ctx, env, variables) -> Tuple[Tuple[str, ...], dict]:
    """Allocate canonical names for one binder tuple (pre-order, in tuple
    order); frozen names shadow verbatim so inner occurrences stay put."""
    scoped = dict(env)
    renamed = []
    for var in variables:
        if var in ctx.frozen:
            scoped[var] = var
            renamed.append(var)
        else:
            name = ctx.fresh(var)
            scoped[var] = name
            renamed.append(name)
    return tuple(renamed), scoped


def _expr(expr, env):
    kind = type(expr)
    if kind is LogicalVar:
        name = env.get(expr.name, expr.name)
        return expr if name == expr.name else LogicalVar(name)
    if kind is Const or kind is Var:
        return expr
    if kind is BinOp:
        return BinOp(expr.op, _expr(expr.left, env), _expr(expr.right, env))
    if kind is Apply:
        return Apply(
            expr.function, tuple(_expr(arg, env) for arg in expr.args)
        )
    # Unknown expression type: safe to keep verbatim unless a renamed
    # variable occurs inside it (then we cannot rewrite, so bail out).
    if _touched(expr.free_logical_vars(), env):
        raise _Unrenamable(kind.__name__)
    return expr


def _predicate(predicate, env):
    kind = type(predicate)
    if kind in (TruePredicate, FalsePredicate, Prop, StartPredicate):
        return predicate
    if kind is Cmp:
        return Cmp(_expr(predicate.left, env), predicate.op,
                   _expr(predicate.right, env))
    if kind in (OpAt, OpIn, OpAfter):
        return kind(
            predicate.operation,
            tuple(_expr(arg, env) for arg in predicate.args),
        )
    if _touched(predicate.free_logical_vars(), env):
        raise _Unrenamable(kind.__name__)
    return predicate


def _term(term, env, ctx: _Ctx):
    kind = type(term)
    if kind is EventTerm:
        return EventTerm(_formula(term.formula, env, ctx))
    if kind is Begin:
        return Begin(_term(term.term, env, ctx))
    if kind is End:
        return End(_term(term.term, env, ctx))
    if kind is Star:
        return Star(_term(term.term, env, ctx))
    if kind is Forward or kind is Backward:
        left = None if term.left is None else _term(term.left, env, ctx)
        right = None if term.right is None else _term(term.right, env, ctx)
        return kind(left, right)
    raise _Unrenamable(kind.__name__)


def _formula(node, env, ctx: _Ctx):
    kind = type(node)
    if kind is Atom:
        if not _touched(node.free_variables(), env):
            return node
        return Atom(_predicate(node.predicate, env))
    if kind is TrueFormula or kind is FalseFormula:
        return node
    if kind is Not:
        return Not(_formula(node.operand, env, ctx))
    if kind is And or kind is Or or kind is Implies or kind is Iff:
        return kind(
            _formula(node.left, env, ctx), _formula(node.right, env, ctx)
        )
    if kind is Always or kind is Eventually:
        return kind(_formula(node.operand, env, ctx))
    if kind is IntervalFormula:
        term = _term(node.term, env, ctx)
        return IntervalFormula(term, _formula(node.body, env, ctx))
    if kind is Occurs:
        return Occurs(_term(node.term, env, ctx))
    if kind is Forall:
        variables, scoped = _bind(ctx, env, node.variables)
        return Forall(variables, _formula(node.body, scoped, ctx))
    if kind is NextBinding:
        variables, scoped = _bind(ctx, env, node.variables)
        return NextBinding(
            node.operation, variables, _formula(node.body, scoped, ctx)
        )
    raise _Unrenamable(kind.__name__)


def _scan(formula: Formula) -> Tuple[FrozenSet[str], bool]:
    """Collect binder names; second element False → skip canonicalization
    (a ``$``-prefixed name already occurs, so renaming could capture)."""
    binders = set()
    for node in walk_formula(formula):
        kind = type(node)
        if kind is Forall or kind is NextBinding:
            for var in node.variables:
                if var.startswith(CANONICAL_PREFIX):
                    return frozenset(binders), False
                binders.add(var)
    if binders:
        for name in formula.free_variables():
            if name.startswith(CANONICAL_PREFIX):
                return frozenset(binders), False
    return frozenset(binders), True


def alpha_canonical(
    formula: Formula, frozen: FrozenSet[str] = frozenset()
) -> Tuple[Formula, Dict[str, Tuple[str, ...]]]:
    """Return ``(canonical, renames)`` for ``formula``.

    ``renames`` maps each original binder name to the tuple of canonical
    names it received (one per binding occurrence, pre-order).  Binder
    names in ``frozen`` — the domain-shape names of the enclosing check
    request — are never renamed.  Formulas with no renameable binder (or
    where renaming would be unsafe) come back *identical*: same instance,
    empty rename map.
    """
    try:
        binders, renameable = _scan(formula)
    except Exception:
        return formula, {}
    if not binders or not renameable:
        return formula, {}
    # Only frozen names that actually bind matter for the result, so the
    # memo key collapses every irrelevant shape to one entry.
    key = frozenset(frozen) & binders
    cache = getattr(formula, _ALPHA_CACHE_ATTR, None)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    ctx = _Ctx(key)
    try:
        canonical = _formula(formula, {}, ctx)
    except _Unrenamable:
        result = (formula, {})
    else:
        renames = {
            original: tuple(names) for original, names in ctx.renames.items()
        }
        result = (canonical, renames) if renames else (formula, {})
    if cache is None:
        cache = {}
        try:
            # Nodes are frozen dataclasses; bypass their __setattr__ guard
            # (the same discipline as ``Formula.free_variables``).
            object.__setattr__(formula, _ALPHA_CACHE_ATTR, cache)
        except Exception:
            return result
    cache[key] = result
    return result
