"""Cross-trace pooling of fully-lowered incremental plan states.

Binding a plan is the expensive half of opening a monitored stream: one
closure per DAG node, kernel probes per node, slot/memo skeletons.  All
of that is trace-independent — only the *contents* of the memo tables and
the growing prefix belong to a particular stream — so when a stream
closes (or a serve handle is rebuilt), its spec-plan state can be reset
in place and handed to the next stream that opens the same plan over the
same domain under the same unroll cap.  A 1,000-stream fleet cycling
over a handful of spec families then pays the lowering once per family
and recycles the skeletons forever after.

Keys carry everything the lowering observed: the plan digest (alpha-
invariant, so renamed spec variants share a pool slot), the *full* domain
key — names **and** values, because ``Forall`` unrolling precomputes the
binding tuples from the domain values at lowering time — and the unroll
cap.  States whose domain fails to hash are simply never pooled.

The pool is bounded two ways (per key and in total; beyond the total the
least recently touched key sheds states) so a fleet that churns through
unbounded spec variety stays bounded, exactly like the plan LRU above it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, List

__all__ = [
    "DEFAULT_POOL_STATES",
    "DEFAULT_POOL_STATES_PER_KEY",
    "PlanStatePool",
]

#: Total parked states across every key; beyond it the least recently
#: touched key sheds states first.
DEFAULT_POOL_STATES = 256

#: Parked states per (plan, domain, cap) key — the most concurrent
#: close/open churn one shape is expected to see between acquires.
DEFAULT_POOL_STATES_PER_KEY = 8


class PlanStatePool:
    """Bounded free-lists of lowered plan states, keyed by binding shape."""

    def __init__(
        self,
        max_states: int = DEFAULT_POOL_STATES,
        max_states_per_key: int = DEFAULT_POOL_STATES_PER_KEY,
    ) -> None:
        if max_states < 1:
            raise ValueError(f"max_states must be at least 1, got {max_states}")
        if max_states_per_key < 1:
            raise ValueError(
                f"max_states_per_key must be at least 1, got {max_states_per_key}"
            )
        self._free: "OrderedDict[Hashable, List[Any]]" = OrderedDict()
        self._size = 0
        self._max_states = max_states
        self._max_per_key = max_states_per_key
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.discards = 0

    def __len__(self) -> int:
        return self._size

    def acquire(self, key: Hashable):
        """Pop a parked state for ``key`` (already reset), or ``None``."""
        bucket = self._free.get(key)
        if not bucket:
            self.misses += 1
            return None
        state = bucket.pop()
        if bucket:
            self._free.move_to_end(key)
        else:
            del self._free[key]
        self._size -= 1
        self.hits += 1
        return state

    def release(self, key: Hashable, state: Any) -> bool:
        """Reset ``state`` in place and park it for the next acquire.

        Returns whether the state was kept; a full bucket or a failing
        reset discards it (a discarded state is simply garbage, exactly
        what would have happened without a pool).
        """
        bucket = self._free.get(key)
        if bucket is not None and len(bucket) >= self._max_per_key:
            self.discards += 1
            return False
        try:
            state.reset()
        except Exception:
            self.discards += 1
            return False
        if bucket is None:
            bucket = self._free[key] = []
        bucket.append(state)
        self._free.move_to_end(key)
        self._size += 1
        self.releases += 1
        while self._size > self._max_states:
            oldest_key = next(iter(self._free))
            oldest = self._free[oldest_key]
            oldest.pop()
            if not oldest:
                del self._free[oldest_key]
            self._size -= 1
            self.discards += 1
        return True

    def drop_plan(self, digest: str) -> int:
        """Drop every parked state of one plan (the cache-eviction hook).

        Keys lead with the plan digest, so an evicted plan's states cannot
        outlive it in the pool and alias a later recompilation.
        """
        dropped = 0
        for key in [k for k in self._free if k[0] == digest]:
            dropped += len(self._free.pop(key))
        self._size -= dropped
        return dropped

    def clear(self) -> None:
        """Drop every parked state and reset the counters."""
        self._free.clear()
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.discards = 0

    def statistics(self) -> Dict[str, Any]:
        return {
            "plan_state_pool_size": self._size,
            "plan_state_pool_keys": len(self._free),
            "plan_state_pool_hits": self.hits,
            "plan_state_pool_misses": self.misses,
            "plan_state_pool_releases": self.releases,
            "plan_state_pool_discards": self.discards,
        }
