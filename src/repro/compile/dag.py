"""Hash-consed subformula DAGs and the lowered plan node tables.

Lowering turns a normalized formula tree into two flat tables — one of
:class:`PlanNode` records (formulas) and one of :class:`PlanTerm` records
(interval terms) — interned by structure, so a subformula that occurs many
times in the tree is represented, and later memoized, exactly once.  Node
ids are small integers; the runtime's memo tables key on them instead of
hashing whole formula objects.

Each node carries its precomputed **free-variable signature**: the slot
indices (into the plan's logical-variable slot vector) of the rigid
variables the subformula actually reads.  The runtime restricts memo keys
to those slots — the compiled counterpart of the evaluator's free-variable
memo keys — and binds quantified variables by writing slots instead of
copying environment dictionaries.

``PlanNode.is_state`` marks *state formulas*: boolean combinations of
atomic predicates, whose truth on a context ``<i, j>`` depends only on the
state at position ``i``.  The runtime memoizes state nodes per canonical
position (sharing verdicts across every context that starts there) and
builds interval-endpoint indexes for state-formula events so event searches
bisect instead of scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..syntax.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    IntervalFormula,
    NextBinding,
    Not,
    Occurs,
    Or,
    TrueFormula,
)
from ..syntax.intervals import Backward, Begin, End, EventTerm, Forward, IntervalTerm, Star
from ..syntax.terms import OpAt, Predicate

__all__ = [
    "CompileError",
    "PlanNode",
    "PlanTerm",
    "DagBuilder",
    # formula opcodes
    "N_ATOM", "N_TRUE", "N_FALSE", "N_NOT", "N_AND", "N_OR", "N_IMPLIES",
    "N_IFF", "N_ALWAYS", "N_EVENTUALLY", "N_INTERVAL", "N_OCCURS",
    "N_FORALL", "N_BINDNEXT", "STATE_NODE_OPS",
    # term opcodes
    "T_EVENT", "T_BEGIN", "T_END", "T_FORWARD", "T_BACKWARD",
]


class CompileError(ReproError):
    """A formula cannot be lowered to an evaluation plan."""


# Formula opcodes (small ints; names kept readable for debugging).
N_ATOM, N_TRUE, N_FALSE, N_NOT, N_AND, N_OR, N_IMPLIES, N_IFF = range(8)
N_ALWAYS, N_EVENTUALLY, N_INTERVAL, N_OCCURS, N_FORALL, N_BINDNEXT = range(8, 14)

# Interval-term opcodes.
T_EVENT, T_BEGIN, T_END, T_FORWARD, T_BACKWARD = range(5)

#: Opcodes that can appear inside a state formula (``PlanNode.is_state``
#: subtrees are built from exactly these).  The vectorized binding mode
#: (:mod:`repro.compile.vector`) recurses over this set when deciding
#: whether a node evaluates as whole-column bitset operations.
STATE_NODE_OPS = frozenset(
    {N_ATOM, N_TRUE, N_FALSE, N_NOT, N_AND, N_OR, N_IMPLIES, N_IFF}
)

@dataclass(frozen=True)
class PlanNode:
    """One lowered formula node of the subformula DAG."""

    id: int
    op: int
    formula: Formula
    #: Child node ids (unary: (a,), binary: (a, b)).
    a: Optional[int] = None
    b: Optional[int] = None
    #: Term id for interval / occurs nodes.
    term: Optional[int] = None
    #: The predicate of an atom node.
    predicate: Optional[Predicate] = None
    #: Quantified / bound variable names and their slots (forall, bind-next).
    var_names: Tuple[str, ...] = ()
    var_slots: Tuple[int, ...] = ()
    #: Operation name (bind-next) and its compiled ``atO`` event node.
    operation: Optional[str] = None
    event: Optional[int] = None
    #: Free-variable signature: names and slot indices, sorted by name.
    free_names: Tuple[str, ...] = ()
    free_slots: Tuple[int, ...] = ()
    #: Truth depends only on the first state of the context.
    is_state: bool = False


@dataclass(frozen=True)
class PlanTerm:
    """One lowered interval-term node."""

    id: int
    op: int
    #: Child term ids; either may be ``None`` for the arrow operators.
    a: Optional[int] = None
    b: Optional[int] = None
    #: Event-formula node id for event terms.
    event: Optional[int] = None
    #: Free-variable slot signature (union over the term's event formulas) —
    #: the runtime's construction memo restricts its keys to these slots.
    free_slots: Tuple[int, ...] = ()


class DagBuilder:
    """Interns formulas and interval terms into shared node tables."""

    def __init__(self, slot_of: Dict[str, int]) -> None:
        self._slot_of = slot_of
        self.nodes: List[PlanNode] = []
        self.terms: List[PlanTerm] = []
        self._node_ids: Dict[Tuple, int] = {}
        self._term_ids: Dict[Tuple, int] = {}

    # -- interning ----------------------------------------------------------

    def _emit(self, key: Tuple, **fields) -> int:
        existing = self._node_ids.get(key)
        if existing is not None:
            return existing
        node = PlanNode(id=len(self.nodes), **fields)
        self.nodes.append(node)
        self._node_ids[key] = node.id
        return node.id

    def _emit_term(self, key: Tuple, **fields) -> int:
        existing = self._term_ids.get(key)
        if existing is not None:
            return existing
        term = PlanTerm(id=len(self.terms), **fields)
        self.terms.append(term)
        self._term_ids[key] = term.id
        return term.id

    def _signature(self, formula: Formula) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
        names = tuple(sorted(formula.free_variables()))
        return names, tuple(self._slot_of[name] for name in names)

    # -- formulas ------------------------------------------------------------

    def add_formula(self, formula: Formula) -> int:
        """Intern ``formula``; returns its node id."""
        if isinstance(formula, Atom):
            names, slots = self._signature(formula)
            return self._emit(
                ("atom", formula.predicate),
                op=N_ATOM, formula=formula, predicate=formula.predicate,
                free_names=names, free_slots=slots, is_state=True,
            )
        if isinstance(formula, TrueFormula):
            return self._emit(("true",), op=N_TRUE, formula=formula, is_state=True)
        if isinstance(formula, FalseFormula):
            return self._emit(("false",), op=N_FALSE, formula=formula, is_state=True)
        if isinstance(formula, Not):
            a = self.add_formula(formula.operand)
            return self._emit(
                ("not", a), op=N_NOT, formula=formula, a=a,
                free_names=self.nodes[a].free_names,
                free_slots=self.nodes[a].free_slots,
                is_state=self.nodes[a].is_state,
            )
        if isinstance(formula, (And, Or, Implies, Iff)):
            op = {And: N_AND, Or: N_OR, Implies: N_IMPLIES, Iff: N_IFF}[type(formula)]
            a = self.add_formula(formula.left)
            b = self.add_formula(formula.right)
            names, slots = self._signature(formula)
            return self._emit(
                (op, a, b), op=op, formula=formula, a=a, b=b,
                free_names=names, free_slots=slots,
                is_state=self.nodes[a].is_state and self.nodes[b].is_state,
            )
        if isinstance(formula, (Always, Eventually)):
            op = N_ALWAYS if isinstance(formula, Always) else N_EVENTUALLY
            a = self.add_formula(formula.operand)
            return self._emit(
                (op, a), op=op, formula=formula, a=a,
                free_names=self.nodes[a].free_names,
                free_slots=self.nodes[a].free_slots,
            )
        if isinstance(formula, IntervalFormula):
            term = self.add_term(formula.term)
            body = self.add_formula(formula.body)
            names, slots = self._signature(formula)
            return self._emit(
                ("interval", term, body), op=N_INTERVAL, formula=formula,
                a=body, term=term, free_names=names, free_slots=slots,
            )
        if isinstance(formula, Occurs):
            term = self.add_term(formula.term)
            names, slots = self._signature(formula)
            return self._emit(
                ("occurs", term), op=N_OCCURS, formula=formula, term=term,
                free_names=names, free_slots=slots,
            )
        if isinstance(formula, Forall):
            body = self.add_formula(formula.body)
            names, slots = self._signature(formula)
            return self._emit(
                ("forall", formula.variables, body),
                op=N_FORALL, formula=formula, a=body,
                var_names=formula.variables,
                var_slots=tuple(self._slot_of[v] for v in formula.variables),
                free_names=names, free_slots=slots,
            )
        if isinstance(formula, NextBinding):
            body = self.add_formula(formula.body)
            event = self.add_formula(Atom(OpAt(formula.operation)))
            names, slots = self._signature(formula)
            return self._emit(
                ("bindnext", formula.operation, formula.variables, body),
                op=N_BINDNEXT, formula=formula, a=body,
                operation=formula.operation, event=event,
                var_names=formula.variables,
                var_slots=tuple(self._slot_of[v] for v in formula.variables),
                free_names=names, free_slots=slots,
            )
        raise CompileError(f"cannot lower formula node: {formula!r}")

    # -- interval terms ------------------------------------------------------

    def _term_slots(self, *children: Optional[int]) -> Tuple[int, ...]:
        slots = set()
        for child in children:
            if child is not None:
                slots.update(self.terms[child].free_slots)
        return tuple(sorted(slots))

    def add_term(self, term: IntervalTerm) -> int:
        if isinstance(term, Star):
            raise CompileError(
                "star modifiers must be eliminated before lowering "
                "(normalize() applies the Appendix A reduction)"
            )
        if isinstance(term, EventTerm):
            event = self.add_formula(term.formula)
            return self._emit_term(
                ("event", event), op=T_EVENT, event=event,
                free_slots=self.nodes[event].free_slots,
            )
        if isinstance(term, Begin):
            a = self.add_term(term.term)
            return self._emit_term(
                ("begin", a), op=T_BEGIN, a=a, free_slots=self._term_slots(a)
            )
        if isinstance(term, End):
            a = self.add_term(term.term)
            return self._emit_term(
                ("end", a), op=T_END, a=a, free_slots=self._term_slots(a)
            )
        if isinstance(term, (Forward, Backward)):
            op = T_FORWARD if isinstance(term, Forward) else T_BACKWARD
            a = self.add_term(term.left) if term.left is not None else None
            b = self.add_term(term.right) if term.right is not None else None
            return self._emit_term(
                (op, a, b), op=op, a=a, b=b, free_slots=self._term_slots(a, b)
            )
        raise CompileError(f"cannot lower interval term: {term!r}")
