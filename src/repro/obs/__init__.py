"""repro.obs — unified metrics, tracing and profiling.

One observability layer for the whole stack, replacing the patchwork of
ad-hoc stats surfaces that grew alongside it:

==============================================  ==================================
Legacy surface                                  repro.obs replacement
==============================================  ==================================
``Session.cache_statistics()``                  ``Session.metrics_snapshot()``
                                                (``repro_plan_cache_*`` series)
``Session.last_parallel_cache_stats``           worker registries merged on join
``Monitor.step_costs`` / ``last_step_cost``     ``serve_step_cost`` histogram
``StreamRegistry.service_snapshot()`` counters  ``serve_*`` labelled series
``PlanStats`` per-state counters                ``PlanProfiler`` kind attribution
==============================================  ==================================

The legacy surfaces all still work — tests and tools depend on them — but
new telemetry should go through a :class:`MetricsRegistry`.

Three pieces:

* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  snapshot/merge/diff semantics and Prometheus-text + JSON exposition;
* :mod:`repro.obs.tracing` — nested wall/CPU spans in a bounded buffer;
* :mod:`repro.obs.profile` — an opt-in sampling profiler attributing
  plan-runtime time to node kinds (forall / event-search / bitset-kernel
  / fallback).
"""

from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
    diff_snapshots,
    merge_snapshots,
    snapshot_quantile,
    to_json,
    to_prometheus_text,
)
from .profile import PlanProfiler
from .tracing import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_snapshots",
    "diff_snapshots",
    "snapshot_quantile",
    "to_json",
    "to_prometheus_text",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "PlanProfiler",
]
