"""Lightweight nested spans with wall/CPU timings.

A :class:`Tracer` records where time goes *structurally*: each
:meth:`Tracer.span` context manager opens a :class:`Span`, nests under
whatever span is already open on this thread, and on exit captures both
wall time (``perf_counter``) and process CPU time (``process_time``).
Finished **root** spans land in a bounded ring buffer (oldest evicted),
so a long-lived :class:`~repro.api.session.Session` or serve process can
always answer "what did the last N checks spend their time on" without
unbounded growth.

This is deliberately not a distributed tracer — no IDs, no propagation,
no exporters.  Spans are plain objects; :meth:`Tracer.spans` exports the
buffer as JSON-safe dicts for the serve ``metrics`` frame or ad-hoc
inspection.  The per-span cost is two clock reads and a list append,
cheap enough to leave on for every ``Session.check`` call.

``NULL_TRACER`` is the no-op twin (same API, records nothing) used for
uninstrumented baselines, mirroring ``NULL_METRICS``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

DEFAULT_SPAN_BUFFER = 256


class Span:
    """One timed region.  ``attrs`` may be amended while the span is open
    (engines record their dispatch reason after selection, for example)."""

    __slots__ = ("name", "attrs", "children", "wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def _start(self) -> None:
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def _finish(self) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, children={len(self.children)})"


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span._start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span._finish()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class Tracer:
    """Per-thread span stacks feeding one bounded root-span buffer."""

    def __init__(self, max_spans: int = DEFAULT_SPAN_BUFFER) -> None:
        self._roots: Deque[Span] = deque(maxlen=max_spans)
        self._local = threading.local()
        self.started = 0
        self.finished = 0

    @property
    def max_spans(self) -> int:
        return self._roots.maxlen or 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span: ``with tracer.span("check", engine="compiled") as s:``"""
        return _SpanContext(self, Span(name, attrs))

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        self.started += 1

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate misnested exits rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        self.finished += 1
        if not stack:
            self._roots.append(span)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> Tuple[Span, ...]:
        return tuple(self._roots)

    def spans(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The newest finished root spans as JSON-safe dicts (newest last)."""
        roots = list(self._roots)
        if limit is not None:
            roots = roots[-limit:]
        return [span.to_dict() for span in roots]

    def clear(self) -> None:
        self._roots.clear()

    def __iter__(self) -> Iterator[Span]:
        return iter(tuple(self._roots))


class NullTracer(Tracer):
    """Records nothing; ``span()`` yields a shared throwaway span."""

    class _NullContext:
        __slots__ = ()
        _SPAN = Span("null")

        def __enter__(self) -> Span:
            return self._SPAN

        def __exit__(self, exc_type, exc, tb) -> None:
            pass

    _CONTEXT = _NullContext()

    def __init__(self) -> None:
        super().__init__(max_spans=1)

    def span(self, name: str, **attrs: Any):  # type: ignore[override]
        return NullTracer._CONTEXT

    def spans(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return []


#: Shared no-op tracer for uninstrumented baselines.
NULL_TRACER = NullTracer()
