"""Opt-in sampling profiler for the plan runtime.

``PlanState`` dispatches every node evaluation through a closure table
(``state._ops[nid](lo, hi)`` — see :func:`repro.compile.lower.bind_dispatch`),
which makes the dispatch layer itself the natural interposition point:
:meth:`PlanProfiler.attach` replaces the table with a wrapped copy and no
other runtime code changes.

Attribution is by **node kind**, the four cost classes that matter when
tuning a plan: ``forall`` (quantifier expansion, specialized or generic),
``event-search`` (interval/occurs term construction and event scans),
``bitset-kernel`` (node ids bound to the vectorized columnwise mode), and
``fallback`` (everything evaluated by the scalar closures).  Kernel-bound
ids are classified first — a vectorized forall is kernel time, which is
exactly the question the profiler answers ("did the fast path engage?").

Overhead control: every call is *counted* (one integer add), but only
every ``sample_every``-th call per kind is *timed* (two ``perf_counter``
reads).  :meth:`report` scales sampled time back up by ``calls/sampled``.
Timings are **inclusive** — a forall's time includes the children it
evaluates beneath itself — so kind totals overlap and are not expected to
sum to wall time; they rank where time goes, they don't partition it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from ..compile.dag import N_FORALL, N_INTERVAL, N_OCCURS

__all__ = ["PlanProfiler", "KIND_FORALL", "KIND_EVENT", "KIND_KERNEL", "KIND_FALLBACK"]

KIND_FORALL = "forall"
KIND_EVENT = "event-search"
KIND_KERNEL = "bitset-kernel"
KIND_FALLBACK = "fallback"

KINDS = (KIND_FORALL, KIND_EVENT, KIND_KERNEL, KIND_FALLBACK)


def classify(node: Any, vector_nids: frozenset) -> str:
    """The cost class of one plan node (kernel binding wins)."""
    if node.id in vector_nids:
        return KIND_KERNEL
    if node.op == N_FORALL:
        return KIND_FORALL
    if node.op in (N_INTERVAL, N_OCCURS):
        return KIND_EVENT
    return KIND_FALLBACK


class _KindTally:
    __slots__ = ("calls", "sampled", "time_s")

    def __init__(self) -> None:
        self.calls = 0
        self.sampled = 0
        self.time_s = 0.0


class PlanProfiler:
    """Samples node-dispatch time by cost class across attached states.

    One profiler may be attached to many plan states (a multi-clause spec
    compiles to several); tallies accumulate across all of them.  Detach
    is per-state via the handle :meth:`attach` returns, or just drop the
    state — attachment never mutates the plan, only the state's own
    dispatch table.
    """

    def __init__(self, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.attached = 0
        self._tallies: Dict[str, _KindTally] = {kind: _KindTally() for kind in KINDS}

    def attach(self, state: Any) -> "PlanProfiler":
        """Wrap ``state._ops`` so every dispatch lands in the tallies.

        Nodes the closure table never routes through (inlined atoms, the
        kernel's internal columns) stay invisible, same as before —
        the profiler sees exactly what ``PlanState._holds`` dispatches.
        Accepts a ``SpecPlanState`` too (attaches to its shared inner
        ``PlanState``).
        """
        inner = getattr(state, "_state", None)
        if inner is not None and not hasattr(state, "_ops"):
            state = inner
        every = self.sample_every
        wrapped = []
        for node, op in zip(state._plan.nodes, state._ops):
            tally = self._tallies[classify(node, state._vector_nids)]

            def profiled(lo, hi, _op=op, _tally=tally, _every=every):
                _tally.calls += 1
                if _tally.calls % _every:
                    return _op(lo, hi)
                start = time.perf_counter()
                value = _op(lo, hi)
                _tally.time_s += time.perf_counter() - start
                _tally.sampled += 1
                return value

            wrapped.append(profiled)
        state._ops = tuple(wrapped)
        self.attached += 1
        return self

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{calls, sampled, time_s, est_time_s}`` (estimated
        total = sampled time scaled by the sampling ratio; inclusive)."""
        out: Dict[str, Dict[str, float]] = {}
        for kind in KINDS:
            tally = self._tallies[kind]
            estimate = (
                tally.time_s * (tally.calls / tally.sampled) if tally.sampled else 0.0
            )
            out[kind] = {
                "calls": tally.calls,
                "sampled": tally.sampled,
                "time_s": tally.time_s,
                "est_time_s": estimate,
            }
        return out

    def total_calls(self) -> int:
        return sum(t.calls for t in self._tallies.values())

    def export(self, metrics: Any) -> None:
        """Write the current tallies into a ``MetricsRegistry`` as
        ``repro_plan_node_calls_total{kind}`` and
        ``repro_plan_node_seconds_total{kind}`` (estimated, inclusive)."""
        calls = metrics.counter(
            "repro_plan_node_calls_total",
            "Plan-node dispatches by cost class (sampling profiler).",
            ("kind",),
        )
        seconds = metrics.counter(
            "repro_plan_node_seconds_total",
            "Estimated inclusive seconds by cost class (sampling profiler).",
            ("kind",),
        )
        for kind, row in self.report().items():
            existing = calls.child(kind)
            existing.inc(row["calls"] - existing.value)
            existing = seconds.child(kind)
            existing.inc(row["est_time_s"] - existing.value)

    def reset(self) -> None:
        self._tallies = {kind: _KindTally() for kind in KINDS}
