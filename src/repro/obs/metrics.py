"""Process-local metrics: labelled counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the one telemetry surface every layer of the
stack writes into — :class:`~repro.api.session.Session` checks, the
``check_many`` worker fan-out, :class:`~repro.checking.monitor.Monitor`
streams behind :mod:`repro.serve`, and the shard pool.  Three instrument
kinds, all labelled:

* **counters** — monotone totals (``repro_checks_total{engine="compiled"}``);
* **gauges** — set-to-current values (open stream counts, cache sizes);
* **histograms** — fixed-bucket distributions with a running sum/count
  (check latencies, batch sizes, per-batch step costs) and a
  :meth:`HistogramChild.quantile` estimator.

The design centre is **snapshot/merge/diff**: :meth:`MetricsRegistry.snapshot`
produces a plain JSON-safe dict, :func:`merge_snapshots` adds two snapshots
series-by-series (counters, histogram buckets and gauges all sum — the
cross-worker aggregation rule, i.e. Prometheus ``sum()``), and
:func:`diff_snapshots` subtracts an earlier snapshot from a later one
(rate windows; gauges keep the later value).  Worker processes ship their
snapshot to the parent on join and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot` — merging is associative and
commutative over counter series, so fan-out order cannot change the
totals.

Two exposition encoders: the snapshot itself *is* the JSON form (it round-
trips through ``json.dumps``), and :func:`to_prometheus_text` renders the
Prometheus text format (``# HELP`` / ``# TYPE`` headers, label sets,
cumulative ``_bucket{le=...}`` series) for scrape endpoints.

Everything is process-local and relies on the GIL for increment atomicity
— there are no locks on the hot path.  ``NULL_METRICS`` is a shared no-op
registry: hand it to any instrumented component to measure the
uninstrumented baseline (``benchmarks/bench_obs.py`` gates the overhead).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_snapshots",
    "diff_snapshots",
    "to_prometheus_text",
    "to_json",
]


#: Latency buckets (seconds): 50µs .. 10s, roughly 3 per decade.  Fixed
#: buckets keep snapshots mergeable across processes by plain addition.
DEFAULT_SECONDS_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size/count buckets: batch sizes, step costs, memo growth.
DEFAULT_SIZE_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


class _Child:
    """One labelled series of an instrument (the hot-path handle)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class HistogramChild:
    """One labelled histogram series: fixed buckets + running sum/count."""

    __slots__ = ("bounds", "buckets", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        # buckets[i] counts observations <= bounds[i]; the implicit +Inf
        # bucket is buckets[len(bounds)].  Stored non-cumulative so merge
        # is element-wise addition; the text encoder accumulates.
        self.buckets = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1), interpolated inside its bucket.

        Exact enough for operational dashboards — resolution is the bucket
        grid.  Returns 0.0 on an empty series; values in the +Inf bucket
        clamp to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            if bucket == 0:
                continue
            if seen + bucket >= rank:
                hi = self.bounds[index] if index < len(self.bounds) else self.bounds[-1]
                lo = self.bounds[index - 1] if 0 < index <= len(self.bounds) else 0.0
                if index >= len(self.bounds):
                    return float(hi)
                fraction = (rank - seen) / bucket
                return float(lo + (hi - lo) * min(1.0, max(0.0, fraction)))
            seen += bucket
        return float(self.bounds[-1])


class _Instrument:
    """Shared shell: name, help text, label names, labelled children."""

    kind = "?"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _new_child(self) -> Any:
        raise NotImplementedError

    def child(self, *label_values: str):
        """The series for these label values (created on first use)."""
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {label_values!r}"
            )
        key = tuple(str(v) for v in label_values)
        series = self._children.get(key)
        if series is None:
            series = self._new_child()
            self._children[key] = series
        return series

    def labels(self, **labels: str):
        """Keyword form of :meth:`child` (order-insensitive)."""
        try:
            return self.child(*(labels[name] for name in self.label_names))
        except KeyError as exc:
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got "
                f"{sorted(labels)}"
            ) from None

    def series(self) -> Dict[Tuple[str, ...], Any]:
        return dict(self._children)


class Counter(_Instrument):
    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild()

    def inc(self, amount: float = 1, *label_values: str) -> None:
        self.child(*label_values).inc(amount)

    def value(self, *label_values: str) -> float:
        return self.child(*label_values).value


class Gauge(_Instrument):
    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild()

    def set(self, value: float, *label_values: str) -> None:
        self.child(*label_values).set(value)

    def value(self, *label_values: str) -> float:
        return self.child(*label_values).value


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"{name}: buckets must be a non-empty strictly increasing "
                f"sequence, got {buckets!r}"
            )
        if any(math.isinf(b) for b in bounds):
            raise ValueError(f"{name}: the +Inf bucket is implicit")
        self.bounds = bounds

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.bounds)

    def observe(self, value: float, *label_values: str) -> None:
        self.child(*label_values).observe(value)


class MetricsRegistry:
    """All instruments of one process (or one worker, or one shard).

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*: asking for
    an existing name returns the existing instrument (so layers can
    declare the series they write without coordinating), and asking with a
    conflicting kind or label set raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    # -- declaration ---------------------------------------------------------

    def _declare(self, cls, name: str, help: str, labels: Sequence[str], **extra):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if type(instrument) is not cls or instrument.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already declared as "
                    f"{instrument.kind}{instrument.label_names}, asked for "
                    f"{cls.kind}{tuple(labels)}"
                )
            return instrument
        instrument = cls(name, help, labels, **extra)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if isinstance(instrument, Histogram) and instrument.bounds != tuple(
            float(b) for b in buckets
        ):
            raise ValueError(
                f"metric {name!r} already declared with buckets "
                f"{instrument.bounds}"
            )
        return self._declare(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._instruments))

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument as one plain JSON-safe dict (label order sorted,
        so two snapshots of identical state are identical objects)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry: Dict[str, Any] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.label_names),
            }
            series = []
            for key in sorted(instrument.series()):
                child = instrument.series()[key]
                if instrument.kind == "histogram":
                    series.append(
                        {
                            "labels": list(key),
                            "buckets": list(child.buckets),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    series.append({"labels": list(key), "value": child.value})
            entry["series"] = series
            if instrument.kind == "histogram":
                entry["bounds"] = list(instrument.bounds)
            out[name] = entry
        return out

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Fold a (worker's) snapshot into the live instruments, in place.

        Counters and histogram series add; gauges add too — the merged
        registry answers fleet-level questions ("open streams across all
        shards"), which is a sum.  Instruments unseen here are created
        from the snapshot's declaration.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            labels = tuple(entry.get("labels", ()))
            if kind == "counter":
                instrument = self.counter(name, entry.get("help", ""), labels)
            elif kind == "gauge":
                instrument = self.gauge(name, entry.get("help", ""), labels)
            elif kind == "histogram":
                instrument = self.histogram(
                    name, entry.get("help", ""), labels,
                    buckets=entry.get("bounds", DEFAULT_SECONDS_BUCKETS),
                )
            else:
                raise ValueError(f"snapshot entry {name!r} has no known type")
            for row in entry.get("series", ()):
                child = instrument.child(*row.get("labels", ()))
                if kind == "histogram":
                    incoming = row.get("buckets", ())
                    if len(incoming) != len(child.buckets):
                        raise ValueError(
                            f"{name}: bucket grids differ, cannot merge"
                        )
                    for index, count in enumerate(incoming):
                        child.buckets[index] += count
                    child.sum += row.get("sum", 0.0)
                    child.count += row.get("count", 0)
                else:
                    child.value += row.get("value", 0)
        return self

    def clear(self) -> "MetricsRegistry":
        self._instruments.clear()
        return self


class NullMetrics(MetricsRegistry):
    """A registry whose instruments discard every write.

    The uninstrumented baseline: components take any registry, and handing
    them :data:`NULL_METRICS` removes all recording work except one no-op
    call per site — what ``bench_obs.py`` measures the overhead against.
    """

    class _NullSeries:
        __slots__ = ()
        value = 0
        sum = 0.0
        count = 0
        buckets: List[int] = []

        def inc(self, amount: float = 1) -> None:
            pass

        def dec(self, amount: float = 1) -> None:
            pass

        def set(self, value: float) -> None:
            pass

        def observe(self, value: float) -> None:
            pass

        def quantile(self, q: float) -> float:
            return 0.0

    _SERIES = _NullSeries()

    class _NullInstrument:
        __slots__ = ("kind", "label_names")

        def __init__(self, kind: str) -> None:
            self.kind = kind
            self.label_names = ()

        def child(self, *label_values: str):
            return NullMetrics._SERIES

        def labels(self, **labels: str):
            return NullMetrics._SERIES

        def series(self) -> Dict[Tuple[str, ...], Any]:
            return {}

        def inc(self, amount: float = 1, *label_values: str) -> None:
            pass

        def set(self, value: float, *label_values: str) -> None:
            pass

        def observe(self, value: float, *label_values: str) -> None:
            pass

    def __init__(self) -> None:
        super().__init__()
        self._null = {
            "counter": NullMetrics._NullInstrument("counter"),
            "gauge": NullMetrics._NullInstrument("gauge"),
            "histogram": NullMetrics._NullInstrument("histogram"),
        }

    def counter(self, name, help="", labels=()):  # type: ignore[override]
        return self._null["counter"]

    def gauge(self, name, help="", labels=()):  # type: ignore[override]
        return self._null["gauge"]

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_SECONDS_BUCKETS):  # type: ignore[override]
        return self._null["histogram"]

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge_snapshot(self, snapshot) -> "MetricsRegistry":
        return self


#: The shared no-op registry (stateless, safe to hand to anything).
NULL_METRICS = NullMetrics()


# -- snapshot algebra ---------------------------------------------------------


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Add snapshots series-by-series (associative + commutative).

    The shard pool's aggregation: every counter, gauge and histogram
    bucket sums, so the merged snapshot reads as one fleet-wide registry.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def diff_snapshots(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> Dict[str, Any]:
    """``after - before``, series-by-series — the rate-window primitive.

    Counters and histograms subtract (series absent from ``before`` keep
    their ``after`` totals); gauges keep the ``after`` value, because a
    gauge delta is rarely the question asked of one.  Instruments absent
    from ``after`` are dropped.
    """
    out: Dict[str, Any] = {}
    for name, entry in after.items():
        old = before.get(name)
        new_entry = {
            key: (list(value) if isinstance(value, list) else value)
            for key, value in entry.items()
        }
        if old is not None and entry.get("type") in ("counter", "histogram"):
            old_series = {
                tuple(row.get("labels", ())): row for row in old.get("series", ())
            }
            series = []
            for row in entry.get("series", ()):
                row = dict(row)
                prev = old_series.get(tuple(row.get("labels", ())))
                if prev is not None:
                    if entry["type"] == "histogram":
                        row["buckets"] = [
                            a - b
                            for a, b in zip(row.get("buckets", ()), prev.get("buckets", ()))
                        ]
                        row["sum"] = row.get("sum", 0.0) - prev.get("sum", 0.0)
                        row["count"] = row.get("count", 0) - prev.get("count", 0)
                    else:
                        row["value"] = row.get("value", 0) - prev.get("value", 0)
                series.append(row)
            new_entry["series"] = series
        out[name] = new_entry
    return out


def snapshot_quantile(entry: Mapping[str, Any], q: float) -> float:
    """Estimated q-quantile of a snapshot histogram entry (all series
    pooled) — what ``python -m repro.serve stats`` prints."""
    bounds = tuple(entry.get("bounds", ()))
    pooled = HistogramChild(bounds) if bounds else None
    if pooled is None:
        return 0.0
    for row in entry.get("series", ()):
        for index, count in enumerate(row.get("buckets", ())):
            pooled.buckets[index] += count
        pooled.count += row.get("count", 0)
        pooled.sum += row.get("sum", 0.0)
    return pooled.quantile(q)


# -- exposition ---------------------------------------------------------------


def to_json(snapshot: Mapping[str, Any], indent: Optional[int] = None) -> str:
    """The JSON exposition (snapshots are already JSON-safe)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _format_value(value: Any) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _label_str(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    parts = [
        f'{name}="{str(value).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """The Prometheus text exposition format of a snapshot.

    Histograms render cumulative ``_bucket{le=...}`` series (the wire
    convention) from the non-cumulative stored counts, plus ``_sum`` and
    ``_count``.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "untyped")
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        label_names = entry.get("labels", ())
        for row in entry.get("series", ()):
            values = row.get("labels", ())
            if kind == "histogram":
                bounds = entry.get("bounds", ())
                running = 0
                for bound, count in zip(
                    list(bounds) + ["+Inf"], row.get("buckets", ())
                ):
                    running += count
                    le = _format_value(bound) if bound != "+Inf" else "+Inf"
                    labels = _label_str(label_names, values, f'le="{le}"')
                    lines.append(f"{name}_bucket{labels} {running}")
                labels = _label_str(label_names, values)
                lines.append(f"{name}_sum{labels} {_format_value(row.get('sum', 0.0))}")
                lines.append(f"{name}_count{labels} {row.get('count', 0)}")
            else:
                labels = _label_str(label_names, values)
                lines.append(f"{name}{labels} {_format_value(row.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")
