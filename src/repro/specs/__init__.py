"""The paper's specifications (Chapters 5-8) written against the public API."""

from .queue_specs import (
    QUEUE_OPERATIONS,
    reliable_queue_spec,
    stack_spec,
    unreliable_queue_spec,
)
from .selftimed_specs import arbiter_spec, request_ack_spec
from .ab_protocol_specs import (
    RECEIVER_OPERATIONS,
    SENDER_OPERATIONS,
    receiver_spec,
    sender_spec,
    service_provided_spec,
)
from .mutex_specs import mutex_spec, mutual_exclusion_proof, mutual_exclusion_theorem

__all__ = [
    "QUEUE_OPERATIONS",
    "reliable_queue_spec",
    "stack_spec",
    "unreliable_queue_spec",
    "arbiter_spec",
    "request_ack_spec",
    "RECEIVER_OPERATIONS",
    "SENDER_OPERATIONS",
    "receiver_spec",
    "sender_spec",
    "service_provided_spec",
    "mutex_spec",
    "mutual_exclusion_proof",
    "mutual_exclusion_theorem",
]
