"""Chapter 7: Alternating Bit protocol specifications (Figures 7-3 and 7-4).

The sender and receiver processes are specified through the abstract
operations of §7.3 (``Dq``, ``Ts``, ``Rs`` for the sender; ``Rr``, ``Tr``,
``Enq`` for the receiver) plus the auxiliary expected-sequence-number state
components the paper introduces (here ``exp_s`` and ``exp_r``).

Where the archival scan garbles a formula, the clause here encodes the
corresponding *informal requirement* listed in §7.5 (the six sender and six
receiver requirements); each clause's comment records which requirement it
captures.  Two reconstructions are noteworthy:

* sender liveness A2's retransmission conjunct is conditioned on the
  acknowledgment not having arrived (the paper states it for infinite
  behaviours; on finite computations the unconditional form is unsatisfiable
  by any terminating run);
* the receiver alternation clause is stated invariantly (``[]``), matching
  the "successive messages" reading.

The service-provided specification (§7.4) is the reliable-queue axiom with
``Send``/``Rec`` in place of ``Enq``/``Dq``.
"""

from __future__ import annotations

from ..core.operations import Operation
from ..core.specification import Specification
from ..syntax.builder import (
    after_op,
    always,
    apply_fn,
    at_op,
    backward,
    eq,
    event,
    end,
    forall,
    forward,
    iff,
    implies,
    in_op,
    interval,
    land,
    lnot,
    lor,
    lvar,
    occurs,
    var,
)

__all__ = [
    "SENDER_OPERATIONS",
    "RECEIVER_OPERATIONS",
    "sender_spec",
    "receiver_spec",
    "service_provided_spec",
]


SENDER_OPERATIONS = (
    Operation("Send", entry_parameters=("m",)),
    Operation("Dq", result_parameters=("m",)),
    Operation("Ts", entry_parameters=("m", "v")),
    Operation("Rs", entry_parameters=("m", "v")),
)

RECEIVER_OPERATIONS = (
    Operation("Rr", entry_parameters=("m", "v")),
    Operation("Tr", entry_parameters=("m", "v")),
    Operation("Enq", entry_parameters=("m",)),
    Operation("Rec", result_parameters=("m",)),
)


def sender_spec() -> Specification:
    """Figure 7-3: the AB-protocol Sender process."""
    spec = Specification("AB protocol sender (Figure 7-3)", SENDER_OPERATIONS)
    m, v = lvar("m"), lvar("v")
    flipped = apply_fn("flip", v)
    after_dq_m = event(after_op("Dq", m))
    at_dq = event(at_op("Dq"))

    # Init: no transmissions before the first dequeue; at the first dequeue
    # the expected sequence number carries its distinguished initial value.
    spec.add_init(
        "Init",
        land(
            interval(forward(None, at_dq), lnot(occurs(event(at_op("Ts"))))),
            interval(forward(at_dq, None), eq(var("exp_s"), 0)),
        ),
        comment="no transmission before the first dequeue; exp starts at its initial value",
    )

    # A1 antecedent: right after dequeuing m the expected sequence number is v.
    antecedent = interval(forward(after_dq_m, None), eq(var("exp_s"), v))
    # Requirement 1: successive messages use alternating sequence numbers —
    # at the next dequeue the expected number is the complement of v.
    alternation = interval(
        forward(after_dq_m, None),
        interval(end(at_dq), eq(var("exp_s"), flipped)),
    )
    # Requirement 5 (safety half): an uncorrupted acknowledgment with the
    # transmitted sequence number is received before the next dequeue.
    ack_before_next = interval(
        forward(after_dq_m, at_dq),
        occurs(event(after_op("Rs", m, v))),
    )
    # Requirement 3: until the next dequeue only <m, v> packets are transmitted.
    only_current_packet = interval(
        forward(after_dq_m, at_dq),
        always(interval(end(event(at_op("Ts"))), at_op("Ts", m, v))),
    )
    spec.add_axiom(
        "A1",
        forall(("m", "v"), implies(antecedent, land(alternation, ack_before_next,
                                                    only_current_packet))),
        comment="alternating sequence numbers; ack before next dequeue; only the "
                "current packet transmitted in the interim",
    )

    # A2 (liveness): repeated acknowledgments force the next dequeue, and an
    # unacknowledged packet keeps being retransmitted while no dequeue occurs.
    repeated_acks = implies(
        always(occurs(event(after_op("Rs", m, v)))),
        occurs(at_dq),
    )
    keep_retransmitting = implies(
        land(lnot(occurs(at_dq)), lnot(occurs(event(after_op("Rs", m, v))))),
        always(occurs(event(at_op("Ts", m, v)))),
    )
    spec.add_axiom(
        "A2",
        forall(
            ("m", "v"),
            implies(
                antecedent,
                interval(forward(after_dq_m, None),
                         land(repeated_acks, keep_retransmitting)),
            ),
        ),
        comment="repeated acknowledgments lead to another dequeue; continual "
                "retransmission while unacknowledged",
    )

    # A3: no packet may be transmitted during a dequeue.
    spec.add_axiom(
        "A3",
        always(implies(in_op("Dq"), lnot(in_op("Ts")))),
        comment="no transmission while the Sender is dequeuing",
    )
    return spec


def receiver_spec() -> Specification:
    """Figure 7-4: the AB-protocol Receiver process."""
    spec = Specification("AB protocol receiver (Figure 7-4)", RECEIVER_OPERATIONS)
    m, v = lvar("m"), lvar("v")
    p, q, n = lvar("p"), lvar("q"), lvar("n")
    flipped_v = apply_fn("flip", v)

    # Init: no delivery or acknowledgment before the first packet arrives.
    spec.add_init(
        "Init",
        interval(
            forward(None, event(at_op("Rr"))),
            land(lnot(occurs(event(at_op("Enq")))), lnot(occurs(event(at_op("Tr"))))),
        ),
        comment="until receipt of an initial packet there is no delivery or acknowledgment",
    )

    # A1: between a packet receipt and the next receipt, acknowledgments are
    # sent only for that packet.
    spec.add_axiom(
        "A1",
        forall(
            ("m", "v"),
            interval(
                forward(event(after_op("Rr", m, v)), event(after_op("Rr"))),
                always(interval(end(event(at_op("Tr"))), at_op("Tr", m, v))),
            ),
        ),
        comment="until the next packet is received, acknowledgments only for the last packet",
    )

    # A2 (liveness): packets received continually are eventually acknowledged.
    spec.add_axiom(
        "A2",
        forall(
            ("m", "v"),
            implies(
                always(occurs(event(after_op("Rr", m, v)))),
                occurs(event(at_op("Tr", m, v))),
            ),
        ),
        comment="repeatedly received packets must eventually be acknowledged",
    )

    # A3 clause 1: successive deliveries result from alternating sequence numbers.
    at_enq = event(at_op("Enq"))
    spec.add_axiom(
        "A3/alternation",
        always(
            forall(
                "v",
                implies(
                    interval(forward(at_enq, None), eq(var("exp_r"), v)),
                    interval(
                        forward(at_enq, None),
                        interval(end(at_enq), eq(var("exp_r"), flipped_v)),
                    ),
                ),
            )
        ),
        comment="successive deliveries come from packets with alternating sequence numbers",
    )

    # A3 clause 2: a delivered message was previously received.
    spec.add_axiom(
        "A3/receipt-before-delivery",
        forall(
            "m",
            interval(
                forward(None, event(at_op("Enq", m))),
                lor(
                    occurs(event(after_op("Rr", m, 0))),
                    occurs(event(after_op("Rr", m, 1))),
                ),
            ),
        ),
        comment="only messages from received packets may be delivered",
    )

    # A3 clause 3: the message of a received packet is delivered before a
    # packet with a different sequence number is acknowledged.
    spec.add_axiom(
        "A3/deliver-before-new-ack",
        forall(
            ("p", "q", "v"),
            interval(
                forward(
                    event(after_op("Rr", p, v)),
                    event(at_op("Tr", q, apply_fn("flip", v))),
                ),
                occurs(event(at_op("Enq", p))),
            ),
        ),
        comment="a received message is delivered before a differently-numbered packet is acknowledged",
    )

    # A3 clause 4: acknowledging a packet ensures its message is delivered
    # (before or after the acknowledgment).
    spec.add_axiom(
        "A3/ack-implies-delivery",
        forall(
            ("n", "v"),
            implies(
                occurs(event(at_op("Tr", n, v))),
                occurs(event(at_op("Enq", n))),
            ),
        ),
        comment="acknowledging a packet ensures delivery of its message",
    )
    return spec


def service_provided_spec() -> Specification:
    """§7.4: the service provided is a reliable queue over Send/Rec."""
    spec = Specification(
        "AB protocol service provided (Chapter 7.4)",
        (
            Operation("Send", entry_parameters=("m",)),
            Operation("Rec", result_parameters=("m",)),
        ),
    )
    a, b = lvar("a"), lvar("b")
    spec.add_axiom(
        "Queue",
        forall(
            ("a", "b"),
            interval(
                backward(None, event(after_op("Rec", b))),
                iff(
                    occurs(event(after_op("Rec", a))),
                    occurs(
                        backward(event(at_op("Send", a)), event(at_op("Send", b)))
                    ),
                ),
            ),
        ),
        comment="messages are delivered exactly once, in the order they were sent",
    )
    return spec
