r"""Chapter 8: the distributed mutual-exclusion specification and theorem.

Figure 8-1, for processes ``i`` and ``j`` over the shared flags ``x(i)`` and
critical-section indicators ``cs(i)``::

    Init.  forall m . ~x(m)
    A1.    i != j  ->  [ x(i) <= cs(i) ] <> ~x(j)
    A2.    [] ( cs(i) -> x(i) )

(The paper writes A2 as the state implication ``cs(i) ⊃ x(i)``; as a
specification clause it is intended invariantly, hence the ``[]``.)

The theorem proved in Chapter 8 is mutual exclusion::

    [] ~( cs(i) /\ cs(j) )        for all i != j

and :func:`mutual_exclusion_proof` packages the paper's lemmas L2–L5 (the
semantically checkable steps of Figure 8-2) for the proof-support module.
"""

from __future__ import annotations

from typing import List

from ..core.proof import Lemma, ProofScript
from ..core.specification import Specification
from ..syntax.builder import (
    always,
    backward,
    begin,
    event,
    eventually,
    forward,
    implies,
    interval,
    land,
    lnot,
    occurs,
    prop,
)
from ..syntax.formulas import Formula
from ..systems.mutex import cs_name, flag_name

__all__ = [
    "mutex_spec",
    "mutual_exclusion_theorem",
    "mutual_exclusion_proof",
]


def mutex_spec(processes: int = 2) -> Specification:
    """Figure 8-1 for ``processes`` processes."""
    spec = Specification("Distributed mutual exclusion (Figure 8-1)")
    for i in range(1, processes + 1):
        spec.add_init(f"Init/{i}", lnot(prop(flag_name(i))),
                      comment="all processes have relinquished their claims")
    for i in range(1, processes + 1):
        x_i = prop(flag_name(i))
        cs_i = prop(cs_name(i))
        for j in range(1, processes + 1):
            if i == j:
                continue
            x_j = prop(flag_name(j))
            spec.add_axiom(
                f"A1/{i}{j}",
                always(
                    interval(
                        backward(event(x_i), event(cs_i)),
                        eventually(lnot(x_j)),
                    )
                ),
                comment="for the interval back from entering the section to the most "
                        "recent setting of x(i), x(j) is found false at some moment",
            )
        spec.add_axiom(
            f"A2/{i}",
            always(implies(cs_i, x_i)),
            comment="x(i) remains true while i is in the critical section",
        )
    return spec


def mutual_exclusion_theorem(processes: int = 2) -> List[Formula]:
    """``[] ~(cs(i) /\\ cs(j))`` for every pair of distinct processes."""
    theorems = []
    for i in range(1, processes + 1):
        for j in range(i + 1, processes + 1):
            theorems.append(
                always(lnot(land(prop(cs_name(i)), prop(cs_name(j)))))
            )
    return theorems


def mutual_exclusion_proof() -> ProofScript:
    """The semantically checkable steps of the Figure 8-2 proof (two processes).

    L2–L5 are stated for processes 1 and 2 with the interval variable ``I``
    of the paper's L2 already instantiated to the L5 interval, as the paper
    itself prescribes; the final step is the theorem derived from the
    Figure 8-1 axioms.
    """
    x1, x2 = prop(flag_name(1)), prop(flag_name(2))
    cs1, cs2 = prop(cs_name(1)), prop(cs_name(2))
    spec = mutex_spec(2)
    axioms = [clause.interpreted_formula() for clause in spec.clauses]

    script = ProofScript("Mutual exclusion (Figure 8-2)")
    # L2 (instantiated): if x(1) holds throughout the x(2)<=cs(2) search
    # context, the x(2) <= cs(2) interval cannot have found a false x(1);
    # with axiom A1 for process 2 this refutes an overlapping entry by 2.
    script.add(
        Lemma(
            "L2",
            conclusion=always(
                interval(
                    backward(event(x2), event(cs2)),
                    implies(always(x1), eventually(lnot(x1))),
                )
            ),
            hypotheses=tuple(axioms),
            comment="instantiating I in L2 with the interval of L5 and using A1(2,1)",
        )
    )
    # L3: x(m) holds from its setting up to the entry of the critical section.
    script.add(
        Lemma(
            "L3",
            conclusion=always(interval(backward(event(x1), event(cs1)), always(x1))),
            hypotheses=tuple(axioms),
            comment="x(m) is true throughout the interval from setting x(m) to entering",
        )
    )
    # L4: x(m) holds from the entry until the exit of the critical section.
    script.add(
        Lemma(
            "L4",
            conclusion=always(
                interval(
                    forward(event(cs1), begin(event(lnot(cs1)))),
                    always(x1),
                )
            ),
            hypotheses=tuple(axioms),
            comment="x(m) remains true through the critical section",
        )
    )
    # L5: the composed interval, from the setting of x(m) preceding entry
    # until the exit (if any).
    script.add(
        Lemma(
            "L5",
            conclusion=always(
                interval(
                    backward(event(x1), event(cs1)),
                    interval(forward(None, begin(event(lnot(cs1)))), always(x1)),
                )
            ),
            hypotheses=tuple(axioms),
            comment="combining L3 and L4 for the composed interval",
        )
    )
    # The theorem.
    script.add(
        Lemma(
            "Theorem",
            conclusion=always(lnot(land(cs1, cs2))),
            hypotheses=tuple(axioms),
            comment="no pair of processes is ever in the critical section together",
        )
    )
    return script
