"""Chapter 5: queue, stack, and unreliable-queue specifications.

The reliable queue axiom (the paper's ``Queue.`` formula)::

    forall a, b .
      [ <= afterDq(b) ] ( *afterDq(a)  ===  *(atEnq(a) <= atEnq(b)) )

"for all a and b, if we dequeue b, then any other value a will be dequeued in
the interim if and only if it was enqueued prior to b".  Exchanging the
``atEnq`` terms yields the stack (LIFO) specification.

The unreliable queue of Figure 5-1 weakens this to the lossy setting: values
may be lost but dequeued values appear in enqueue order (I1), must have been
enqueued (I2), repeated enqueues of a value are consecutive (I3), and the two
liveness axioms A1/A2 require dequeues to return when traffic persists and
enqueues to terminate.
"""

from __future__ import annotations

from ..core.operations import Operation
from ..core.specification import Specification
from ..syntax.builder import (
    after_op,
    always,
    at_op,
    backward,
    event,
    forall,
    forward,
    iff,
    implies,
    interval,
    land,
    lnot,
    lvar,
    ne,
    occurs,
    star,
)

__all__ = [
    "QUEUE_OPERATIONS",
    "reliable_queue_spec",
    "stack_spec",
    "unreliable_queue_spec",
]


QUEUE_OPERATIONS = (
    Operation("Enq", entry_parameters=("value",)),
    Operation("Dq", result_parameters=("value",)),
)


def _fifo_body(first: str, second: str):
    """``*afterDq(a) === *(atEnq(first) <= atEnq(second))`` under [<= afterDq(b)]."""
    return iff(
        occurs(event(after_op("Dq", lvar("a")))),
        occurs(
            backward(
                event(at_op("Enq", lvar(first))),
                event(at_op("Enq", lvar(second))),
            )
        ),
    )


def reliable_queue_spec() -> Specification:
    """The paper's ``Queue.`` axiom (first-in first-out behaviour)."""
    spec = Specification("Reliable queue (Chapter 5)", QUEUE_OPERATIONS)
    spec.add_axiom(
        "Queue",
        forall(
            ("a", "b"),
            interval(
                backward(None, event(after_op("Dq", lvar("b")))),
                _fifo_body("a", "b"),
            ),
        ),
        comment="values are dequeued in the interim iff enqueued prior to b",
    )
    return spec


def stack_spec() -> Specification:
    """The ``Stack.`` variant: exchange the atEnq terms (last-in first-out)."""
    spec = Specification("Stack (Chapter 5)", QUEUE_OPERATIONS)
    spec.add_axiom(
        "Stack",
        forall(
            ("a", "b"),
            interval(
                backward(None, event(after_op("Dq", lvar("b")))),
                _fifo_body("b", "a"),
            ),
        ),
        comment="values are dequeued in the interim iff enqueued after b",
    )
    return spec


def unreliable_queue_spec() -> Specification:
    """Figure 5-1: the unreliable queue with distinct (per-burst) items."""
    spec = Specification("Unreliable queue (Figure 5-1)", QUEUE_OPERATIONS)
    at_enq_a = at_op("Enq", lvar("a"))
    at_enq_b = at_op("Enq", lvar("b"))
    after_dq_a = after_op("Dq", lvar("a"))
    after_dq_b = after_op("Dq", lvar("b"))

    # I1: [ *(atEnq(a) => atEnq(b)) <= (afterDq(a) => afterDq(b)) ] True —
    # dequeuing a before b requires the corresponding enqueue order.
    spec.add_init(
        "I1",
        forall(
            ("a", "b"),
            implies(
                ne(lvar("a"), lvar("b")),
                interval(
                    backward(
                        star(forward(event(at_enq_a), event(at_enq_b))),
                        forward(event(after_dq_a), event(after_dq_b)),
                    ),
                    True,
                ),
            ),
        ),
        comment="dequeue order follows enqueue order for delivered values",
    )
    # I2: [ => afterDq(a) ] *atEnq(a) — values are enqueued before dequeued.
    spec.add_init(
        "I2",
        forall(
            "a",
            interval(forward(None, event(after_dq_a)), occurs(event(at_enq_a))),
        ),
        comment="a value must be enqueued before it can be dequeued",
    )
    # I3: [ atEnq(c) => atEnq(c) ] (d != c -> ~*atEnq(d)) — repeated enqueues
    # of the same value are consecutive.
    at_enq_c = at_op("Enq", lvar("c"))
    at_enq_d = at_op("Enq", lvar("d"))
    spec.add_init(
        "I3",
        forall(
            ("c", "d"),
            interval(
                forward(event(at_enq_c), event(at_enq_c)),
                implies(ne(lvar("d"), lvar("c")), lnot(occurs(event(at_enq_d)))),
            ),
        ),
        comment="repeated enqueues of a value must be consecutive",
    )
    # A1: [] ( *atEnq /\ *atDq -> *afterDq ) — persistent traffic makes the
    # dequeue return (items may be lost, but not all of them forever).
    spec.add_axiom(
        "A1",
        always(
            implies(
                land(occurs(event(at_op("Enq"))), occurs(event(at_op("Dq")))),
                occurs(event(after_op("Dq"))),
            )
        ),
        comment="repeated enqueues ensure the dequeue operation returns",
    )
    # A2: [ atEnq => ] *afterEnq — the enqueue operation terminates.
    spec.add_axiom(
        "A2",
        interval(
            forward(event(at_op("Enq")), None), occurs(event(after_op("Enq")))
        ),
        comment="the Enq operation terminates",
    )
    return spec
