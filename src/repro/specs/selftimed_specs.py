r"""Chapter 6: request/acknowledge protocol and arbiter specifications.

Figure 6-2 (request/acknowledgment protocol), with state predicates ``R``
(request signal up) and ``A`` (acknowledge signal up)::

    Init.  ~R /\ ~A
    A1.    [ R => *A ] ( ~A /\ [] R )
    A2.    [ A => begin(*~R) ] ( R /\ [] A )
    A3.    [ begin(~R) => ] *~A

A1: a request, only initiatable while the acknowledgment is down, stays up at
least until the acknowledgment rises (which must happen).  A2: the
acknowledgment rises only while the request is up and stays up until the
request starts to fall.  A3: once the request has been lowered the
acknowledgment is eventually lowered too.

Figure 6-4 (arbiter) — for each user ``i``, from the user request ``URi``
until the first moment both ``TAi`` and ``RMA`` hold: no user acknowledgment,
the transfer request ``TRi`` is raised and held, the resource request ``RMR``
is initially down, raised within the interval and held once raised; and the
two transfer requests are never up simultaneously (A2).
"""

from __future__ import annotations

from ..core.specification import Specification
from ..syntax.builder import (
    always,
    begin,
    event,
    forward,
    interval,
    land,
    lnot,
    occurs,
    prop,
    star,
)

__all__ = ["request_ack_spec", "arbiter_spec"]


def request_ack_spec() -> Specification:
    """Figure 6-2: the request/acknowledgment protocol axioms."""
    r = prop("R")
    a = prop("A")
    spec = Specification("Request/acknowledge protocol (Figure 6-2)")
    spec.add_init("Init", land(lnot(r), lnot(a)),
                  comment="the axioms are implied from a point where a request has been reset")
    spec.add_axiom(
        "A1",
        interval(forward(event(r), star(event(a))), land(lnot(a), always(r))),
        comment="a request is initiatable only with the acknowledgment down and "
                "remains up at least until the acknowledgment is raised",
    )
    spec.add_axiom(
        "A2",
        interval(
            forward(event(a), begin(star(event(lnot(r))))),
            land(r, always(a)),
        ),
        comment="the acknowledgment, once raised, remains up as long as the request stays up",
    )
    spec.add_axiom(
        "A3",
        interval(forward(begin(event(lnot(r))), None), occurs(event(lnot(a)))),
        comment="after lowering the request, the acknowledgment must later be lowered",
    )
    return spec


def arbiter_spec(users: int = 2) -> Specification:
    """Figure 6-4: the arbiter axioms for ``users`` user modules."""
    spec = Specification("Arbiter (Figure 6-4)")
    rmr = prop("RMR")
    rma = prop("RMA")
    for i in range(1, users + 1):
        ur = prop(f"UR{i}")
        ua = prop(f"UA{i}")
        tr = prop(f"TR{i}")
        ta = prop(f"TA{i}")
        spec.add_init(f"Init/{i}", lnot(ur),
                      comment="all user request signals start low")
        # Outer interval: from URi until TAi /\ RMA first hold.
        inner_rmr = interval(forward(star(event(rmr)), None), always(rmr))
        contained = interval(
            forward(star(event(tr)), None),
            land(always(tr), lnot(rmr), inner_rmr),
        )
        spec.add_axiom(
            f"A1/{i}",
            interval(
                forward(event(ur), event(land(ta, rma))),
                land(always(lnot(ua)), contained),
            ),
            comment="no user ack until both module acks; TRi raised and held; "
                    "RMR initially down, raised and then held",
        )
    # A2: the transfer requests of distinct users are mutually exclusive.
    for i in range(1, users + 1):
        for j in range(i + 1, users + 1):
            spec.add_axiom(
                f"A2/{i}{j}",
                always(lnot(land(prop(f"TR{i}"), prop(f"TR{j}")))),
                comment="transfer requests of distinct users never overlap",
            )
    return spec
