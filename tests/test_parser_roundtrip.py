"""Parser round-trips: ``parse_formula(to_ascii(f)) == f`` and the unicode
variant, across the Chapter 4 valid-formula catalogue, every clause formula
of the spec modules, and property-based sweeps over the ``repro.gen``
grammar-directed random generators."""

import random

import pytest

from repro.core.valid_formulas import catalogue
from repro.specs import (
    arbiter_spec,
    mutex_spec,
    receiver_spec,
    reliable_queue_spec,
    request_ack_spec,
    sender_spec,
    service_provided_spec,
    stack_spec,
    unreliable_queue_spec,
)
from repro.syntax import parse_formula, to_ascii, to_unicode


def _catalogue_corpus():
    for entry in catalogue():
        yield entry.name, entry.formula


def _spec_corpus():
    specifications = [
        reliable_queue_spec(),
        stack_spec(),
        unreliable_queue_spec(),
        arbiter_spec(),
        request_ack_spec(),
        receiver_spec(),
        sender_spec(),
        service_provided_spec(),
        mutex_spec(2),
        mutex_spec(3),
    ]
    for specification in specifications:
        for clause in specification.clauses:
            yield f"{specification.name}/{clause.name}", clause.formula


CORPUS = list(_catalogue_corpus()) + list(_spec_corpus())


@pytest.mark.parametrize("name,formula", CORPUS, ids=[name for name, _ in CORPUS])
def test_ascii_round_trip(name, formula):
    assert parse_formula(to_ascii(formula)) == formula


@pytest.mark.parametrize("name,formula", CORPUS, ids=[name for name, _ in CORPUS])
def test_unicode_round_trip(name, formula):
    assert parse_formula(to_unicode(formula)) == formula


def test_interpreted_init_clauses_round_trip_too():
    for specification in (request_ack_spec(), arbiter_spec()):
        for clause in specification.clauses:
            interpreted = clause.interpreted_formula()
            assert parse_formula(to_ascii(interpreted)) == interpreted


class TestParserExtensions:
    """The grammar extensions the round-trip required."""

    def test_capitalized_constants(self):
        from repro.syntax.formulas import FalseFormula, TrueFormula

        assert parse_formula("True") == TrueFormula()
        assert parse_formula("False") == FalseFormula()

    def test_nested_forall(self):
        f = parse_formula("[]forall v . x == ?v")
        from repro.syntax.formulas import Always, Forall

        assert isinstance(f, Always)
        assert isinstance(f.operand, Forall)

    def test_backward_arrow_inside_terms(self):
        from repro.syntax.intervals import Backward, EventTerm

        term_formula = parse_formula("[(p <= q)] r")
        assert isinstance(term_formula.term, Backward)
        assert isinstance(term_formula.term.left, EventTerm)

    def test_le_comparison_survives_outside_terms(self):
        from repro.syntax.formulas import Atom

        f = parse_formula("x <= 5")
        assert isinstance(f, Atom)
        assert f.predicate.op == "<="

    def test_unicode_comparisons_normalize(self):
        assert parse_formula("x ≠ 5") == parse_formula("x != 5")
        assert parse_formula("x ≥ 5") == parse_formula("x >= 5")

    def test_le_comparison_event_round_trips_in_unicode(self):
        from repro.syntax.intervals import Backward
        from repro.syntax.terms import Cmp

        f = parse_formula("[ p ≤ q ] r")
        assert isinstance(f.term.formula.predicate, Cmp)
        # to_unicode prints the comparison as ≤, distinct from ⇐ — exact
        # round-trip; the ASCII rendering is the documented one-way case
        # (it re-parses as the backward arrow).
        assert "≤" in to_unicode(f)
        assert parse_formula(to_unicode(f)) == f
        assert isinstance(parse_formula(to_ascii(f)).term, Backward)

    def test_ge_and_ne_comparisons_round_trip_in_unicode(self):
        for text in ("x ≥ 5", "x ≠ y", "[(p ≥ 1) => ] <> q"):
            f = parse_formula(text)
            assert parse_formula(to_unicode(f)) == f
            assert parse_formula(to_ascii(f)) == f

    def test_parenthesized_expression_comparisons(self):
        from repro.syntax.terms import BinOp, Cmp, Var

        f = parse_formula("(x - y) == 1")
        assert isinstance(f.predicate, Cmp)
        assert isinstance(f.predicate.left, BinOp)
        assert parse_formula(to_ascii(f)) == f
        # Also when the parenthesized expression would parse as a formula.
        g = parse_formula("(x) == 1")
        assert isinstance(g.predicate, Cmp)
        assert isinstance(g.predicate.left, Var)
        assert g == parse_formula("x == 1")

    def test_unbalanced_parens_report_the_inner_error(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as excinfo:
            parse_formula("([] p /\\ q")
        # The message points at the real problem (the missing RPAREN), not
        # at the opening parenthesis.
        assert "RPAREN" in str(excinfo.value)

    def test_forall_under_binary_connectives_round_trips(self):
        from repro.syntax.builder import eq, forall, lor, lvar, prop

        f = lor(forall("a", eq("x", lvar("a"))), prop("q"))
        assert parse_formula(to_ascii(f)) == f
        assert parse_formula(to_unicode(f)) == f


class TestGeneratedRoundTrips:
    """Property-based sweeps: every generated formula must survive
    ``pretty → parser → pretty`` in both renderings."""

    FRAGMENT_SEEDS = [
        (fragment, seed)
        for fragment in ("ltl", "interval", "rich")
        for seed in range(12)
    ]

    @pytest.mark.parametrize(
        "fragment,seed", FRAGMENT_SEEDS,
        ids=[f"{fragment}-{seed}" for fragment, seed in FRAGMENT_SEEDS],
    )
    def test_generated_formulas_round_trip(self, fragment, seed):
        from repro.gen import gen_formula

        rng = random.Random(seed)
        for _ in range(25):
            formula = gen_formula(rng, size=rng.randint(1, 14), fragment=fragment)
            ascii_text = to_ascii(formula)
            unicode_text = to_unicode(formula)
            assert parse_formula(ascii_text) == formula, ascii_text
            assert parse_formula(unicode_text) == formula, unicode_text
            # pretty → parse → pretty is a fixpoint in both renderings.
            assert to_ascii(parse_formula(ascii_text)) == ascii_text
            assert to_unicode(parse_formula(unicode_text)) == unicode_text

    def test_generated_terms_round_trip_inside_formulas(self):
        from repro.gen import gen_term
        from repro.syntax.formulas import Occurs, TrueFormula, IntervalFormula

        rng = random.Random(99)
        for _ in range(100):
            term = gen_term(rng, size=rng.randint(1, 8), fragment="rich")
            for formula in (Occurs(term), IntervalFormula(term, TrueFormula())):
                assert parse_formula(to_ascii(formula)) == formula
                assert parse_formula(to_unicode(formula)) == formula
