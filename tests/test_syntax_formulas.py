"""Tests for formula / interval-term construction, the parser and printers."""

import pytest

from repro.errors import ParseError, SyntaxConstructionError
from repro.syntax import (
    Always,
    And,
    Atom,
    Backward,
    Begin,
    End,
    EventTerm,
    Eventually,
    Forall,
    Forward,
    Iff,
    Implies,
    IntervalFormula,
    Not,
    Occurs,
    Or,
    Prop,
    Star,
    conjoin,
    disjoin,
    formula_size,
    parse_formula,
    parse_term,
    to_ascii,
    to_unicode,
    walk_formula,
    walk_term,
)
from repro.syntax.builder import (
    begin,
    end,
    event,
    eventually,
    forward,
    backward,
    interval,
    land,
    lnot,
    lor,
    occurs,
    prop,
    star,
    always,
    forall,
    eq,
    at_op,
)
from repro.syntax.pretty import render_tree


class TestConstruction:
    def test_operator_overloading(self):
        p, q = prop("p"), prop("q")
        assert isinstance(p & q, And)
        assert isinstance(p | q, Or)
        assert isinstance(~p, Not)
        assert isinstance(p >> q, Implies)

    def test_interval_formula_requires_a_term(self):
        with pytest.raises(SyntaxConstructionError):
            IntervalFormula(prop("p"), prop("q"))  # type: ignore[arg-type]

    def test_occurs_requires_a_term(self):
        with pytest.raises(SyntaxConstructionError):
            Occurs(prop("p"))  # type: ignore[arg-type]

    def test_atom_requires_a_predicate(self):
        with pytest.raises(SyntaxConstructionError):
            Atom("p")  # type: ignore[arg-type]

    def test_forall_requires_variables(self):
        with pytest.raises(SyntaxConstructionError):
            Forall((), prop("p"))

    def test_conjoin_and_disjoin(self):
        p, q, r = prop("p"), prop("q"), prop("r")
        assert to_ascii(conjoin((p, q, r))) == "((p /\\ q) /\\ r)"
        assert to_ascii(disjoin(())) == "False"
        assert to_ascii(conjoin(())) == "True"

    def test_free_logical_vars_and_state_vars(self):
        f = forall("a", interval(forward(at_op("Enq", "x")), eq("y", 3)))
        assert "a" not in f.free_logical_vars()
        assert f.state_vars() == frozenset({"x", "y"})

    def test_formula_size_and_walk(self):
        f = interval(forward(event(prop("p")), event(prop("q"))), eventually(prop("r")))
        nodes = list(walk_formula(f))
        assert formula_size(f) == len(nodes)
        assert formula_size(f) >= 5

    def test_walk_term_covers_nested_terms(self):
        term = Forward(Begin(EventTerm(prop("p"))), Star(EventTerm(prop("q"))))
        kinds = {type(t) for t in walk_term(term)}
        assert kinds == {Forward, Begin, Star, EventTerm}

    def test_star_detection(self):
        assert star(event(prop("p"))).has_star()
        assert forward(event(prop("p")), star(event(prop("q")))).has_star()
        assert not forward(event(prop("p")), event(prop("q"))).has_star()

    def test_hashability(self):
        f1 = interval(forward(event(prop("p")), None), always(prop("q")))
        f2 = interval(forward(event(prop("p")), None), always(prop("q")))
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert len({f1, f2}) == 1


class TestPrinting:
    def test_ascii_rendering(self):
        f = interval(forward(event(prop("A")), event(prop("B"))), eventually(prop("D")))
        assert to_ascii(f) == "[(A => B)] <>D"

    def test_unicode_rendering(self):
        f = always(interval(backward(event(prop("x")), event(prop("c"))),
                            eventually(lnot(prop("y")))))
        rendered = to_unicode(f)
        assert "□" in rendered and "◇" in rendered and "⇐" in rendered

    def test_tree_rendering_lists_every_node(self):
        f = forall("a", occurs(begin(event(prop("p")))))
        tree = render_tree(f)
        assert "Forall" in tree and "Occurs" in tree and "Begin" in tree


class TestParser:
    def test_parse_simple_interval_formula(self):
        f = parse_formula("[ A => B ] <> D")
        assert isinstance(f, IntervalFormula)
        assert isinstance(f.term, Forward)
        assert isinstance(f.body, Eventually)

    def test_parse_roundtrip_through_ascii(self):
        text = "[(A => B)] <>D"
        assert to_ascii(parse_formula(text)) == text

    def test_parse_temporal_operators(self):
        assert isinstance(parse_formula("[] p"), Always)
        assert isinstance(parse_formula("<> p"), Eventually)
        assert isinstance(parse_formula("~p"), Not)

    def test_parse_connective_precedence(self):
        f = parse_formula("p /\\ q -> r")
        assert isinstance(f, Implies)
        assert isinstance(f.left, And)

    def test_parse_iff_and_nested_parens(self):
        f = parse_formula("(p -> q) <-> (~p \\/ q)")
        assert isinstance(f, Iff)

    def test_parse_forall(self):
        f = parse_formula("forall a, b . [ at Enq(?a) => at Enq(?b) ] true")
        assert isinstance(f, Forall)
        assert f.variables == ("a", "b")

    def test_parse_comparisons(self):
        f = parse_formula("x >= 5")
        assert to_ascii(f) == "x >= 5"
        g = parse_formula("[ x = y => y = 16 ] [] x > z")
        assert isinstance(g, IntervalFormula)

    def test_parse_begin_end_star_terms(self):
        term = parse_term("begin(A) => *end(B)")
        assert isinstance(term, Forward)
        assert isinstance(term.left, Begin)
        assert isinstance(term.right, Star)
        assert isinstance(term.right.term, End)

    def test_parse_backward_term(self):
        # A bare "A <= B" reads as the comparison predicate; term position
        # backward arrows need non-expression operands.
        term = parse_term("begin(A) <= end(B)")
        assert isinstance(term, Backward)
        assert isinstance(term.left, Begin)
        assert isinstance(term.right, End)

    def test_parse_occurrence(self):
        f = parse_formula("*(A => B)")
        assert isinstance(f, Occurs)

    def test_parse_operation_predicates(self):
        f = parse_formula("after Dq(?a)")
        assert "after Dq" in to_ascii(f)

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError):
            parse_formula("[ A => ] <> ")
        with pytest.raises(ParseError):
            parse_formula("p /\\")
        with pytest.raises(ParseError):
            parse_formula("p $ q")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("p q")
