"""Tests for states, traces, the construction function F and the evaluator.

These tests mirror the worked examples of Chapter 2 (formulas (1)–(8)), the
event validities ``[end P]P`` / ``[begin P]~P`` / ``[P]~P``, and the defining
clauses of the Chapter 3 model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.semantics import (
    BOTTOM,
    Evaluator,
    INFINITY,
    Interval,
    State,
    Trace,
    boolean_trace,
    make_trace,
    satisfies,
)
from repro.semantics.construction import Direction
from repro.syntax.builder import (
    always,
    at_op,
    after_op,
    begin,
    bind_next,
    end,
    eq,
    event,
    eventually,
    forall,
    forward,
    backward,
    ge,
    gt,
    interval,
    land,
    lnot,
    lvar,
    occurs,
    prop,
    star,
    whole_context,
)


class TestStateAndTrace:
    def test_state_is_a_mapping(self):
        state = State({"x": 1, "ready": True})
        assert state["x"] == 1
        assert state.get("missing") is None
        assert len(state) == 2

    def test_state_functional_updates(self):
        state = State({"x": 1})
        updated = state.with_values(x=2, y=3)
        assert state["x"] == 1 and updated["x"] == 2 and updated["y"] == 3
        with_op = state.with_operation("Enq", "at", (5,))
        assert with_op.operation("Enq").phase == "at"
        assert state.operation("Enq").phase == "idle"

    def test_state_equality_and_hash(self):
        assert State({"x": 1}) == State({"x": 1})
        assert hash(State({"x": 1})) == hash(State({"x": 1}))
        assert State({"x": 1}) != State({"x": 2})

    def test_trace_requires_states(self):
        with pytest.raises(TraceError):
            Trace([])

    def test_trace_marks_start(self):
        trace = boolean_trace(["p"], [[1], [0]])
        assert trace.state_at(1)["__start__"] is True
        assert trace.state_at(2)["__start__"] is False

    def test_stutter_extension_is_default(self):
        trace = boolean_trace(["p"], [[1], [0]])
        assert trace.is_stutter_extended
        assert trace.period == 1
        assert trace.state_at(50) == trace.state_at(2)

    def test_lasso_positions(self):
        trace = boolean_trace(["p"], [[1], [0], [1]], loop_start=2)
        assert trace.period == 2
        assert trace.canonical(4) == 2
        assert trace.canonical(5) == 3
        assert trace.state_at(4)["p"] is False

    def test_invalid_loop_start(self):
        with pytest.raises(TraceError):
            boolean_trace(["p"], [[1]], loop_start=5)

    def test_suffix_representatives_finite_and_infinite(self):
        trace = boolean_trace(["p"], [[1], [0], [1]], loop_start=2)
        assert trace.suffix_representatives(1, 3) == [1, 2, 3]
        assert trace.suffix_representatives(1, INFINITY) == [1, 2, 3]
        assert trace.suffix_representatives(2, INFINITY) == [2, 3]
        assert trace.suffix_representatives(3, INFINITY) == [3, 4]

    def test_make_trace_with_operations(self):
        trace = make_trace(
            [{"x": 1}, {"x": 2}],
            operations=[{}, {"Enq": ("at", (7,), ())}],
        )
        assert trace.state_at(2).operation("Enq").phase == "at"
        assert trace.value_universe() == (1, 2, 7)

    @given(st.lists(st.booleans(), min_size=1, max_size=6), st.integers(1, 6),
           st.integers(1, 30))
    def test_state_at_respects_periodicity(self, values, loop, position):
        loop_start = min(loop, len(values))
        trace = boolean_trace(["p"], [[int(v)] for v in values], loop_start=loop_start)
        canonical = trace.canonical(position)
        assert trace.state_at(position) == trace.state_at(canonical)
        if position > trace.length:
            assert trace.state_at(position + trace.period) == trace.state_at(position)


# A five-state trace used by most construction and evaluation tests:
#   state:   1  2  3  4  5
#   A:       0  1  1  0  0
#   B:       0  0  0  1  1
#   C:       0  0  0  0  1
#   D:       0  0  1  0  0
_TRACE = boolean_trace(
    ["A", "B", "C", "D"],
    [
        [0, 0, 0, 0],
        [1, 0, 0, 0],
        [1, 0, 0, 1],
        [0, 1, 0, 0],
        [0, 1, 1, 0],
    ],
)
_EV = Evaluator(_TRACE)
A, B, C, D = prop("A"), prop("B"), prop("C"), prop("D")


class TestConstructionFunction:
    def test_event_interval_is_the_change_pair(self):
        assert _EV.construct_interval(event(A)) == Interval(1, 2)
        assert _EV.construct_interval(event(B)) == Interval(3, 4)
        assert _EV.construct_interval(event(C)) == Interval(4, 5)

    def test_event_not_found_is_bottom(self):
        missing = prop("A") & prop("C")
        assert _EV.construct_interval(event(missing)) is BOTTOM

    def test_begin_and_end_extract_unit_intervals(self):
        assert _EV.construct_interval(begin(event(A))) == Interval(1, 1)
        assert _EV.construct_interval(end(event(A))) == Interval(2, 2)

    def test_end_of_infinite_interval_is_bottom(self):
        # A => selects <end A, infinity>; its end is undefined.
        assert _EV.construct_interval(end(forward(event(A), None))) is BOTTOM

    def test_whole_context(self):
        assert _EV.construct_interval(whole_context()) == Interval(1, INFINITY)

    def test_forward_with_one_argument(self):
        assert _EV.construct_interval(forward(event(A), None)) == Interval(2, INFINITY)
        assert _EV.construct_interval(forward(None, event(B))) == Interval(1, 4)

    def test_forward_composition(self):
        # A => B: from the end of the A event to the end of the next B event.
        assert _EV.construct_interval(forward(event(A), event(B))) == Interval(2, 4)

    def test_backward_composition(self):
        # A <= C: locate the first C, then the most recent A before its end.
        assert _EV.construct_interval(backward(event(A), event(C))) == Interval(2, 5)

    def test_backward_single_argument_uses_last_event(self):
        trace = boolean_trace(["A"], [[0], [1], [0], [1], [0]])
        evaluator = Evaluator(trace)
        # A <= : from the end of the *last* A event onward.
        assert evaluator.construct_interval(backward(event(prop("A")), None)) == Interval(4, INFINITY)

    def test_backward_infinite_changeset_is_bottom(self):
        # A lasso in which A keeps toggling: infinitely many A events.
        trace = boolean_trace(["A"], [[0], [1], [0], [1]], loop_start=2)
        evaluator = Evaluator(trace)
        assert evaluator.construct_interval(backward(event(prop("A")), None)) is BOTTOM

    def test_example_7_search_order(self):
        # Formula (7): [(A => B) <= C] — forward to C, back to the most recent
        # A, forward to the next B.
        found = _EV.construct_interval(backward(forward(event(A), event(B)), event(C)))
        assert found == Interval(4, 5)

    def test_example_8_begin_backward(self):
        # Formula (8): [ begin(A <= B) <= C ] — extends back from the first C
        # to the beginning of the most recent A <= B interval.
        found = _EV.construct_interval(backward(begin(backward(event(A), event(B))), event(C)))
        assert found == Interval(2, 5)

    def test_star_modifier_is_transparent_for_construction(self):
        assert _EV.construct_interval(star(event(A))) == _EV.construct_interval(event(A))


class TestEvaluator:
    def test_atomic_formula_reads_the_first_state(self):
        assert _EV.holds(A, 2, INFINITY)
        assert not _EV.holds(A, 1, INFINITY)

    def test_paper_event_validities(self):
        # [end P]P, [begin P]~P, [P]~P for a predicate event P.
        for p in (A, B, C, D):
            assert _EV.satisfies(interval(end(event(p)), p))
            assert _EV.satisfies(interval(begin(event(p)), lnot(p)))
            assert _EV.satisfies(interval(event(p), lnot(p)))

    def test_vacuous_satisfaction_when_interval_missing(self):
        impossible = land(A, C)
        assert _EV.satisfies(interval(event(impossible), False))
        assert not _EV.satisfies(occurs(event(impossible)))

    def test_example_3_nested_context(self):
        # [(A => B) => C] <> D: after the A-to-B interval, up to C, D occurs?
        # D only occurs at state 3, before B ends, so the formula fails ...
        formula = interval(forward(forward(event(A), event(B)), event(C)), eventually(D))
        assert not _EV.satisfies(formula)
        # ... while <> ~D trivially holds there.
        assert _EV.satisfies(interval(forward(forward(event(A), event(B)), event(C)),
                                      eventually(lnot(D))))

    def test_example_1_with_arithmetic_events(self):
        # [ x = y => y = 16 ] [] x > z  (Chapter 2.1, formula (1)).
        rows = [
            {"x": 1, "y": 5, "z": 0},
            {"x": 5, "y": 5, "z": 1},    # x = y becomes true
            {"x": 7, "y": 9, "z": 2},
            {"x": 8, "y": 16, "z": 3},   # y = 16 becomes true
            {"x": 0, "y": 0, "z": 5},
        ]
        trace = make_trace(rows)
        formula = interval(
            forward(event(eq("x", "y")), event(eq("y", 16))),
            always(gt("x", "z")),
        )
        assert satisfies(trace, formula)
        # Lowering x inside the interval breaks the invariant.
        rows[2]["x"] = 1
        assert not satisfies(make_trace(rows), formula)

    def test_always_and_eventually_over_intervals(self):
        assert _EV.satisfies(interval(forward(event(A), event(B)), eventually(D)))
        assert not _EV.satisfies(interval(forward(event(A), event(B)), always(A)))
        assert _EV.satisfies(interval(forward(None, event(A)), always(lnot(B))))

    def test_occurs_matches_its_definition(self):
        # V4: *I === ~[I]False, checked directly on this trace.
        for term in (event(A), forward(event(A), event(B)), event(land(A, C))):
            assert _EV.satisfies(occurs(term)) == _EV.satisfies(lnot(interval(term, False)))

    def test_forall_over_explicit_domain(self):
        trace = make_trace([{"x": 1}, {"x": 2}, {"x": 3}])
        f = forall("a", interval(forward(event(eq("x", lvar("a"))), None), ge("x", lvar("a"))))
        assert satisfies(trace, f, domain={"a": [2, 3]})

    def test_forall_defaults_to_trace_universe(self):
        trace = make_trace([{"x": 1}, {"x": 2}])
        f = forall("a", eventually(eq("x", lvar("a"))))
        assert satisfies(trace, f)

    def test_next_binding_binds_next_call_arguments(self):
        trace = make_trace(
            [{}, {}, {}],
            operations=[{}, {"O": ("at", (4,), ())}, {"O": ("after", (4,), ())}],
        )
        bound = bind_next("O", "b", eventually(at_op("O", lvar("b"))))
        assert satisfies(trace, bound)
        impossible = bind_next("O", "b", eventually(at_op("O", 99)))
        assert not satisfies(trace, impossible)

    def test_next_binding_vacuous_without_a_call(self):
        trace = make_trace([{"x": 1}])
        assert satisfies(trace, bind_next("O", "b", False))

    def test_operation_lifecycle_axioms_hold_for_driver_traces(self):
        from repro.core.operations import Operation
        from repro.systems.simulator import OperationDriver, TraceBuilder

        builder = TraceBuilder()
        builder.commit()
        driver = OperationDriver(builder, "Op")
        driver.call(1, busy_steps=2)
        driver.call(2, busy_steps=1)
        builder.commit()
        trace = builder.build()
        for axiom in Operation("Op", ("v",)).axioms():
            assert satisfies(trace, axiom), str(axiom)
        assert satisfies(trace, Operation("Op", ("v",)).termination_axiom())

    def test_monotonic_parameter_requirement(self):
        # Chapter 2.2: the operation's parameter increases monotonically.
        def op_trace(values):
            ops = []
            for value in values:
                ops.append({"O": ("at", (value,), ())})
                ops.append({"O": ("after", (value,), ())})
            return make_trace([{} for _ in ops], operations=ops)

        requirement = forall(
            ("a", "b"),
            interval(
                forward(event(at_op("O", lvar("a"))), event(at_op("O", lvar("b")))),
                gt(lvar("b"), lvar("a")),
            ),
        )
        assert satisfies(op_trace([1, 2, 5]), requirement)
        assert not satisfies(op_trace([1, 5, 2]), requirement)
